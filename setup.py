"""Packaging for the Duoquest (SIGMOD 2020) reproduction."""

import os

from setuptools import find_packages, setup


def long_description() -> str:
    path = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                        "PAPER.md")
    if os.path.exists(path):
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    return ""


setup(
    name="duoquest-repro",
    version="0.2.0",
    description="Dual-specification query synthesis (Duoquest, SIGMOD "
                "2020): guided partial query enumeration with a pluggable "
                "search engine and TSQ verification",
    long_description=long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    # Runtime is stdlib-only (sqlite3); everything heavier is dev-only.
    install_requires=[],
    extras_require={
        "test": [
            "pytest>=7",
            "hypothesis>=6",
            "pytest-benchmark>=4",
        ],
    },
    entry_points={
        "console_scripts": [
            "duoquest=repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Database",
        "Topic :: Scientific/Engineering",
    ],
)
