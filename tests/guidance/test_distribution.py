"""Tests (incl. property-based) for the Distribution type."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import GuidanceError
from repro.guidance.base import Distribution


class TestConstruction:
    def test_from_probs_normalises(self):
        dist = Distribution.from_probs([("a", 2.0), ("b", 2.0)])
        assert dist.prob_of("a") == pytest.approx(0.5)

    def test_from_scores_softmax_ordering(self):
        dist = Distribution.from_scores([("low", 0.0), ("high", 1.0)])
        assert dist.top == "high"
        assert dist.prob_of("high") > dist.prob_of("low")

    def test_entries_sorted_descending(self):
        dist = Distribution.from_probs([("a", 0.1), ("b", 0.7),
                                        ("c", 0.2)])
        probs = [p for _, p in dist]
        assert probs == sorted(probs, reverse=True)

    def test_point(self):
        dist = Distribution.point("only")
        assert dist.top == "only"
        assert dist.prob_of("only") == 1.0

    def test_binary(self):
        dist = Distribution.binary(0.8)
        assert dist.prob_of(True) == pytest.approx(0.8)
        assert dist.prob_of(False) == pytest.approx(0.2)

    def test_invalid_sum_rejected(self):
        with pytest.raises(GuidanceError):
            Distribution(entries=(("a", 0.4), ("b", 0.4)))

    def test_nonpositive_probs_rejected(self):
        with pytest.raises(GuidanceError):
            Distribution.from_probs([("a", 0.0)])

    def test_zero_temperature_rejected(self):
        with pytest.raises(GuidanceError):
            Distribution.from_scores([("a", 1.0)], temperature=0.0)


class TestOperations:
    def test_restrict_renormalises(self):
        dist = Distribution.from_probs([("a", 0.5), ("b", 0.3),
                                        ("c", 0.2)])
        restricted = dist.restrict(["a", "b"])
        assert restricted.prob_of("a") == pytest.approx(0.625)
        assert restricted.prob_of("c") == 0.0

    def test_restrict_to_nothing_raises(self):
        dist = Distribution.from_probs([("a", 1.0)])
        with pytest.raises(GuidanceError):
            dist.restrict(["zzz"])

    def test_rank_of(self):
        dist = Distribution.from_probs([("a", 0.7), ("b", 0.3)])
        assert dist.rank_of("a") == 0
        assert dist.rank_of("b") == 1
        assert dist.rank_of("missing") is None

    def test_top_of_empty_raises(self):
        with pytest.raises(GuidanceError):
            Distribution(entries=()).top


class TestProperties:
    @given(st.lists(st.floats(min_value=0.01, max_value=100.0),
                    min_size=1, max_size=20))
    def test_from_probs_always_sums_to_one(self, weights):
        entries = [(i, w) for i, w in enumerate(weights)]
        dist = Distribution.from_probs(entries)
        assert math.isclose(sum(p for _, p in dist), 1.0, abs_tol=1e-9)

    @given(st.lists(st.floats(min_value=-50, max_value=50),
                    min_size=1, max_size=20),
           st.floats(min_value=0.05, max_value=5.0))
    def test_softmax_always_sums_to_one(self, scores, temperature):
        entries = [(i, s) for i, s in enumerate(scores)]
        dist = Distribution.from_scores(entries, temperature=temperature)
        assert math.isclose(sum(p for _, p in dist), 1.0, abs_tol=1e-9)
