"""Per-model guidance cache-key projection.

The contract under test (see ``repro.guidance.base`` /
``repro.guidance.batched``): a model that declares which context fields
its decisions read (:meth:`GuidanceModel.cache_fields`) gets its
distributions cached under :meth:`GuidanceRequest.projected_key` — a key
over only those fields. A sound projection merges entries the
conservative full-context key kept apart (more hits), and must never
change a distribution: the candidate stream under a projected key is
bit-for-bit the stream under the conservative key.
"""

from __future__ import annotations

import pytest

from repro.core.enumerator import Enumerator, EnumeratorConfig
from repro.datasets import (
    DETAIL_FULL,
    SpiderCorpusConfig,
    generate_corpus,
    synthesize_tsq,
)
from repro.errors import GuidanceError
from repro.guidance.base import CACHE_FIELDS
from repro.guidance.batched import BatchingGuidanceModel
from repro.guidance.lexical import LexicalGuidanceModel
from repro.guidance.oracle import CalibratedOracleModel
from repro.sqlir.ast import Query
from repro.sqlir.canon import signature

from tests.core.fixtures.generate_search_golden import stable_repr
from tests.guidance.test_batched import kw_request


class TestDeclarations:
    def test_oracle_declares_its_projection(self):
        wrapper = BatchingGuidanceModel(CalibratedOracleModel())
        assert wrapper.cache_key_fields == ("task_id", "gold",
                                            "decision_prefix")

    def test_lexical_declares_its_projection(self):
        wrapper = BatchingGuidanceModel(LexicalGuidanceModel())
        assert wrapper.cache_key_fields == ("schema", "nlq", "partial")

    def test_undeclared_model_gets_the_conservative_key(self):
        class Undeclared(LexicalGuidanceModel):
            name = "undeclared"

            def cache_fields(self):
                return None

        wrapper = BatchingGuidanceModel(Undeclared())
        assert wrapper.cache_key_fields is None

    def test_unknown_fields_fail_at_wrap_time(self):
        class Sloppy(LexicalGuidanceModel):
            name = "sloppy"

            def cache_fields(self):
                return ("task_id", "moon_phase")

        with pytest.raises(GuidanceError, match="moon_phase"):
            BatchingGuidanceModel(Sloppy())

    def test_every_documented_field_is_accepted(self):
        class Everything(LexicalGuidanceModel):
            def cache_fields(self):
                return CACHE_FIELDS

        wrapper = BatchingGuidanceModel(Everything())
        assert wrapper.cache_key_fields == CACHE_FIELDS


class TestProjectedKey:
    def test_projection_merges_undeclared_fields(self):
        """Two requests differing only in the partial query share a key
        once ``partial`` is projected away — the conservative key keeps
        them apart."""
        bare = kw_request()
        shaped = kw_request(partial=Query.empty())
        assert bare.cache_key() != shaped.cache_key()
        fields = ("task_id", "decision_prefix")
        assert bare.projected_key(fields) == shaped.projected_key(fields)

    def test_method_and_args_always_distinguish(self):
        fields = ("task_id",)
        assert kw_request().projected_key(fields) \
            != kw_request(clause="group_by").projected_key(fields)

    def test_declared_fields_still_distinguish(self):
        fields = ("task_id",)
        assert kw_request(task_id="t1").projected_key(fields) \
            != kw_request(task_id="t2").projected_key(fields)

    def test_clause_presence_prefix_is_empty(self):
        """Keyword decisions are partial-independent, which is exactly
        why ``decision_prefix`` may replace ``partial`` in their key."""
        assert kw_request(partial=Query.empty()).decision_prefix() == ()

    def test_unknown_field_raises(self):
        with pytest.raises(GuidanceError, match="moon_phase"):
            kw_request().projected_key(("moon_phase",))


@pytest.fixture(scope="module")
def oracle_task():
    corpus = generate_corpus("dev", SpiderCorpusConfig(
        num_databases=1, tasks_per_database=1, seed=7))
    task = next(iter(corpus))
    db = corpus.database_for(task)
    tsq = synthesize_tsq(task, db, detail=DETAIL_FULL, seed=0)
    return db, task, tsq


def _run(wrapper, oracle_task):
    db, task, tsq = oracle_task
    config = EnumeratorConfig(max_candidates=10, max_expansions=2500,
                              time_budget=None)
    enumerator = Enumerator(db, wrapper, task.nlq, tsq=tsq, config=config,
                            gold=task.gold, task_id=task.task_id)
    return [(c.index, c.confidence, stable_repr(signature(c.query)))
            for c in enumerator.enumerate()]


class TestProjectionIsInvisibleInTheStream:
    def test_projected_stream_matches_conservative_with_more_hits(
            self, oracle_task, monkeypatch):
        """The whole point: projecting the oracle's key changes cache
        economics (>= hits), never the candidate stream."""
        projected = BatchingGuidanceModel(CalibratedOracleModel(seed=0))
        assert projected.cache_key_fields is not None
        projected_stream = _run(projected, oracle_task)

        monkeypatch.setattr(CalibratedOracleModel, "cache_fields",
                            lambda self: None)
        conservative = BatchingGuidanceModel(CalibratedOracleModel(seed=0))
        assert conservative.cache_key_fields is None
        conservative_stream = _run(conservative, oracle_task)

        assert projected_stream, "task must emit candidates"
        assert projected_stream == conservative_stream
        assert projected.counters.cache_hits \
            >= conservative.counters.cache_hits
        assert projected.counters.requests_in \
            == conservative.counters.requests_in
        # Fewer distinct keys reach the inner model under the merge.
        assert projected.counters.unique_scored \
            <= conservative.counters.unique_scored

    def test_lexical_projection_matches_conservative(
            self, oracle_task, monkeypatch):
        """Same lock for the lexical model's new declaration: projecting
        ``task_id``/``gold`` away merges cache entries but leaves the
        candidate stream bit-for-bit unchanged."""
        projected = BatchingGuidanceModel(LexicalGuidanceModel())
        assert projected.cache_key_fields == ("schema", "nlq", "partial")
        projected_stream = _run(projected, oracle_task)

        monkeypatch.setattr(LexicalGuidanceModel, "cache_fields",
                            lambda self: None)
        conservative = BatchingGuidanceModel(LexicalGuidanceModel())
        assert conservative.cache_key_fields is None
        conservative_stream = _run(conservative, oracle_task)

        assert projected_stream, "task must emit candidates"
        assert projected_stream == conservative_stream
        assert projected.counters.cache_hits \
            >= conservative.counters.cache_hits
        assert projected.counters.requests_in \
            == conservative.counters.requests_in
        assert projected.counters.unique_scored \
            <= conservative.counters.unique_scored
