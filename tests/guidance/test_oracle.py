"""Tests for the calibrated noisy-oracle guidance backend."""

import math

import pytest

from repro.guidance.base import (
    GuidanceContext,
    SLOT_GROUP_BY,
    SLOT_ORDER_BY,
    SLOT_SELECT,
    SLOT_WHERE,
)
from repro.guidance.oracle import AccuracyProfile, CalibratedOracleModel
from repro.nlq.literals import NLQuery
from repro.sqlir.ast import AggOp, ColumnRef, CompOp, LogicOp, STAR
from repro.sqlir.parser import parse_sql


@pytest.fixture
def ctx(movie_schema):
    gold = parse_sql(
        "SELECT t1.name, COUNT(*) FROM actor t1 JOIN starring t2 ON "
        "t1.aid = t2.aid GROUP BY t1.name HAVING COUNT(*) > 3",
        movie_schema)
    nlq = NLQuery.from_text("How many movies has each actor starred in, "
                            "more than 3?", literals=[3])
    return GuidanceContext(nlq=nlq, schema=movie_schema, gold=gold,
                           task_id="test-task")


def all_columns(schema):
    return list(schema.iter_column_refs())


class TestDeterminism:
    def test_same_seed_same_distribution(self, ctx, movie_schema):
        a = CalibratedOracleModel(seed=5)
        b = CalibratedOracleModel(seed=5)
        cols = all_columns(movie_schema)
        assert a.column(ctx, SLOT_SELECT, cols).entries == \
            b.column(ctx, SLOT_SELECT, cols).entries

    def test_different_seed_differs_somewhere(self, ctx, movie_schema):
        cols = all_columns(movie_schema)
        outcomes = set()
        for seed in range(8):
            model = CalibratedOracleModel(seed=seed)
            outcomes.add(model.column(ctx, SLOT_SELECT, cols).entries)
        assert len(outcomes) > 1


class TestGoldRecovery:
    def test_clause_presence_prefers_gold(self, ctx):
        """Across many seeds, the gold class tops ~accuracy of the time."""
        hits = 0
        trials = 200
        for seed in range(trials):
            model = CalibratedOracleModel(seed=seed)
            if model.clause_presence(ctx, SLOT_WHERE).top is False:
                hits += 1
        assert hits / trials == pytest.approx(
            AccuracyProfile().clause_presence, abs=0.07)

    def test_first_select_column_gold(self, ctx, movie_schema):
        hits = 0
        trials = 200
        cols = all_columns(movie_schema)
        for seed in range(trials):
            model = CalibratedOracleModel(seed=seed)
            if model.column(ctx, SLOT_SELECT, cols).top == \
                    ColumnRef("actor", "name"):
                hits += 1
        assert hits / trials == pytest.approx(AccuracyProfile().column,
                                              abs=0.08)

    def test_off_gold_branch_gets_no_boost(self, ctx, movie_schema):
        """Once the partial deviates from gold, no column is favoured."""
        model = CalibratedOracleModel(seed=0)
        # Pretend the partial already picked a non-gold first column.
        from repro.sqlir.ast import HOLE, Query, SelectItem

        partial = Query.empty().replace(select=(
            SelectItem(agg=AggOp.NONE, column=ColumnRef("movie", "title")),
            HOLE))
        deviated = GuidanceContext(nlq=ctx.nlq, schema=ctx.schema,
                                   partial=partial, gold=ctx.gold,
                                   task_id=ctx.task_id)
        gold_next = model._next_gold_column(deviated, SLOT_SELECT)
        assert gold_next is None

    def test_logic_gold(self, movie_schema):
        gold = parse_sql(
            "SELECT title FROM movie WHERE year < 1995 OR year > 2000",
            movie_schema)
        ctx = GuidanceContext(nlq=NLQuery.from_text("q", literals=[]),
                              schema=movie_schema, gold=gold, task_id="t")
        hits = sum(
            1 for seed in range(100)
            if CalibratedOracleModel(seed=seed).logic(ctx).top
            is LogicOp.OR)
        assert hits > 80

    def test_limit_value_gold(self, movie_schema):
        gold = parse_sql(
            "SELECT title FROM movie ORDER BY year DESC LIMIT 3",
            movie_schema)
        ctx = GuidanceContext(nlq=NLQuery.from_text("q", literals=[3]),
                              schema=movie_schema, gold=gold, task_id="t")
        model = CalibratedOracleModel(seed=1)
        dist = model.limit_value(ctx, [1, 3, 5])
        assert dist.prob_of(3) > 0


class TestDistributionsNormalised:
    def test_every_module_sums_to_one(self, ctx, movie_schema):
        model = CalibratedOracleModel(seed=0)
        cols = all_columns(movie_schema)
        dists = [
            model.clause_presence(ctx, SLOT_WHERE),
            model.num_items(ctx, SLOT_SELECT, 3),
            model.column(ctx, SLOT_SELECT, cols),
            model.aggregate(ctx, SLOT_SELECT, cols[0],
                            [AggOp.NONE, AggOp.COUNT]),
            model.comparison(ctx, SLOT_WHERE, cols[0],
                             [CompOp.EQ, CompOp.LT]),
            model.logic(ctx),
            model.direction(ctx, cols[0]),
            model.having_presence(ctx),
            model.value(ctx, SLOT_WHERE, cols[0], [1, 2, 3]),
            model.limit_value(ctx, [1, 3]),
        ]
        for dist in dists:
            assert math.isclose(sum(p for _, p in dist), 1.0,
                                abs_tol=1e-6)


class TestProfileScaling:
    def test_scaled_profile_clamped(self):
        low = AccuracyProfile().scaled(0.01)
        assert low.column >= 0.05
        high = AccuracyProfile().scaled(10.0)
        assert high.column <= 0.995

    def test_scaled_preserves_decay(self):
        assert AccuracyProfile().scaled(0.5).decay == \
            AccuracyProfile().decay
