"""Server guidance backend: wire protocol, live scoring, degrade rules.

Spins the stub server from ``examples/guidance_server.py`` up on an
ephemeral port and drives ``ServerGuidanceModel`` against it; the
failure-mode tests stand up misbehaving servers instead. The contract:
a healthy server answers whole batches in one round trip with
distributions over the caller's own candidate objects; any failure
(dead address, timeout, wrong arity, garbage) logs a warning, flips
``degraded``, and routes everything to the local fallback model — the
stream switches scorer visibly, exactly once, and never crashes.
"""

from __future__ import annotations

import importlib.util
import json
import logging
import socketserver
import threading
from pathlib import Path

import pytest

from repro.errors import GuidanceError
from repro.guidance.base import GuidanceRequest, SLOT_SELECT, SLOT_WHERE
from repro.guidance.batched import ServerGuidanceModel
from repro.guidance.oracle import CalibratedOracleModel

from tests.guidance.test_batched import col_request, kw_request, make_ctx

EXAMPLE = Path(__file__).resolve().parents[2] / "examples" \
    / "guidance_server.py"


def load_example():
    spec = importlib.util.spec_from_file_location("guidance_server_example",
                                                  EXAMPLE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def stub():
    module = load_example()
    server = module.make_server(port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield module, f"{host}:{port}"
    server.shutdown()
    server.server_close()


def serve_lines(reply_fn):
    """A one-shot TCP server answering each request line via reply_fn."""
    class Handler(socketserver.StreamRequestHandler):
        def handle(self):
            for line in self.rfile:
                reply = reply_fn(line)
                if reply is None:
                    return
                self.wfile.write(reply.encode("utf-8"))
                self.wfile.flush()

    server = socketserver.ThreadingTCPServer(("127.0.0.1", 0), Handler)
    server.daemon_threads = True
    threading.Thread(target=server.serve_forever, daemon=True).start()
    host, port = server.server_address[:2]
    return server, f"{host}:{port}"


def handshake_reply(line, version=1):
    """The well-formed handshake response for a client ``hello`` line,
    or None when the line is not a handshake."""
    payload = json.loads(line)
    if payload.get("hello"):
        return json.dumps({"id": payload.get("id"), "v": version}) + "\n"
    return None


def serve_scripted(score_replies, version=1):
    """A server that handshakes properly, then plays ``score_replies``
    (a list of reply factories taking the parsed request) for score
    lines, and hangs up when the script runs out."""
    script = list(score_replies)

    def reply(line):
        shake = handshake_reply(line, version=version)
        if shake is not None:
            return shake
        if not script:
            return None
        factory = script.pop(0)
        return factory(json.loads(line))

    return serve_lines(reply)


class TestStubScorer:
    def test_scores_align_with_candidates_and_are_deterministic(self):
        module = load_example()
        request = {"method": "column", "nlq": "movies before 1995",
                   "candidates": ["title", "year", "revenue"]}
        first = module.score_request(request)
        assert len(first) == 3
        assert first == module.score_request(request)

    def test_batch_reply_echoes_the_request_id(self):
        module = load_example()
        reply = module.score_batch({"id": 42, "requests": [
            {"method": "logic", "nlq": "x", "candidates": ["AND", "OR"]}]})
        assert reply["id"] == 42
        assert len(reply["scores"]) == 1 and len(reply["scores"][0]) == 2


class TestLiveServer:
    def test_batch_round_trip_returns_normalised_distributions(self, stub):
        _, address = stub
        model = ServerGuidanceModel(address,
                                    fallback=CalibratedOracleModel(seed=0))
        try:
            requests = [kw_request(), col_request(),
                        GuidanceRequest("logic", make_ctx())]
            distributions = model.score_batch(requests)
            assert not model.degraded
            assert len(distributions) == 3
            for request, dist in zip(requests, distributions):
                from repro.guidance.batched import request_candidates

                assert {c for c, _ in dist} == set(request_candidates(request))
                assert abs(sum(p for _, p in dist) - 1.0) < 1e-6
        finally:
            model.close()

    def test_identical_requests_score_identically(self, stub):
        _, address = stub
        model = ServerGuidanceModel(address,
                                    fallback=CalibratedOracleModel(seed=0))
        try:
            first = model.score_batch([col_request()])
            second = model.score_batch([col_request()])
            assert first == second
        finally:
            model.close()

    def test_per_call_method_routes_through_the_server(self, stub):
        _, address = stub
        model = ServerGuidanceModel(address,
                                    fallback=CalibratedOracleModel(seed=0))
        try:
            dist = model.clause_presence(make_ctx(), SLOT_WHERE)
            assert {choice for choice, _ in dist} == {True, False}
            assert not model.degraded
        finally:
            model.close()

    def test_serialize_carries_the_scorer_inputs(self):
        request = col_request()
        payload = ServerGuidanceModel.serialize(
            request, list(request.args[-1]))
        assert payload["method"] == "column"
        assert payload["nlq"] == "movies before 1995"
        assert payload["schema"] == "movies"
        assert payload["task"] == "t1"
        assert len(payload["candidates"]) == 2
        json.dumps(payload)  # must be wire-safe as-is


class TestDegrade:
    def fallback_model(self):
        return CalibratedOracleModel(seed=0)

    def test_dead_address_degrades_to_fallback(self, caplog):
        fallback = self.fallback_model()
        model = ServerGuidanceModel("127.0.0.1:1", fallback=fallback,
                                    timeout=0.5)
        request = kw_request()
        with caplog.at_level(logging.WARNING, "repro.guidance.batched"):
            result = model.score_batch([request])
        assert model.degraded
        assert "degrading to the local" in caplog.text
        assert result == [request.invoke(self.fallback_model())]

    def test_exhausted_budget_degrades_permanently(self, caplog):
        """Reconnects are bounded: once the budget is spent the model
        never opens another socket — the pre-reconnect contract."""
        model = ServerGuidanceModel("127.0.0.1:1",
                                    fallback=self.fallback_model(),
                                    timeout=0.5, max_reconnects=2)
        with caplog.at_level(logging.WARNING, "repro.guidance.batched"):
            for _ in range(5):
                model.score_batch([kw_request()])
        assert model.degraded
        assert model.reconnects == 0
        assert "giving up on reconnects" in caplog.text
        connects = []
        original = ServerGuidanceModel._ensure_connection

        def counting(self):
            connects.append(1)
            return original(self)

        ServerGuidanceModel._ensure_connection = counting
        try:
            model.score_batch([col_request()])
        finally:
            ServerGuidanceModel._ensure_connection = original
        assert not connects, "a permanently degraded model reconnected"

    def test_reconnect_heals_after_a_server_restart(self, stub, caplog):
        """The ROADMAP item: a scorer restart mid-run must not cost the
        rest of the run. First batch dies on a hung-up server; the next
        one reconnects (to the healthy stub) and is server-scored."""
        module, address = stub
        # A server that handshakes, then hangs up before scoring.
        dying, dying_address = serve_scripted([])
        try:
            fallback = self.fallback_model()
            model = ServerGuidanceModel(dying_address, fallback=fallback,
                                        timeout=2.0, max_reconnects=2)
            request = kw_request()
            with caplog.at_level(logging.WARNING,
                                 "repro.guidance.batched"):
                first = model.score_batch([request])
            assert model.degraded
            assert first == [request.invoke(self.fallback_model())]
            epoch_after_degrade = model.scorer_epoch
            # "Restart" the scorer: point the model at the healthy stub.
            model.host, model.port = address.rsplit(":", 1)[0], \
                int(address.rsplit(":", 1)[1])
            second = model.score_batch([request])
            assert not model.degraded
            assert model.reconnects == 1
            assert model.scorer_epoch == epoch_after_degrade + 1
            assert "reconnected" in caplog.text
            # Server-scored again: differs from the fallback's answer.
            assert second != [request.invoke(self.fallback_model())]
        finally:
            dying.shutdown()
            dying.server_close()


class TestHandshake:
    def fallback_model(self):
        return CalibratedOracleModel(seed=0)

    def test_handshake_runs_on_connect(self, stub):
        _, address = stub
        model = ServerGuidanceModel(address,
                                    fallback=self.fallback_model())
        try:
            model.score_batch([kw_request()])
            assert not model.degraded  # handshake + scoring both fine
        finally:
            model.close()

    def test_version_mismatch_degrades_permanently(self, caplog):
        """A peer speaking another protocol version is rejected at the
        handshake — permanently, with the whole reconnect budget
        forfeited (reconnecting cannot fix an incompatibility)."""
        server, address = serve_scripted([], version=99)
        try:
            model = ServerGuidanceModel(address,
                                        fallback=self.fallback_model(),
                                        timeout=2.0, max_reconnects=5)
            request = kw_request()
            with caplog.at_level(logging.WARNING,
                                 "repro.guidance.batched"):
                result = model.score_batch([request])
            assert model.degraded
            assert "protocol" in caplog.text
            assert result == [request.invoke(self.fallback_model())]
            # The budget is forfeit: no further connection attempts.
            connects = []
            original = ServerGuidanceModel._ensure_connection

            def counting(inner_self):
                connects.append(1)
                return original(inner_self)

            ServerGuidanceModel._ensure_connection = counting
            try:
                model.score_batch([kw_request()])
            finally:
                ServerGuidanceModel._ensure_connection = original
            assert not connects
        finally:
            server.shutdown()
            server.server_close()

    def test_stub_server_answers_the_handshake(self):
        module = load_example()
        reply = module.score_batch({"id": 3, "hello": True})
        assert reply == {"id": 3, "v": 1}

    @pytest.mark.parametrize("reply", [
        "not json\n",                                      # garbage
        json.dumps({"id": 0, "scores": []}) + "\n",        # wrong arity
        json.dumps({"id": 999, "scores": [[1.0, 1.0]]}) + "\n",  # bad id
        json.dumps({"id": 0, "scores": [[1.0]]}) + "\n",   # short scores
        None,                                              # hangup
    ])
    def test_protocol_violations_degrade(self, caplog, reply):
        server, address = serve_lines(lambda line: reply)
        try:
            fallback = self.fallback_model()
            model = ServerGuidanceModel(address, fallback=fallback,
                                        timeout=2.0)
            request = kw_request()
            with caplog.at_level(logging.WARNING, "repro.guidance.batched"):
                result = model.score_batch([request])
            assert model.degraded
            assert result == [request.invoke(self.fallback_model())]
        finally:
            server.shutdown()
            server.server_close()

    def test_bad_address_format_rejected_upfront(self):
        with pytest.raises(GuidanceError):
            ServerGuidanceModel("nonsense", fallback=self.fallback_model())

    def test_degrade_flushes_cached_server_distributions(self, caplog):
        """Once the server fails, the batching layer must not keep
        serving its pre-degrade distributions from cache — from the
        switch on, *every* answer is the fallback's."""
        from repro.guidance.batched import BatchingGuidanceModel

        # Handshakes, scores exactly one batch, then hangs up for good.
        server, address = serve_scripted([
            lambda payload: json.dumps(
                {"id": payload["id"], "scores": [[5.0, 1.0]]}) + "\n",
        ])
        try:
            model = BatchingGuidanceModel(ServerGuidanceModel(
                address, fallback=self.fallback_model(), timeout=2.0,
                max_reconnects=0))
            request = kw_request()
            with caplog.at_level(logging.WARNING, "repro.guidance.batched"):
                server_scored = model.score_batch([request])[0]
                # A second, different request hits the hung-up server
                # and triggers the degrade.
                model.score_batch([col_request()])
                assert model.degraded
                after = model.score_batch([request])[0]
            fallback_answer = request.invoke(self.fallback_model())
            assert server_scored != fallback_answer  # scorers do differ
            assert after == fallback_answer, \
                "a cached server distribution survived the degrade"
        finally:
            server.shutdown()
            server.server_close()

    def test_reconnect_flushes_cached_fallback_distributions(self, stub):
        """The symmetric flush: distributions cached while degraded are
        the fallback's; after a successful reconnect every answer must
        come from the server again."""
        from repro.guidance.batched import BatchingGuidanceModel

        _, address = stub
        dying, dying_address = serve_scripted([])
        try:
            inner = ServerGuidanceModel(dying_address,
                                        fallback=self.fallback_model(),
                                        timeout=2.0, max_reconnects=2)
            model = BatchingGuidanceModel(inner)
            request = kw_request()
            degraded_answer = model.score_batch([request])[0]
            assert inner.degraded
            assert degraded_answer == request.invoke(self.fallback_model())
            # Heal onto the healthy stub. A *fresh* request has to
            # reach the inner model to trigger the reconnect (repeats
            # of cached requests are answered by the wrapper without
            # touching the server — by design); after the switch, the
            # cached fallback answer must be gone.
            inner.host, inner.port = address.rsplit(":", 1)[0], \
                int(address.rsplit(":", 1)[1])
            model.score_batch([col_request()])
            assert not inner.degraded
            healed_answer = model.score_batch([request])[0]
            assert healed_answer != degraded_answer, \
                "a cached fallback distribution survived the reconnect"
        finally:
            dying.shutdown()
            dying.server_close()

    def test_empty_candidate_request_yields_empty_distribution(self, stub):
        _, address = stub
        model = ServerGuidanceModel(address,
                                    fallback=self.fallback_model())
        try:
            dist = model.limit_value(make_ctx(), [])
            assert len(dist) == 0
        finally:
            model.close()


class TestReconnectBackoff:
    """PR 10: reconnect attempts back off under RECONNECT_POLICY
    instead of redialling back-to-back, without changing the bounded
    reconnect budget or the ``reconnects`` telemetry semantics."""

    def fallback_model(self):
        return CalibratedOracleModel(seed=0)

    def test_failed_reconnects_back_off_deterministically(self, caplog):
        model = ServerGuidanceModel("127.0.0.1:1",
                                    fallback=self.fallback_model(),
                                    timeout=0.5, max_reconnects=3)
        slept = []
        model._sleep = slept.append
        policy = ServerGuidanceModel.RECONNECT_POLICY
        with caplog.at_level(logging.WARNING, "repro.guidance.batched"):
            # First batch degrades (the initial connect is not a
            # reconnect and must not sleep); the next three each burn
            # one reconnect attempt, backing off before redialling.
            for _ in range(5):
                model.score_batch([kw_request()])
        assert slept == [policy.delay_for(0), policy.delay_for(1),
                         policy.delay_for(2)]
        assert slept == sorted(slept), "backoff must not shrink"
        assert model.degraded
        assert model.reconnects == 0
        assert "giving up on reconnects" in caplog.text

    def test_successful_reconnect_still_counts_once(self, stub, caplog):
        """The healing path from the PR 7 contract, now with one
        backoff sleep in front of the redial."""
        module, address = stub
        dying, dying_address = serve_scripted([])
        try:
            model = ServerGuidanceModel(dying_address,
                                        fallback=self.fallback_model(),
                                        timeout=2.0, max_reconnects=2)
            slept = []
            model._sleep = slept.append
            with caplog.at_level(logging.WARNING,
                                 "repro.guidance.batched"):
                model.score_batch([kw_request()])
            assert model.degraded
            model.host, model.port = address.rsplit(":", 1)[0], \
                int(address.rsplit(":", 1)[1])
            model.score_batch([kw_request()])
            assert not model.degraded
            assert model.reconnects == 1
            assert slept == \
                [ServerGuidanceModel.RECONNECT_POLICY.delay_for(0)]
        finally:
            dying.shutdown()
            dying.server_close()
