"""Tests for the lexical guidance backend."""

import pytest

from repro.guidance.base import (
    GuidanceContext,
    SLOT_GROUP_BY,
    SLOT_ORDER_BY,
    SLOT_SELECT,
    SLOT_WHERE,
)
from repro.guidance.lexical import LexicalGuidanceModel
from repro.guidance.modules import MODULES, module_by_name
from repro.nlq.literals import NLQuery
from repro.sqlir.ast import AggOp, ColumnRef, CompOp, Direction, LogicOp


def make_ctx(schema, text, literals=()):
    return GuidanceContext(nlq=NLQuery.from_text(text, literals=literals),
                           schema=schema)


@pytest.fixture
def model():
    return LexicalGuidanceModel()


class TestClausePresence:
    def test_literals_suggest_where(self, model, movie_schema):
        ctx = make_ctx(movie_schema, "movies before 1995", [1995])
        assert model.clause_presence(ctx, SLOT_WHERE).top is True

    def test_no_cues_no_where(self, model, movie_schema):
        ctx = make_ctx(movie_schema, "list all movie titles")
        assert model.clause_presence(ctx, SLOT_WHERE).top is False

    def test_for_each_suggests_grouping(self, model, movie_schema):
        ctx = make_ctx(movie_schema,
                       "number of movies for each actor name")
        assert model.clause_presence(ctx, SLOT_GROUP_BY).top is True

    def test_sorted_cue(self, model, movie_schema):
        ctx = make_ctx(movie_schema, "movie titles ordered by year")
        assert model.clause_presence(ctx, SLOT_ORDER_BY).top is True


class TestColumn:
    def test_linked_column_ranked_first(self, model, movie_schema):
        ctx = make_ctx(movie_schema, "list the movie titles")
        candidates = list(movie_schema.iter_column_refs())
        dist = model.column(ctx, SLOT_SELECT, candidates)
        assert dist.top == ColumnRef("movie", "title")


class TestAggregate:
    def test_how_many_cues_count(self, model, movie_schema):
        ctx = make_ctx(movie_schema, "how many movies are there")
        dist = model.aggregate(ctx, SLOT_SELECT,
                               ColumnRef("movie", "mid"),
                               [AggOp.NONE, AggOp.COUNT, AggOp.MAX])
        assert dist.top is AggOp.COUNT

    def test_no_cue_prefers_plain(self, model, movie_schema):
        ctx = make_ctx(movie_schema, "list the years")
        dist = model.aggregate(ctx, SLOT_SELECT,
                               ColumnRef("movie", "year"),
                               [AggOp.NONE, AggOp.COUNT, AggOp.MAX])
        assert dist.top is AggOp.NONE

    def test_text_column_rejects_numeric_aggs(self, model, movie_schema):
        ctx = make_ctx(movie_schema, "the highest title")
        dist = model.aggregate(ctx, SLOT_SELECT,
                               ColumnRef("movie", "title"),
                               [AggOp.NONE, AggOp.MAX])
        assert dist.prob_of(AggOp.MAX) < 0.05


class TestComparison:
    def test_more_than_cues_gt(self, model, movie_schema):
        ctx = make_ctx(movie_schema, "movies with more than 100 revenue",
                       [100])
        dist = model.comparison(ctx, SLOT_WHERE,
                                ColumnRef("movie", "revenue"),
                                [CompOp.EQ, CompOp.GT, CompOp.LT])
        assert dist.top is CompOp.GT

    def test_default_eq(self, model, movie_schema):
        ctx = make_ctx(movie_schema, 'movies named "Gravity"',
                       ["Gravity"])
        dist = model.comparison(ctx, SLOT_WHERE,
                                ColumnRef("movie", "title"),
                                [CompOp.EQ, CompOp.NE, CompOp.LIKE])
        assert dist.top is CompOp.EQ


class TestLogicAndDirection:
    def test_or_cue(self, model, movie_schema):
        ctx = make_ctx(movie_schema, "before 1995 or after 2000",
                       [1995, 2000])
        assert model.logic(ctx).top is LogicOp.OR

    def test_and_default(self, model, movie_schema):
        ctx = make_ctx(movie_schema, "movies before 1995 with revenue "
                                     "above 100", [1995, 100])
        assert model.logic(ctx).top is LogicOp.AND

    def test_descending_cue(self, model, movie_schema):
        ctx = make_ctx(movie_schema,
                       "titles ordered from highest to lowest revenue")
        direction, _ = model.direction(ctx,
                                       ColumnRef("movie", "revenue")).top
        assert direction is Direction.DESC


class TestModuleRegistry:
    def test_table3_modules_present(self):
        names = {m.name for m in MODULES}
        assert names == {"KW", "COL", "OP", "AGG", "AND/OR", "DESC/ASC",
                         "HAVING"}

    def test_lookup(self):
        assert module_by_name("COL").output == "Set"
        with pytest.raises(KeyError):
            module_by_name("NOPE")

    def test_methods_exist_on_model(self, model):
        for module in MODULES:
            assert hasattr(model, module.method)
