"""Batching guidance backend: keying, dedup, memoisation, counters.

The contract under test (see ``repro.guidance.batched``): wrapping a
deterministic model in :class:`BatchingGuidanceModel` never changes any
distribution — identical requests (equal ``cache_key()``) are scored
once per batch and served from a bounded LRU across batches, with the
savings visible only in the amortisation counters.
"""

from __future__ import annotations

import pytest

from repro.core.search.scheduler import DecisionScheduler
from repro.errors import GuidanceError
from repro.guidance.base import (
    Distribution,
    GuidanceContext,
    GuidanceRequest,
    SLOT_SELECT,
    SLOT_WHERE,
)
from repro.guidance.batched import (
    AmortisationCounters,
    BatchingGuidanceModel,
    GuidanceCache,
    request_candidates,
)
from repro.guidance.oracle import CalibratedOracleModel
from repro.nlq.literals import NLQuery
from repro.sqlir.ast import HOLE, ColumnRef, Query

from tests.conftest import build_movie_schema

SCHEMA = build_movie_schema()


class SpyModel:
    """Forwards to a real model while recording score_batch traffic."""

    def __init__(self, inner):
        self.inner = inner
        self.batches = []

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def score_batch(self, requests):
        self.batches.append(list(requests))
        return self.inner.score_batch(requests)


def make_ctx(task_id: str = "t1", partial=None) -> GuidanceContext:
    return GuidanceContext(nlq=NLQuery.from_text("movies before 1995"),
                           schema=SCHEMA, partial=partial, task_id=task_id)


def kw_request(task_id: str = "t1", clause: str = SLOT_WHERE,
               partial=None) -> GuidanceRequest:
    return GuidanceRequest("clause_presence", make_ctx(task_id, partial),
                           (clause,))


def col_request(task_id: str = "t1") -> GuidanceRequest:
    candidates = (ColumnRef("movie", "title"), ColumnRef("movie", "year"))
    return GuidanceRequest("column", make_ctx(task_id),
                           (SLOT_SELECT, candidates))


class TestCacheKey:
    def test_equal_content_gives_equal_keys(self):
        assert kw_request().cache_key() == kw_request().cache_key()

    def test_method_args_task_and_partial_all_distinguish(self):
        base = kw_request().cache_key()
        assert kw_request(clause="group_by").cache_key() != base
        assert kw_request(task_id="t2").cache_key() != base
        assert kw_request(partial=Query.empty()).cache_key() != base
        assert col_request().cache_key() != base

    def test_keys_are_hashable(self):
        assert len({kw_request().cache_key(), col_request().cache_key()}) \
            == 2

    def test_same_named_structurally_different_schemas_distinguish(self):
        """Schema identity is content-based, not name-based: a wrapper
        shared across two same-named but different schemas must never
        serve one schema's distribution for the other."""
        from repro.db import make_schema
        from repro.sqlir.types import ColumnType as T

        other = make_schema(
            "movies",  # same name as the fixture schema
            tables={"movie": [("mid", T.NUMBER), ("budget", T.NUMBER)]},
            primary_keys={"movie": "mid"})
        nlq = NLQuery.from_text("movies before 1995")
        same = GuidanceRequest(
            "clause_presence",
            GuidanceContext(nlq=nlq, schema=SCHEMA, task_id="t1"),
            (SLOT_WHERE,))
        renamed = GuidanceRequest(
            "clause_presence",
            GuidanceContext(nlq=nlq, schema=other, task_id="t1"),
            (SLOT_WHERE,))
        assert same.cache_key() == kw_request().cache_key()
        assert renamed.cache_key() != kw_request().cache_key()


class TestRequestCandidates:
    def test_fixed_arity_methods(self):
        assert request_candidates(kw_request()) == [True, False]
        ctx = make_ctx()
        assert request_candidates(
            GuidanceRequest("num_items", ctx, (SLOT_SELECT, 3))) == [1, 2, 3]
        assert len(request_candidates(
            GuidanceRequest("direction", ctx,
                            (ColumnRef("movie", "year"),)))) == 4

    def test_candidate_carrying_methods_echo_their_args(self):
        request = col_request()
        assert request_candidates(request) == list(request.args[-1])

    def test_unknown_method_raises(self):
        with pytest.raises(GuidanceError):
            request_candidates(
                GuidanceRequest("mystery", make_ctx(), ()))


class TestGuidanceCache:
    def test_roundtrip_and_len(self):
        cache = GuidanceCache(4)
        dist = Distribution.point(True)
        cache.put(("k",), dist)
        assert cache.get(("k",)) is dist
        assert len(cache) == 1
        assert cache.hits == 1 and cache.misses == 0

    def test_miss_counts(self):
        cache = GuidanceCache(4)
        assert cache.get(("absent",)) is None
        assert cache.misses == 1

    def test_lru_eviction_is_bounded_and_counted(self):
        cache = GuidanceCache(2)
        for key in ("a", "b", "c"):
            cache.put((key,), Distribution.point(key))
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.get(("a",)) is None  # the oldest went first

    def test_get_refreshes_recency(self):
        cache = GuidanceCache(2)
        cache.put(("a",), Distribution.point("a"))
        cache.put(("b",), Distribution.point("b"))
        cache.get(("a",))                        # a is now the freshest
        cache.put(("c",), Distribution.point("c"))
        assert cache.get(("b",)) is None
        assert cache.get(("a",)) is not None

    def test_zero_entries_rejected(self):
        with pytest.raises(GuidanceError):
            GuidanceCache(0)


class TestBatchingModel:
    def test_distributions_identical_to_unwrapped(self):
        inner = CalibratedOracleModel(seed=3)
        model = BatchingGuidanceModel(CalibratedOracleModel(seed=3))
        requests = [kw_request(), col_request(),
                    GuidanceRequest("logic", make_ctx())]
        batched = model.score_batch(requests)
        assert batched == [request.invoke(inner) for request in requests]

    def test_duplicates_within_a_batch_scored_once(self):
        spy = SpyModel(CalibratedOracleModel(seed=0))
        model = BatchingGuidanceModel(spy)
        request = kw_request()
        results = model.score_batch([request, col_request(), request])
        assert len(spy.batches) == 1
        assert len(spy.batches[0]) == 2          # deduplicated
        assert results[0] == results[2]
        counters = model.counters
        assert counters.requests_in == 3
        assert counters.unique_scored == 2
        assert counters.cache_hits == 1          # the in-batch duplicate
        assert counters.batch_calls == 1

    def test_repeats_across_batches_hit_the_cache(self):
        spy = SpyModel(CalibratedOracleModel(seed=0))
        model = BatchingGuidanceModel(spy)
        first = model.score_batch([kw_request(), col_request()])
        second = model.score_batch([kw_request(), col_request()])
        assert first == second
        assert len(spy.batches) == 1             # nothing new to score
        assert model.counters.cache_hits == 2
        assert model.counters.requests_in == 4

    def test_per_call_methods_share_the_cache(self):
        spy = SpyModel(CalibratedOracleModel(seed=0))
        model = BatchingGuidanceModel(spy)
        ctx = make_ctx()
        direct = model.clause_presence(ctx, SLOT_WHERE)
        batched = model.score_batch([kw_request()])[0]
        assert direct == batched
        assert model.counters.unique_scored == 1
        assert model.counters.cache_hits == 1
        assert not spy.batches                   # per-call used invoke()

    def test_counters_always_balance(self):
        model = BatchingGuidanceModel(CalibratedOracleModel(seed=0))
        model.score_batch([kw_request(), kw_request(), col_request()])
        model.score_batch([kw_request(task_id="t9")])
        counters = model.counters
        assert counters.requests_in == \
            counters.unique_scored + counters.cache_hits

    def test_delta_since(self):
        model = BatchingGuidanceModel(CalibratedOracleModel(seed=0))
        model.score_batch([kw_request()])
        start = model.counters.copy()
        model.score_batch([kw_request(), col_request()])
        delta = model.counters.delta_since(start)
        assert delta == AmortisationCounters(requests_in=2, unique_scored=1,
                                             cache_hits=1, batch_calls=1)

    def test_double_wrap_rejected(self):
        model = BatchingGuidanceModel(CalibratedOracleModel(seed=0))
        with pytest.raises(GuidanceError):
            BatchingGuidanceModel(model)

    def test_inner_miscounting_is_an_error(self):
        class Broken(SpyModel):
            def score_batch(self, requests):
                return []

        model = BatchingGuidanceModel(Broken(CalibratedOracleModel(seed=0)))
        with pytest.raises(GuidanceError):
            model.score_batch([kw_request()])

    def test_cache_bound_is_respected(self):
        model = BatchingGuidanceModel(CalibratedOracleModel(seed=0),
                                      cache_size=1)
        model.score_batch([kw_request(), col_request()])
        assert len(model.cache) == 1


class TestSchedulerDedup:
    """Duplicate requests within a round reach score_batch exactly once.

    The scheduler memoises per partial query; the batching wrapper
    below it collapses requests that are *identical in content* even
    when they belong to different frontier states.
    """

    def test_duplicate_requests_scored_once_per_round(self):
        spy = SpyModel(CalibratedOracleModel(seed=0))
        scheduler = DecisionScheduler(BatchingGuidanceModel(spy))
        q1 = Query.empty()
        q2 = Query.empty().replace(select=(HOLE,))
        request = kw_request()
        scheduler.schedule([(q1, request), (q2, request)])
        assert scheduler.batches == 1
        assert scheduler.calls == 2              # two scheduled decisions
        assert len(spy.batches) == 1
        assert len(spy.batches[0]) == 1          # but one model call
        first = scheduler.distribution_for(q1)
        second = scheduler.distribution_for(q2)
        assert first is not None and first == second
