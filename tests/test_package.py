"""Package-level tests: exports, errors, version."""

import pytest

import repro
from repro import errors


class TestExports:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__

    def test_subpackage_exports_resolve(self):
        import repro.baselines
        import repro.core
        import repro.datasets
        import repro.db
        import repro.eval
        import repro.guidance
        import repro.interaction
        import repro.nlq
        import repro.sqlir

        for module in (repro.core, repro.db, repro.guidance, repro.nlq,
                       repro.sqlir, repro.baselines, repro.datasets,
                       repro.interaction, repro.eval):
            for name in module.__all__:
                assert getattr(module, name) is not None, \
                    f"{module.__name__}.{name}"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        subclasses = [errors.SchemaError, errors.QueryError,
                      errors.RenderError, errors.ParseError,
                      errors.ExecutionError, errors.ExecutionTimeout,
                      errors.GuidanceError, errors.EnumerationError,
                      errors.TSQError, errors.DatasetError,
                      errors.UnsupportedTaskError]
        for cls in subclasses:
            assert issubclass(cls, errors.ReproError)

    def test_timeout_is_execution_error(self):
        assert issubclass(errors.ExecutionTimeout, errors.ExecutionError)

    def test_render_and_parse_are_query_errors(self):
        assert issubclass(errors.RenderError, errors.QueryError)
        assert issubclass(errors.ParseError, errors.QueryError)
