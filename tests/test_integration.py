"""End-to-end integration tests across the whole pipeline."""

import pytest

from repro import (
    Duoquest,
    EnumeratorConfig,
    NLQuery,
    TableSketchQuery,
    queries_equal,
    to_sql,
)
from repro.guidance import CalibratedOracleModel, LexicalGuidanceModel


class TestMovieScenario:
    """The paper's motivating example (Examples 2.1-2.2), end to end."""

    def test_tsq_disambiguates_cq3(self, movie_db):
        from repro.sqlir.parser import parse_sql

        # CQ3-style target: movies before 1995 or after 2000, sorted.
        gold = parse_sql(
            "SELECT t1.title, t1.year FROM movie t1 WHERE t1.year < 1994 "
            "OR t1.year > 2013 ORDER BY t1.year ASC", movie_db.schema)
        nlq = NLQuery.from_text(
            "movie titles and years before 1994 or after 2013 from "
            "earliest to most recent", literals=[1994, 2013])
        rows = movie_db.execute_query(gold)
        assert len(rows) >= 2
        tsq = TableSketchQuery.build(
            types=["text", "number"],
            rows=[list(rows[0]), list(rows[-1])],
            sorted=True)
        system = Duoquest(movie_db, model=CalibratedOracleModel(seed=1),
                          config=EnumeratorConfig(time_budget=15.0,
                                                  max_candidates=60))
        result = system.synthesize(nlq, tsq, gold=gold, task_id="cq3")
        rank = result.rank_of(lambda q: queries_equal(q, gold))
        assert rank is not None and rank <= 10

    def test_all_candidates_execute(self, movie_db):
        nlq = NLQuery.from_text("movie titles before 1994",
                                literals=[1994])
        system = Duoquest(movie_db, model=LexicalGuidanceModel(),
                          config=EnumeratorConfig(time_budget=6.0,
                                                  max_candidates=25))
        result = system.synthesize(
            nlq, TableSketchQuery.build(types=["text"]))
        assert result.candidates
        for candidate in result.candidates:
            movie_db.execute(to_sql(candidate.query), max_rows=5)


class TestSpiderPipeline:
    def test_corpus_to_simulation_to_report(self, mini_corpus):
        from repro.eval import (
            SimulationConfig,
            fig10_report,
            run_simulation,
        )

        records = run_simulation(
            mini_corpus, systems=("Duoquest", "NLI"),
            config=SimulationConfig(timeout=3.0))
        report = fig10_report(records, "integration")
        assert "Duoquest" in report
        # Duoquest must not do worse than the NLI anywhere.
        from repro.eval.metrics import top_k_accuracy

        duoquest = [r for r in records if r.system == "Duoquest"]
        nli = [r for r in records if r.system == "NLI"]
        assert top_k_accuracy(duoquest, 10)[1] >= \
            top_k_accuracy(nli, 10)[1]


class TestUserStudyPipeline:
    def test_small_study_runs(self, mas_db):
        from repro.datasets import pbe_study_tasks
        from repro.eval import UserStudyConfig, run_pbe_user_study

        config = UserStudyConfig(cohort_size=4, novices=2,
                                 system_budget=8.0, max_candidates=25)
        trials = run_pbe_user_study(mas_db, pbe_study_tasks(mas_db),
                                    config)
        assert len(trials) == 4 * 6
        systems = {t.system for t in trials}
        assert systems == {"PBE", "Duoquest"}
