"""Tests for SQL rendering."""

import pytest

from repro.errors import RenderError
from repro.sqlir.ast import (
    HOLE,
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    JoinEdge,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    STAR,
    SelectItem,
    Where,
)
from repro.sqlir.render import (
    quote_ident,
    quote_literal,
    to_debug_sql,
    to_sql,
)


def col(table, column):
    return ColumnRef(table=table, column=column)


def simple_query(**overrides):
    base = dict(
        select=(SelectItem(agg=AggOp.NONE, column=col("movie", "title")),),
        join_path=JoinPath(tables=("movie",)),
        where=None, group_by=None, having=None, order_by=None, limit=None)
    base.update(overrides)
    return Query(**base)


class TestQuoting:
    def test_string_literal_escapes_quotes(self):
        assert quote_literal("O'Brien") == "'O''Brien'"

    def test_int_literal(self):
        assert quote_literal(42) == "42"

    def test_bool_literal(self):
        assert quote_literal(True) == "1"

    def test_plain_ident_unquoted(self):
        assert quote_ident("movie") == "movie"

    def test_mixed_case_ident_quoted(self):
        assert quote_ident("Movie Title") == '"Movie Title"'


class TestToSql:
    def test_single_table(self):
        assert to_sql(simple_query()) == \
            "SELECT t1.title FROM movie AS t1"

    def test_incomplete_raises(self):
        with pytest.raises(RenderError):
            to_sql(Query.empty())

    def test_where_and(self):
        query = simple_query(where=Where(
            logic=LogicOp.AND,
            predicates=(
                Predicate(agg=AggOp.NONE, column=col("movie", "year"),
                          op=CompOp.LT, value=1995),
                Predicate(agg=AggOp.NONE, column=col("movie", "year"),
                          op=CompOp.GT, value=2000))))
        sql = to_sql(query)
        assert "WHERE t1.year < 1995 AND t1.year > 2000" in sql

    def test_where_or(self):
        query = simple_query(where=Where(
            logic=LogicOp.OR,
            predicates=(
                Predicate(agg=AggOp.NONE, column=col("movie", "year"),
                          op=CompOp.LT, value=1995),
                Predicate(agg=AggOp.NONE, column=col("movie", "year"),
                          op=CompOp.GT, value=2000))))
        assert " OR " in to_sql(query)

    def test_between(self):
        query = simple_query(where=Where(
            logic=LogicOp.AND,
            predicates=(Predicate(agg=AggOp.NONE,
                                  column=col("movie", "year"),
                                  op=CompOp.BETWEEN,
                                  value=(1990, 1999)),)))
        assert "BETWEEN 1990 AND 1999" in to_sql(query)

    def test_group_having_order_limit(self):
        query = Query(
            select=(SelectItem(agg=AggOp.NONE,
                               column=col("movie", "title")),
                    SelectItem(agg=AggOp.COUNT, column=STAR)),
            join_path=JoinPath(tables=("movie",)),
            where=None,
            group_by=(col("movie", "title"),),
            having=(Predicate(agg=AggOp.COUNT, column=STAR, op=CompOp.GT,
                              value=5),),
            order_by=(OrderItem(agg=AggOp.COUNT, column=STAR,
                                direction=Direction.DESC),),
            limit=3)
        sql = to_sql(query)
        assert "GROUP BY t1.title" in sql
        assert "HAVING COUNT(*) > 5" in sql
        assert "ORDER BY COUNT(*) DESC" in sql
        assert sql.endswith("LIMIT 3")

    def test_join_rendering(self):
        path = JoinPath(
            tables=("actor", "starring", "movie"),
            edges=(JoinEdge("starring", "aid", "actor", "aid"),
                   JoinEdge("starring", "mid", "movie", "mid")))
        query = Query(
            select=(SelectItem(agg=AggOp.NONE,
                               column=col("actor", "name")),),
            join_path=path, where=None, group_by=None, having=None,
            order_by=None, limit=None)
        sql = to_sql(query)
        assert "FROM actor AS t1" in sql
        assert "JOIN starring AS t2 ON" in sql
        assert "JOIN movie AS t3 ON" in sql

    def test_disconnected_join_raises(self):
        path = JoinPath(tables=("actor", "movie"), edges=())
        query = Query(
            select=(SelectItem(agg=AggOp.NONE,
                               column=col("actor", "name")),),
            join_path=path, where=None, group_by=None, having=None,
            order_by=None, limit=None)
        with pytest.raises(RenderError):
            to_sql(query)

    def test_column_outside_join_path_raises(self):
        query = simple_query(
            select=(SelectItem(agg=AggOp.NONE,
                               column=col("actor", "name")),))
        with pytest.raises(RenderError):
            to_sql(query)

    def test_distinct(self):
        assert to_sql(simple_query(distinct=True)).startswith(
            "SELECT DISTINCT")


class TestDebugSql:
    def test_renders_holes(self):
        text = to_debug_sql(Query.empty())
        assert "SELECT ?" in text
        assert "FROM ?" in text

    def test_partial_where(self):
        query = simple_query(where=Where(logic=HOLE, predicates=(HOLE,)))
        assert "WHERE ?" in to_debug_sql(query)
