"""Tests for the two-valued logical type system."""

import pytest

from repro.sqlir.types import ColumnType, coerce_value, value_type


class TestColumnType:
    def test_from_sqlite_integer(self):
        assert ColumnType.from_sqlite("INTEGER") is ColumnType.NUMBER

    def test_from_sqlite_varchar(self):
        assert ColumnType.from_sqlite("VARCHAR(40)") is ColumnType.TEXT

    @pytest.mark.parametrize("declared", ["REAL", "FLOAT", "DOUBLE",
                                          "NUMERIC", "DECIMAL(8,2)",
                                          "BOOLEAN", "int"])
    def test_from_sqlite_numeric_affinities(self, declared):
        assert ColumnType.from_sqlite(declared) is ColumnType.NUMBER

    @pytest.mark.parametrize("declared", ["TEXT", "CLOB", "CHAR(10)", "",
                                          None])
    def test_from_sqlite_text_affinities(self, declared):
        assert ColumnType.from_sqlite(declared) is ColumnType.TEXT

    def test_to_sqlite_roundtrip(self):
        assert ColumnType.from_sqlite(
            ColumnType.NUMBER.to_sqlite()) is ColumnType.NUMBER
        assert ColumnType.from_sqlite(
            ColumnType.TEXT.to_sqlite()) is ColumnType.TEXT

    def test_str(self):
        assert str(ColumnType.TEXT) == "text"
        assert str(ColumnType.NUMBER) == "number"


class TestValueType:
    def test_int_is_number(self):
        assert value_type(3) is ColumnType.NUMBER

    def test_float_is_number(self):
        assert value_type(2.5) is ColumnType.NUMBER

    def test_bool_is_number(self):
        assert value_type(True) is ColumnType.NUMBER

    def test_str_is_text(self):
        assert value_type("SIGMOD") is ColumnType.TEXT


class TestCoerceValue:
    def test_numeric_string_to_int(self):
        assert coerce_value("1995", ColumnType.NUMBER) == 1995

    def test_numeric_string_to_float(self):
        assert coerce_value("19.5", ColumnType.NUMBER) == 19.5

    def test_non_numeric_string_unchanged(self):
        assert coerce_value("hello", ColumnType.NUMBER) == "hello"

    def test_number_to_text(self):
        assert coerce_value(1995, ColumnType.TEXT) == "1995"

    def test_text_stays_text(self):
        assert coerce_value("abc", ColumnType.TEXT) == "abc"

    def test_whitespace_stripped(self):
        assert coerce_value(" 42 ", ColumnType.NUMBER) == 42
