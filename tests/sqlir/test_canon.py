"""Tests (including property-based) for canonical query equivalence."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlir.canon import normalize_value, queries_equal, signature
from repro.sqlir.parser import parse_sql


class TestNormalizeValue:
    def test_numeric_string_equals_number(self):
        assert normalize_value("1995") == normalize_value(1995)

    def test_case_insensitive_text(self):
        assert normalize_value("Tom Hanks") == normalize_value("tom hanks")

    def test_whitespace_stripped(self):
        assert normalize_value(" abc ") == normalize_value("abc")

    def test_between_pair_ordered(self):
        assert normalize_value((5, 1)) == normalize_value((1, 5))

    def test_bool_is_number(self):
        assert normalize_value(True) == normalize_value(1)


class TestQueriesEqual:
    def test_select_order_insensitive(self, movie_schema):
        a = parse_sql("SELECT title, year FROM movie", movie_schema)
        b = parse_sql("SELECT year, title FROM movie", movie_schema)
        assert queries_equal(a, b)

    def test_predicate_order_insensitive(self, movie_schema):
        a = parse_sql(
            "SELECT title FROM movie WHERE year < 1995 AND revenue > 10",
            movie_schema)
        b = parse_sql(
            "SELECT title FROM movie WHERE revenue > 10 AND year < 1995",
            movie_schema)
        assert queries_equal(a, b)

    def test_logic_matters(self, movie_schema):
        a = parse_sql(
            "SELECT title FROM movie WHERE year < 1995 AND revenue > 10",
            movie_schema)
        b = parse_sql(
            "SELECT title FROM movie WHERE year < 1995 OR revenue > 10",
            movie_schema)
        assert not queries_equal(a, b)

    def test_order_by_direction_matters(self, movie_schema):
        a = parse_sql("SELECT title FROM movie ORDER BY year ASC",
                      movie_schema)
        b = parse_sql("SELECT title FROM movie ORDER BY year DESC",
                      movie_schema)
        assert not queries_equal(a, b)

    def test_limit_matters(self, movie_schema):
        a = parse_sql("SELECT title FROM movie ORDER BY year LIMIT 3",
                      movie_schema)
        b = parse_sql("SELECT title FROM movie ORDER BY year LIMIT 5",
                      movie_schema)
        assert not queries_equal(a, b)

    def test_join_alias_naming_irrelevant(self, movie_schema):
        a = parse_sql(
            "SELECT t1.name FROM actor AS t1 JOIN starring AS t2 "
            "ON t1.aid = t2.aid", movie_schema)
        b = parse_sql(
            "SELECT x.name FROM actor x JOIN starring y ON y.aid = x.aid",
            movie_schema)
        assert queries_equal(a, b)

    def test_count_star_vs_count_column_differ(self, movie_schema):
        a = parse_sql("SELECT name, COUNT(*) FROM actor GROUP BY name",
                      movie_schema)
        b = parse_sql("SELECT name, COUNT(aid) FROM actor GROUP BY name",
                      movie_schema)
        assert not queries_equal(a, b)

    def test_distinct_ignored_under_group_by(self, movie_schema):
        a = parse_sql(
            "SELECT DISTINCT name, COUNT(*) FROM actor GROUP BY name",
            movie_schema)
        b = parse_sql("SELECT name, COUNT(*) FROM actor GROUP BY name",
                      movie_schema)
        assert queries_equal(a, b)

    def test_distinct_matters_without_group_by(self, movie_schema):
        a = parse_sql("SELECT DISTINCT title FROM movie", movie_schema)
        b = parse_sql("SELECT title FROM movie", movie_schema)
        assert not queries_equal(a, b)

    def test_literal_normalisation(self, movie_schema):
        a = parse_sql("SELECT title FROM movie WHERE year = 1995",
                      movie_schema)
        b = parse_sql("SELECT title FROM movie WHERE year = 1995.0",
                      movie_schema)
        assert queries_equal(a, b)


class TestSignatureProperties:
    @given(st.one_of(st.integers(-10**6, 10**6),
                     st.floats(allow_nan=False, allow_infinity=False,
                               width=32),
                     st.text(max_size=30)))
    @settings(max_examples=150)
    def test_normalize_value_idempotent(self, value):
        once = normalize_value(value)
        assert normalize_value(once) == once

    def test_signature_is_hashable(self, movie_schema):
        query = parse_sql("SELECT title FROM movie", movie_schema)
        assert hash(signature(query)) == hash(signature(query))
