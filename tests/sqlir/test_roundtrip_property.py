"""Property-based round-trip: random ASTs survive render -> parse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlir.ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    JoinEdge,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    STAR,
    SelectItem,
    Where,
)
from repro.sqlir.canon import queries_equal
from repro.sqlir.parser import parse_sql
from repro.sqlir.render import to_sql
from tests.conftest import build_movie_schema

SCHEMA = build_movie_schema()

_TEXT_COLS = [ColumnRef("movie", "title"), ColumnRef("actor", "name")]
_NUM_COLS = [ColumnRef("movie", "year"), ColumnRef("movie", "revenue"),
             ColumnRef("actor", "birth_year")]

_SINGLE_MOVIE = JoinPath(tables=("movie",))
_SINGLE_ACTOR = JoinPath(tables=("actor",))
_FULL_JOIN = JoinPath(
    tables=("actor", "starring", "movie"),
    edges=(JoinEdge("starring", "aid", "actor", "aid"),
           JoinEdge("starring", "mid", "movie", "mid")))

text_values = st.sampled_from(["Forrest Gump", "Tom Hanks", "x y z",
                               "O'Brien"])
num_values = st.integers(min_value=0, max_value=3000)


def columns_of(path: JoinPath):
    text = [c for c in _TEXT_COLS if c.table in path.tables]
    numeric = [c for c in _NUM_COLS if c.table in path.tables]
    return text, numeric


@st.composite
def queries(draw):
    path = draw(st.sampled_from([_SINGLE_MOVIE, _SINGLE_ACTOR,
                                 _FULL_JOIN]))
    text_cols, num_cols = columns_of(path)
    all_cols = text_cols + num_cols

    select_cols = draw(st.lists(st.sampled_from(all_cols), min_size=1,
                                max_size=2, unique=True))
    select = tuple(SelectItem(agg=AggOp.NONE, column=c)
                   for c in select_cols)

    where = None
    if draw(st.booleans()):
        preds = []
        for _ in range(draw(st.integers(1, 2))):
            if num_cols and draw(st.booleans()):
                column = draw(st.sampled_from(num_cols))
                op = draw(st.sampled_from([CompOp.EQ, CompOp.NE, CompOp.LT,
                                           CompOp.GT, CompOp.LE,
                                           CompOp.GE]))
                value = draw(num_values)
            else:
                column = draw(st.sampled_from(text_cols))
                op = draw(st.sampled_from([CompOp.EQ, CompOp.NE,
                                           CompOp.LIKE]))
                value = draw(text_values)
            preds.append(Predicate(agg=AggOp.NONE, column=column, op=op,
                                   value=value))
        logic = draw(st.sampled_from([LogicOp.AND, LogicOp.OR]))
        where = Where(logic=logic, predicates=tuple(preds))

    order_by = None
    limit = None
    if num_cols and draw(st.booleans()):
        order_by = (OrderItem(
            agg=AggOp.NONE, column=draw(st.sampled_from(num_cols)),
            direction=draw(st.sampled_from([Direction.ASC,
                                            Direction.DESC]))),)
        if draw(st.booleans()):
            limit = draw(st.integers(1, 10))

    return Query(select=select, join_path=path, where=where,
                 group_by=None, having=None, order_by=order_by,
                 limit=limit)


def generated_corpus(size: int = 250, seed: int = 13):
    """A deterministic corpus of complete queries, wider than the
    hypothesis strategy above: aggregates, GROUP BY, HAVING, BETWEEN
    and LIMIT all appear. Used for the canonical-signature fixpoint."""
    import random

    rng = random.Random(seed)
    corpus = []
    for _ in range(size):
        path = rng.choice([_SINGLE_MOVIE, _SINGLE_ACTOR, _FULL_JOIN])
        text_cols, num_cols = columns_of(path)
        all_cols = text_cols + num_cols

        grouped = rng.random() < 0.4
        if grouped:
            group_col = rng.choice(all_cols)
            agg_col = rng.choice(num_cols) if num_cols else None
            select = [SelectItem(agg=AggOp.NONE, column=group_col)]
            if agg_col is not None:
                select.append(SelectItem(
                    agg=rng.choice([AggOp.COUNT, AggOp.SUM, AggOp.AVG,
                                    AggOp.MAX, AggOp.MIN]),
                    column=agg_col))
            else:
                select.append(SelectItem(agg=AggOp.COUNT, column=STAR))
            group_by = (group_col,)
            having = None
            if rng.random() < 0.5:
                having = (Predicate(
                    agg=AggOp.COUNT, column=STAR,
                    op=rng.choice([CompOp.GT, CompOp.GE, CompOp.EQ]),
                    value=rng.randint(1, 5)),)
        else:
            select = [SelectItem(agg=AggOp.NONE, column=c)
                      for c in rng.sample(all_cols,
                                          rng.randint(1, min(2,
                                                             len(all_cols))))]
            group_by = None
            having = None

        where = None
        if rng.random() < 0.6:
            preds = []
            for _ in range(rng.randint(1, 2)):
                if num_cols and rng.random() < 0.5:
                    column = rng.choice(num_cols)
                    if rng.random() < 0.25:
                        low = rng.randint(0, 1500)
                        preds.append(Predicate(
                            agg=AggOp.NONE, column=column,
                            op=CompOp.BETWEEN,
                            value=(low, low + rng.randint(1, 500))))
                        continue
                    op = rng.choice([CompOp.EQ, CompOp.NE, CompOp.LT,
                                     CompOp.GT, CompOp.LE, CompOp.GE])
                    value = rng.randint(0, 3000)
                else:
                    column = rng.choice(text_cols)
                    op = rng.choice([CompOp.EQ, CompOp.NE, CompOp.LIKE])
                    value = rng.choice(["Forrest Gump", "Tom Hanks",
                                        "x y z", "O'Brien"])
                preds.append(Predicate(agg=AggOp.NONE, column=column,
                                       op=op, value=value))
            where = Where(logic=rng.choice([LogicOp.AND, LogicOp.OR]),
                          predicates=tuple(preds))

        order_by = None
        limit = None
        if rng.random() < 0.4:
            if grouped and rng.random() < 0.5:
                order_by = (OrderItem(agg=AggOp.COUNT, column=STAR,
                                      direction=rng.choice(
                                          [Direction.ASC, Direction.DESC])),)
            elif num_cols:
                order_by = (OrderItem(agg=AggOp.NONE,
                                      column=rng.choice(num_cols),
                                      direction=rng.choice(
                                          [Direction.ASC, Direction.DESC])),)
            if order_by is not None and rng.random() < 0.5:
                limit = rng.randint(1, 10)

        corpus.append(Query(select=tuple(select), join_path=path,
                            where=where, group_by=group_by, having=having,
                            order_by=order_by, limit=limit))
    return corpus


class TestSignatureFixpoint:
    """``parse(to_sql(q))`` is a fixpoint of the canonical signature."""

    def test_signature_fixpoint_over_corpus(self):
        from repro.sqlir.canon import signature

        corpus = generated_corpus()
        assert len(corpus) == 250
        for query in corpus:
            sql = to_sql(query)
            parsed = parse_sql(sql, SCHEMA)
            assert signature(parsed) == signature(query), sql

    def test_render_is_idempotent_through_parse(self):
        """Rendering the parsed query reproduces the SQL text exactly,
        so repeated round trips cannot drift."""
        for query in generated_corpus(size=120, seed=29):
            sql = to_sql(query)
            assert to_sql(parse_sql(sql, SCHEMA)) == sql

    def test_corpus_exercises_every_clause(self):
        corpus = generated_corpus()
        assert any(q.group_by for q in corpus)
        assert any(q.having for q in corpus)
        assert any(q.order_by for q in corpus)
        assert any(q.limit is not None for q in corpus)
        assert any(
            isinstance(q.where, Where) and any(
                isinstance(p, Predicate) and p.op is CompOp.BETWEEN
                for p in q.where.predicates)
            for q in corpus)
        assert any(
            any(item.agg.is_aggregate for item in q.select)
            for q in corpus)


class TestRoundTripProperty:
    @given(queries())
    @settings(max_examples=120, deadline=None)
    def test_render_parse_roundtrip(self, query):
        sql = to_sql(query)
        parsed = parse_sql(sql, SCHEMA)
        assert queries_equal(query, parsed), sql

    @given(queries())
    @settings(max_examples=60, deadline=None)
    def test_rendered_sql_executes(self, query):
        """Everything we can render is valid SQLite."""
        from tests.conftest import build_movie_db

        db = getattr(self, "_db", None)
        if db is None:
            db = self._db = build_movie_db()
        db.execute(to_sql(query), max_rows=3)
