"""Property-based round-trip: random ASTs survive render -> parse."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlir.ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    JoinEdge,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    STAR,
    SelectItem,
    Where,
)
from repro.sqlir.canon import queries_equal
from repro.sqlir.parser import parse_sql
from repro.sqlir.render import to_sql
from tests.conftest import build_movie_schema

SCHEMA = build_movie_schema()

_TEXT_COLS = [ColumnRef("movie", "title"), ColumnRef("actor", "name")]
_NUM_COLS = [ColumnRef("movie", "year"), ColumnRef("movie", "revenue"),
             ColumnRef("actor", "birth_year")]

_SINGLE_MOVIE = JoinPath(tables=("movie",))
_SINGLE_ACTOR = JoinPath(tables=("actor",))
_FULL_JOIN = JoinPath(
    tables=("actor", "starring", "movie"),
    edges=(JoinEdge("starring", "aid", "actor", "aid"),
           JoinEdge("starring", "mid", "movie", "mid")))

text_values = st.sampled_from(["Forrest Gump", "Tom Hanks", "x y z",
                               "O'Brien"])
num_values = st.integers(min_value=0, max_value=3000)


def columns_of(path: JoinPath):
    text = [c for c in _TEXT_COLS if c.table in path.tables]
    numeric = [c for c in _NUM_COLS if c.table in path.tables]
    return text, numeric


@st.composite
def queries(draw):
    path = draw(st.sampled_from([_SINGLE_MOVIE, _SINGLE_ACTOR,
                                 _FULL_JOIN]))
    text_cols, num_cols = columns_of(path)
    all_cols = text_cols + num_cols

    select_cols = draw(st.lists(st.sampled_from(all_cols), min_size=1,
                                max_size=2, unique=True))
    select = tuple(SelectItem(agg=AggOp.NONE, column=c)
                   for c in select_cols)

    where = None
    if draw(st.booleans()):
        preds = []
        for _ in range(draw(st.integers(1, 2))):
            if num_cols and draw(st.booleans()):
                column = draw(st.sampled_from(num_cols))
                op = draw(st.sampled_from([CompOp.EQ, CompOp.NE, CompOp.LT,
                                           CompOp.GT, CompOp.LE,
                                           CompOp.GE]))
                value = draw(num_values)
            else:
                column = draw(st.sampled_from(text_cols))
                op = draw(st.sampled_from([CompOp.EQ, CompOp.NE,
                                           CompOp.LIKE]))
                value = draw(text_values)
            preds.append(Predicate(agg=AggOp.NONE, column=column, op=op,
                                   value=value))
        logic = draw(st.sampled_from([LogicOp.AND, LogicOp.OR]))
        where = Where(logic=logic, predicates=tuple(preds))

    order_by = None
    limit = None
    if num_cols and draw(st.booleans()):
        order_by = (OrderItem(
            agg=AggOp.NONE, column=draw(st.sampled_from(num_cols)),
            direction=draw(st.sampled_from([Direction.ASC,
                                            Direction.DESC]))),)
        if draw(st.booleans()):
            limit = draw(st.integers(1, 10))

    return Query(select=select, join_path=path, where=where,
                 group_by=None, having=None, order_by=order_by,
                 limit=limit)


class TestRoundTripProperty:
    @given(queries())
    @settings(max_examples=120, deadline=None)
    def test_render_parse_roundtrip(self, query):
        sql = to_sql(query)
        parsed = parse_sql(sql, SCHEMA)
        assert queries_equal(query, parsed), sql

    @given(queries())
    @settings(max_examples=60, deadline=None)
    def test_rendered_sql_executes(self, query):
        """Everything we can render is valid SQLite."""
        from tests.conftest import build_movie_db

        db = getattr(self, "_db", None)
        if db is None:
            db = self._db = build_movie_db()
        db.execute(to_sql(query), max_rows=3)
