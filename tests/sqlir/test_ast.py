"""Tests for the partial-query AST."""

import copy

from repro.sqlir.ast import (
    HOLE,
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    Hole,
    JoinEdge,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    STAR,
    SelectItem,
    Where,
)


def col(table, column):
    return ColumnRef(table=table, column=column)


class TestHole:
    def test_singleton(self):
        assert Hole() is HOLE

    def test_repr(self):
        assert repr(HOLE) == "?"

    def test_deepcopy_preserves_identity(self):
        assert copy.deepcopy(HOLE) is HOLE


class TestAggOp:
    def test_none_not_aggregate(self):
        assert not AggOp.NONE.is_aggregate

    def test_count_output_type(self):
        from repro.sqlir.types import ColumnType

        assert AggOp.COUNT.output_type(ColumnType.TEXT) \
            is ColumnType.NUMBER

    def test_max_preserves_type(self):
        from repro.sqlir.types import ColumnType

        assert AggOp.MAX.output_type(ColumnType.TEXT) is ColumnType.TEXT
        assert AggOp.MAX.output_type(ColumnType.NUMBER) \
            is ColumnType.NUMBER

    def test_avg_is_numeric(self):
        from repro.sqlir.types import ColumnType

        assert AggOp.AVG.output_type(ColumnType.NUMBER) \
            is ColumnType.NUMBER


class TestSelectItem:
    def test_complete(self):
        item = SelectItem(agg=AggOp.NONE, column=col("movie", "title"))
        assert item.is_complete
        assert not item.is_aggregate

    def test_column_hole_incomplete(self):
        assert not SelectItem(agg=AggOp.NONE, column=HOLE).is_complete

    def test_agg_hole_incomplete(self):
        assert not SelectItem(agg=HOLE,
                              column=col("movie", "title")).is_complete

    def test_star_count(self):
        item = SelectItem(agg=AggOp.COUNT, column=STAR)
        assert item.is_complete
        assert item.is_aggregate
        assert STAR.is_star


class TestPredicate:
    def test_complete(self):
        pred = Predicate(agg=AggOp.NONE, column=col("movie", "year"),
                         op=CompOp.LT, value=1995)
        assert pred.is_complete

    def test_value_hole_incomplete(self):
        pred = Predicate(agg=AggOp.NONE, column=col("movie", "year"),
                         op=CompOp.LT, value=HOLE)
        assert not pred.is_complete

    def test_between_repr(self):
        pred = Predicate(agg=AggOp.NONE, column=col("movie", "year"),
                         op=CompOp.BETWEEN, value=(1990, 1999))
        assert "BETWEEN" in repr(pred)


class TestWhere:
    def test_empty_predicates_incomplete(self):
        assert not Where(logic=LogicOp.AND, predicates=()).is_complete

    def test_single_pred_ignores_logic_hole(self):
        pred = Predicate(agg=AggOp.NONE, column=col("movie", "year"),
                         op=CompOp.LT, value=1995)
        assert Where(logic=HOLE, predicates=(pred,)).is_complete

    def test_multi_pred_requires_logic(self):
        pred = Predicate(agg=AggOp.NONE, column=col("movie", "year"),
                         op=CompOp.LT, value=1995)
        assert not Where(logic=HOLE, predicates=(pred, pred)).is_complete


class TestJoinPath:
    def test_canonical_direction_insensitive(self):
        edge_a = JoinEdge("starring", "mid", "movie", "mid")
        edge_b = JoinEdge("movie", "mid", "starring", "mid")
        assert edge_a.canonical() == edge_b.canonical()

    def test_canonical_table_order_insensitive(self):
        edge = JoinEdge("starring", "mid", "movie", "mid")
        path_a = JoinPath(tables=("movie", "starring"), edges=(edge,))
        path_b = JoinPath(tables=("starring", "movie"), edges=(edge,))
        assert path_a.canonical() == path_b.canonical()

    def test_len(self):
        assert len(JoinPath(tables=("a", "b", "c"))) == 3


class TestQuery:
    def test_empty_has_all_holes(self):
        query = Query.empty()
        holes = set(query.iter_holes())
        assert {"select", "join_path", "where", "group_by", "having",
                "order_by", "limit"} <= holes
        assert not query.is_complete

    def test_complete_query(self):
        query = Query(
            select=(SelectItem(agg=AggOp.NONE,
                               column=col("movie", "title")),),
            join_path=JoinPath(tables=("movie",)),
            where=None, group_by=None, having=None, order_by=None,
            limit=None)
        assert query.is_complete
        assert list(query.iter_holes()) == []

    def test_empty_clause_tuples_are_holes(self):
        query = Query(
            select=(SelectItem(agg=AggOp.NONE,
                               column=col("movie", "title")),),
            join_path=JoinPath(tables=("movie",)),
            where=Where(logic=HOLE, predicates=()),
            group_by=(), having=(), order_by=(), limit=None)
        holes = set(query.iter_holes())
        assert "where.predicates" in holes
        assert "group_by.columns" in holes
        assert "having.predicates" in holes
        assert "order_by.items" in holes

    def test_column_refs_and_tables(self):
        query = Query(
            select=(SelectItem(agg=AggOp.NONE,
                               column=col("movie", "title")),
                    SelectItem(agg=AggOp.COUNT, column=STAR)),
            join_path=HOLE,
            where=Where(logic=LogicOp.AND, predicates=(
                Predicate(agg=AggOp.NONE, column=col("actor", "name"),
                          op=CompOp.EQ, value="Tom Hanks"),)),
            group_by=(col("movie", "title"),),
            having=None,
            order_by=(OrderItem(agg=AggOp.COUNT, column=STAR,
                                direction=Direction.DESC),),
            limit=None)
        refs = query.column_refs()
        assert col("movie", "title") in refs
        assert col("actor", "name") in refs
        assert STAR not in refs  # star is not a real reference
        assert query.referenced_tables() == ("movie", "actor")

    def test_has_aggregate(self):
        plain = Query(
            select=(SelectItem(agg=AggOp.NONE,
                               column=col("movie", "title")),),
            join_path=HOLE, where=None, group_by=None, having=None,
            order_by=None, limit=None)
        assert not plain.has_aggregate
        agg = plain.replace(select=(SelectItem(agg=AggOp.COUNT,
                                               column=STAR),))
        assert agg.has_aggregate

    def test_replace_returns_new_object(self):
        query = Query.empty()
        updated = query.replace(limit=None)
        assert updated is not query
        assert isinstance(query.limit, Hole)
        assert updated.limit is None

    def test_query_hashable(self):
        assert isinstance(hash(Query.empty()), int)
        assert Query.empty() == Query.empty()
