"""Property tests for the literal-stripping probe canonicaliser.

The planner's contract rests on three properties of
:func:`repro.sqlir.canon.canonicalize_probe`:

* **Literal invariance** — substituting any literal values into the
  same probe structure yields the same parameterised signature (that is
  what lets sibling probes share one prepared plan).
* **No structural collisions** — probes over different tables, columns,
  operators, or clause shapes never canonicalise to the same signature
  (a collision would silently merge distinct probe-cache entries).
* **Execution equivalence** — running the parameterised statement with
  its extracted parameters returns exactly what the raw statement
  returns (the planner substitutes one for the other on the hot path).

Probes are generated through the same formatting the verifier's probe
builders use (``quote_ident`` / ``quote_literal``), so the property
space is the grammar the planner actually sees.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sqlir.canon import canonicalize_probe, probe_plan_key
from repro.sqlir.render import quote_ident, quote_literal

from tests.conftest import build_movie_db

#: Identifier-ish names, including ones that need quoting.
_NAMES = st.sampled_from(
    ["movie", "actor", "year", "title", "birth_year", "revenue",
     "Weird Table", "mixedCase", "name"])

_OPS = st.sampled_from(["=", "!=", "<", ">", "<=", ">="])

#: Literal values spanning the renderer's output space: ints, floats
#: (including negatives and exponent reprs), and strings with quote
#: escapes and whitespace.
_VALUES = st.one_of(
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(alphabet="abcXYZ0 1.9'%_-", max_size=12),
)


def render_probe(table: str, conditions) -> str:
    """A probe in exactly the verifier's rendering."""
    rendered = " AND ".join(
        f"{quote_ident(column)} {op} {quote_literal(value)}"
        + (" COLLATE NOCASE" if isinstance(value, str) and op == "=" else "")
        for column, op, value in conditions)
    return f"SELECT 1 FROM {quote_ident(table)} WHERE {rendered} LIMIT 1"


_CONDITIONS = st.lists(st.tuples(_NAMES, _OPS, _VALUES),
                       min_size=1, max_size=4)


class TestLiteralInvariance:
    @settings(max_examples=100, deadline=None)
    @given(table=_NAMES, conditions=_CONDITIONS, data=st.data())
    def test_signature_invariant_under_literal_substitution(self, table,
                                                            conditions,
                                                            data):
        """Swapping every literal for a fresh one of the same kind
        (string vs numeric — the renderer quotes them differently, but
        both strip to ``?``) leaves the signature unchanged."""
        substituted = []
        for column, op, value in conditions:
            if isinstance(value, str):
                fresh = data.draw(st.text(alphabet="zq'7 ", max_size=8))
            else:
                fresh = data.draw(st.one_of(
                    st.integers(min_value=-999, max_value=999),
                    st.floats(allow_nan=False, allow_infinity=False,
                              width=32)))
            substituted.append((column, op, fresh))
        # COLLATE NOCASE placement depends on the value's type, so keep
        # kinds aligned (string -> string, number -> number) — exactly
        # the renderer's behaviour.
        original_sql = render_probe(table, conditions)
        substituted_sql = render_probe(table, substituted)
        assert canonicalize_probe(original_sql)[0] == \
            canonicalize_probe(substituted_sql)[0]

    @settings(max_examples=50, deadline=None)
    @given(table=_NAMES, conditions=_CONDITIONS)
    def test_signature_invariant_under_whitespace(self, table, conditions):
        """Extra whitespace between tokens (not inside quoted
        identifiers or string literals, where it is data) is erased by
        canonicalisation."""
        sql = render_probe(table, conditions)
        spaced = sql.replace(" WHERE ", "\n  WHERE\t") \
                    .replace(" AND ", "\n  AND\t") \
                    .replace(" LIMIT ", "  LIMIT  ")
        assert canonicalize_probe(sql) == canonicalize_probe(spaced)

    @settings(max_examples=50, deadline=None)
    @given(table=_NAMES, column=_NAMES, op=_OPS,
           value=st.integers(min_value=0, max_value=10**6))
    def test_int_and_float_renderings_share_a_plan_not_a_key(self, table,
                                                             column, op,
                                                             value):
        """``= 2005`` and ``= 2005.0`` share a signature (one prepared
        plan) but keep distinct cache keys: under TEXT affinity the two
        probes genuinely differ, so merging them would cache a wrong
        answer — the planner spends a redundant probe instead."""
        int_sql = render_probe(table, [(column, op, value)])
        float_sql = render_probe(table, [(column, op, float(value))])
        int_sig, int_params = canonicalize_probe(int_sql)
        float_sig, float_params = canonicalize_probe(float_sql)
        assert int_sig == float_sig
        assert probe_plan_key(int_sig, int_params) != \
            probe_plan_key(float_sig, float_params)

    @settings(max_examples=50, deadline=None)
    @given(table=_NAMES, column=_NAMES, op=_OPS, left=_VALUES,
           right=_VALUES)
    def test_distinct_literals_share_signature_but_not_key(self, table,
                                                           column, op,
                                                           left, right):
        """Cache keys are exactly as fine-grained as the bound values:
        equal keys iff equal signature and type-identical parameters."""
        left_sig, left_params = canonicalize_probe(
            render_probe(table, [(column, op, left)]))
        right_sig, right_params = canonicalize_probe(
            render_probe(table, [(column, op, right)]))
        if isinstance(left, str) == isinstance(right, str):
            assert left_sig == right_sig
        keys_equal = probe_plan_key(left_sig, left_params) == \
            probe_plan_key(right_sig, right_params)
        assert keys_equal == (left_sig == right_sig
                              and list(map(repr, left_params))
                              == list(map(repr, right_params)))


class TestNoStructuralCollisions:
    @settings(max_examples=100, deadline=None)
    @given(first=st.tuples(_NAMES, st.tuples(_NAMES, _OPS, _VALUES)),
           second=st.tuples(_NAMES, st.tuples(_NAMES, _OPS, _VALUES)))
    def test_different_structures_never_collide(self, first, second):
        """Two single-condition probes canonicalise to the same
        signature iff their structure — table, column, operator, and
        literal *kind* (string probes carry COLLATE NOCASE) — agrees."""
        (t1, (c1, o1, v1)), (t2, (c2, o2, v2)) = first, second
        sig1 = canonicalize_probe(render_probe(t1, [(c1, o1, v1)]))[0]
        sig2 = canonicalize_probe(render_probe(t2, [(c2, o2, v2)]))[0]
        structurally_equal = (
            t1 == t2 and c1 == c2 and o1 == o2
            and isinstance(v1, str) == isinstance(v2, str))
        assert (sig1 == sig2) == structurally_equal

    @settings(max_examples=50, deadline=None)
    @given(table=_NAMES, conditions=_CONDITIONS)
    def test_condition_count_is_structural(self, table, conditions):
        sql = canonicalize_probe(render_probe(table, conditions))[0]
        extended = canonicalize_probe(
            render_probe(table, conditions + [("year", "=", 1)]))[0]
        assert sql != extended

    def test_big_integers_neither_collide_nor_overflow(self):
        """Integers beyond float's exact range must keep distinct cache
        keys (folding through float would merge 2^53+1 with 2^53 — a
        silently wrong cached probe answer) and must never raise on the
        probe hot path."""
        base = 2 ** 53
        a = render_probe("movie", [("mid", "=", base)])
        b = render_probe("movie", [("mid", "=", base + 1)])
        key_a = probe_plan_key(*canonicalize_probe(a))
        key_b = probe_plan_key(*canonicalize_probe(b))
        assert key_a != key_b
        # An integer literal too large even for SQLite's 64-bit INTEGER
        # binds as REAL (what SQLite itself does to oversized literals)
        # instead of overflowing.
        huge = render_probe("movie", [("mid", "=", 10 ** 100)])
        sig, params = canonicalize_probe(huge)
        assert params == (1e100,)
        probe_plan_key(sig, params)  # must not raise

    def test_identifier_literals_are_not_confused(self):
        """A quoted identifier that looks like a string literal stays
        structure; a string literal with identifier-ish content stays
        data."""
        ident_sql = 'SELECT 1 FROM "movie" WHERE "year" = 5 LIMIT 1'
        literal_sql = "SELECT 1 FROM movie WHERE year = 'year' " \
                      "COLLATE NOCASE LIMIT 1"
        ident_sig, ident_params = canonicalize_probe(ident_sql)
        literal_sig, literal_params = canonicalize_probe(literal_sql)
        assert '"year"' in ident_sig
        assert ident_params == (5,)
        assert literal_params == ("year",)
        assert "'year'" not in literal_sig


class TestExecutionEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(conditions=st.lists(
        st.tuples(st.sampled_from(["year", "revenue", "title"]),
                  _OPS, _VALUES),
        min_size=1, max_size=3))
    def test_parameterised_probe_returns_raw_probe_rows(self, conditions):
        """The planner's substitution on the hot path: for any probe
        the grammar can produce, executing ``param_sql`` with its
        extracted params equals executing the raw statement."""
        db = build_movie_db()
        sql = render_probe("movie", conditions)
        param_sql, params = canonicalize_probe(sql)
        raw = db._conn.execute(sql).fetchall()
        parameterised = db._conn.execute(param_sql, params).fetchall()
        assert raw == parameterised
