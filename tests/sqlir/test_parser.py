"""Tests for the SPJA SQL parser."""

import pytest

from repro.errors import ParseError
from repro.sqlir.ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    LogicOp,
)
from repro.sqlir.parser import parse_sql
from repro.sqlir.render import to_sql


class TestBasicParsing:
    def test_single_table(self, movie_schema):
        query = parse_sql("SELECT title FROM movie", movie_schema)
        assert query.select[0].column == ColumnRef("movie", "title")
        assert query.join_path.tables == ("movie",)

    def test_alias_resolution(self, movie_schema):
        query = parse_sql(
            "SELECT t1.title FROM movie AS t1", movie_schema)
        assert query.select[0].column == ColumnRef("movie", "title")

    def test_implicit_alias(self, movie_schema):
        query = parse_sql("SELECT m.title FROM movie m", movie_schema)
        assert query.select[0].column == ColumnRef("movie", "title")

    def test_join_edges(self, movie_schema):
        query = parse_sql(
            "SELECT t1.name FROM actor AS t1 JOIN starring AS t2 "
            "ON t1.aid = t2.aid", movie_schema)
        assert query.join_path.tables == ("actor", "starring")
        edge = query.join_path.edges[0]
        assert {edge.src_table, edge.dst_table} == {"actor", "starring"}

    def test_unknown_table_raises(self, movie_schema):
        with pytest.raises(ParseError):
            parse_sql("SELECT x FROM nonexistent", movie_schema)

    def test_unknown_column_raises(self, movie_schema):
        with pytest.raises(ParseError):
            parse_sql("SELECT nonsense FROM movie", movie_schema)

    def test_ambiguous_column_raises(self, movie_schema):
        with pytest.raises(ParseError):
            parse_sql(
                "SELECT aid FROM actor JOIN starring "
                "ON actor.aid = starring.aid", movie_schema)

    def test_empty_string_raises(self, movie_schema):
        with pytest.raises(ParseError):
            parse_sql("", movie_schema)


class TestClauses:
    def test_where_operators(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie WHERE year >= 1990 AND year <= 2000",
            movie_schema)
        ops = [p.op for p in query.where.predicates]
        assert ops == [CompOp.GE, CompOp.LE]
        assert query.where.logic is LogicOp.AND

    def test_or_logic(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie WHERE year < 1995 OR year > 2000",
            movie_schema)
        assert query.where.logic is LogicOp.OR

    def test_mixed_logic_rejected(self, movie_schema):
        with pytest.raises(ParseError):
            parse_sql(
                "SELECT title FROM movie WHERE year < 1995 OR year > 2000 "
                "AND revenue > 10", movie_schema)

    def test_between(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie WHERE year BETWEEN 1990 AND 1999",
            movie_schema)
        pred = query.where.predicates[0]
        assert pred.op is CompOp.BETWEEN
        assert pred.value == (1990, 1999)

    def test_like(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie WHERE title LIKE '%Gump%'",
            movie_schema)
        assert query.where.predicates[0].op is CompOp.LIKE

    def test_string_escape(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie WHERE title = 'O''Brien'",
            movie_schema)
        assert query.where.predicates[0].value == "O'Brien"

    def test_group_by_having(self, movie_schema):
        query = parse_sql(
            "SELECT name, COUNT(*) FROM actor GROUP BY name "
            "HAVING COUNT(*) > 5", movie_schema)
        assert query.group_by == (ColumnRef("actor", "name"),)
        having = query.having[0]
        assert having.agg is AggOp.COUNT
        assert having.op is CompOp.GT

    def test_order_by_limit(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie ORDER BY year DESC LIMIT 3",
            movie_schema)
        assert query.order_by[0].direction is Direction.DESC
        assert query.limit == 3

    def test_order_by_default_asc(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie ORDER BY year", movie_schema)
        assert query.order_by[0].direction is Direction.ASC

    def test_distinct(self, movie_schema):
        assert parse_sql("SELECT DISTINCT title FROM movie",
                         movie_schema).distinct

    def test_count_star(self, movie_schema):
        query = parse_sql("SELECT COUNT(*) FROM movie", movie_schema)
        item = query.select[0]
        assert item.agg is AggOp.COUNT
        assert item.column.is_star

    def test_aggregate_of_column(self, movie_schema):
        query = parse_sql("SELECT MAX(year) FROM movie", movie_schema)
        assert query.select[0].agg is AggOp.MAX


class TestRoundTrip:
    @pytest.mark.parametrize("sql", [
        "SELECT t1.title FROM movie AS t1",
        "SELECT t1.title, t1.year FROM movie AS t1 WHERE t1.year < 1995",
        "SELECT t1.name, COUNT(*) FROM actor AS t1 JOIN starring AS t2 "
        "ON t1.aid = t2.aid GROUP BY t1.name HAVING COUNT(*) > 2 "
        "ORDER BY COUNT(*) DESC LIMIT 5",
        "SELECT t1.title FROM movie AS t1 WHERE t1.year BETWEEN 1990 AND "
        "1995 ORDER BY t1.year ASC",
    ])
    def test_parse_render_parse_fixpoint(self, sql, movie_schema):
        """Parsing rendered SQL reproduces the same AST."""
        from repro.sqlir.canon import queries_equal

        first = parse_sql(sql, movie_schema)
        rendered = to_sql(first)
        second = parse_sql(rendered, movie_schema)
        assert queries_equal(first, second)

    def test_parsed_queries_execute(self, movie_db):
        query = parse_sql(
            "SELECT t1.name, COUNT(*) FROM actor AS t1 JOIN starring AS "
            "t2 ON t1.aid = t2.aid GROUP BY t1.name", movie_db.schema)
        rows = movie_db.execute_query(query)
        assert rows
