"""Tests for the NLI baseline and the GPQE ablation factories."""

from repro.baselines import (
    ABLATION_VARIANTS,
    NLIBaseline,
    make_duoquest,
    make_noguide,
    make_nopq,
)
from repro.core.enumerator import EnumeratorConfig
from repro.guidance import CalibratedOracleModel
from repro.nlq.literals import NLQuery
from repro.sqlir.canon import queries_equal
from repro.sqlir.parser import parse_sql


class TestNLIBaseline:
    def test_synthesizes_without_tsq(self, movie_db):
        gold = parse_sql("SELECT title FROM movie WHERE year < 1994",
                         movie_db.schema)
        nli = NLIBaseline(movie_db, CalibratedOracleModel(seed=1),
                          EnumeratorConfig(time_budget=8.0,
                                           max_candidates=40))
        result = nli.synthesize(
            NLQuery.from_text("titles before 1994", literals=[1994]),
            gold=gold, task_id="nli-test")
        assert result.candidates
        assert any(queries_equal(c.query, gold)
                   for c in result.candidates)

    def test_nli_can_miss_where_tsq_recovers(self, movie_db):
        """The paper's thesis in miniature: on a model draw where the
        NLI's ranked list misses the desired query, the same model plus
        a TSQ still finds it (seed 0 is such a draw)."""
        from repro.core import Duoquest, TableSketchQuery

        gold = parse_sql("SELECT title FROM movie WHERE year < 1994",
                         movie_db.schema)
        nlq = NLQuery.from_text("titles before 1994", literals=[1994])
        config = EnumeratorConfig(time_budget=8.0, max_candidates=40)
        nli = NLIBaseline(movie_db, CalibratedOracleModel(seed=0), config)
        nli_result = nli.synthesize(nlq, gold=gold, task_id="nli-test")
        assert not any(queries_equal(c.query, gold)
                       for c in nli_result.candidates)

        rows = movie_db.execute_query(gold)
        tsq = TableSketchQuery.build(types=["text"], rows=[[rows[0][0]]])
        duoquest = Duoquest(movie_db, model=CalibratedOracleModel(seed=0),
                            config=config)
        dual = duoquest.synthesize(nlq, tsq, gold=gold,
                                   task_id="nli-test")
        assert any(queries_equal(c.query, gold) for c in dual.candidates)

    def test_literals_still_enforced(self, movie_db):
        """The NLI is given the literals (Section 5.4.1), so complete
        candidates must use them."""
        gold = parse_sql("SELECT title FROM movie WHERE year < 1994",
                         movie_db.schema)
        nli = NLIBaseline(movie_db, CalibratedOracleModel(seed=1),
                          EnumeratorConfig(time_budget=8.0,
                                           max_candidates=30))
        result = nli.synthesize(
            NLQuery.from_text("titles before 1994", literals=[1994]),
            gold=gold, task_id="nli-test-2")
        from repro.core.verifier import Verifier
        from repro.nlq.literals import Literal

        checker = Verifier(movie_db, literals=(Literal(1994),))
        for candidate in result.candidates:
            assert checker._verify_literals(candidate.query).ok


class TestAblationFactories:
    def test_variant_registry(self):
        assert set(ABLATION_VARIANTS) == {"Duoquest", "NoPQ", "NoGuide"}

    def test_nopq_disables_partial_verification(self, movie_db):
        model = CalibratedOracleModel(seed=0)
        system = make_nopq(movie_db, model)
        assert system.config.verify_partial is False
        assert system.config.guided is True

    def test_noguide_disables_guidance(self, movie_db):
        model = CalibratedOracleModel(seed=0)
        system = make_noguide(movie_db, model)
        assert system.config.guided is False
        assert system.config.verify_partial is True

    def test_full_system_has_both(self, movie_db):
        model = CalibratedOracleModel(seed=0)
        system = make_duoquest(movie_db, model)
        assert system.config.guided and system.config.verify_partial

    def test_base_config_not_mutated(self, movie_db):
        model = CalibratedOracleModel(seed=0)
        base = EnumeratorConfig()
        make_nopq(movie_db, model, base)
        assert base.verify_partial is True
