"""Tests for the SQuID-like PBE baseline."""

import pytest

from repro.baselines.squid import SquidPBE
from repro.errors import UnsupportedTaskError
from repro.sqlir.parser import parse_sql


@pytest.fixture(scope="module")
def pbe(mas_db):
    return SquidPBE(mas_db)


class TestCapabilityEnvelope:
    def test_projected_aggregate_unsupported(self, pbe, mas_db):
        gold = parse_sql(
            "SELECT t1.name, COUNT(*) FROM organization t1 JOIN author "
            "t2 ON t2.oid = t1.oid GROUP BY t1.name", mas_db.schema)
        supported, reason = pbe.supports_task(gold)
        assert not supported
        assert "aggregate" in reason

    def test_numeric_projection_unsupported(self, pbe, mas_db):
        gold = parse_sql("SELECT year FROM publication", mas_db.schema)
        supported, reason = pbe.supports_task(gold)
        assert not supported

    def test_sorted_output_unsupported(self, pbe, mas_db):
        gold = parse_sql(
            "SELECT title FROM publication ORDER BY title", mas_db.schema)
        assert not pbe.supports_task(gold)[0]

    def test_like_predicate_unsupported(self, pbe, mas_db):
        gold = parse_sql(
            "SELECT name FROM author WHERE name LIKE '%Emma%'",
            mas_db.schema)
        assert not pbe.supports_task(gold)[0]

    def test_having_count_supported(self, pbe, mas_db):
        """Only *projected* aggregates are out (paper footnote 3)."""
        gold = parse_sql(
            "SELECT t1.name FROM author t1 JOIN writes t2 ON "
            "t1.aid = t2.aid GROUP BY t1.name HAVING COUNT(*) > 5",
            mas_db.schema)
        assert pbe.supports_task(gold)[0]

    def test_plain_select_supported(self, pbe, mas_db):
        gold = parse_sql(
            "SELECT name FROM organization WHERE continent = "
            "'North America'", mas_db.schema)
        assert pbe.supports_task(gold)[0]

    def test_numeric_examples_rejected(self, pbe):
        ok, reason = pbe.supports_examples([["Emma Thompson", 42]])
        assert not ok

    def test_partial_examples_rejected(self, pbe):
        ok, reason = pbe.supports_examples([["Emma Thompson", None]])
        assert not ok

    def test_run_raises_on_unsupported_examples(self, pbe):
        with pytest.raises(UnsupportedTaskError):
            pbe.run([["x", 1]])


class TestAbduction:
    def test_projection_discovery(self, pbe, mas_db):
        outcome = pbe.run([["Emma Thompson"]])
        assert outcome.produced
        from repro.sqlir.ast import ColumnRef

        assert any(ColumnRef("author", "name") in combo
                   for combo in outcome.projections)

    def test_filters_found_for_continent_task(self, pbe, mas_db):
        """Task D2: organizations in a continent — filter on the same
        table."""
        rows = mas_db.execute(
            "SELECT name FROM organization WHERE continent = "
            "'North America' LIMIT 2")
        examples = [[row[0]] for row in rows]
        outcome = pbe.run(examples)
        from repro.sqlir.ast import ColumnRef

        assert ColumnRef("organization", "continent") in outcome.filters
        assert "North America" in outcome.filters[
            ColumnRef("organization", "continent")]

    def test_unmatchable_example_fails_gracefully(self, pbe):
        outcome = pbe.run([["value that exists nowhere at all"]])
        assert not outcome.produced
        assert outcome.failure


class TestJudge:
    def test_d2_judged_correct(self, pbe, mas_db):
        gold = parse_sql(
            "SELECT name FROM organization WHERE continent = "
            "'North America'", mas_db.schema)
        rows = mas_db.execute_query(gold, max_rows=2)
        outcome = pbe.run([[row[0]] for row in rows])
        assert pbe.judge(outcome, gold)

    def test_c1_conference_filter_reachable(self, pbe, mas_db):
        """Task C1: publications in SIGMOD; the filter column sits one
        hop from the projection table."""
        gold = parse_sql(
            "SELECT t2.title FROM conference t1 JOIN publication t2 ON "
            "t1.cid = t2.cid WHERE t1.name = 'SIGMOD'", mas_db.schema)
        rows = mas_db.execute_query(gold, max_rows=2)
        outcome = pbe.run([[row[0]] for row in rows])
        assert pbe.judge(outcome, gold)

    def test_wrong_projection_judged_incorrect(self, pbe, mas_db):
        gold = parse_sql("SELECT title FROM publication", mas_db.schema)
        outcome = pbe.run([["Emma Thompson"]])  # an author, not a title
        assert not pbe.judge(outcome, gold)
