"""Tests for the MAS database builder."""

from repro.datasets.mas import (
    AUTHOR_A,
    CONFERENCE_C,
    DOMAIN_D,
    ORGANIZATION_R,
    build_mas_database,
    mas_schema,
)
from repro.sqlir.ast import ColumnRef


class TestSchemaShape:
    def test_table5_statistics(self):
        """Table 5: MAS has 15 tables, 44 columns, 19 FK-PK links."""
        schema = mas_schema()
        assert schema.num_tables == 15
        assert schema.num_columns == 44
        assert schema.num_foreign_keys == 19

    def test_link_tables_have_no_pk(self):
        schema = mas_schema()
        assert schema.table("writes").primary_key is None
        assert schema.table("cite").primary_key is None


class TestPlantedEntities:
    def test_flagship_conference_exists(self, mas_db):
        assert mas_db.value_exists(ColumnRef("conference", "name"),
                                   CONFERENCE_C)

    def test_author_a_exists(self, mas_db):
        assert mas_db.value_exists(ColumnRef("author", "name"), AUTHOR_A)

    def test_organization_r_exists(self, mas_db):
        assert mas_db.value_exists(ColumnRef("organization", "name"),
                                   ORGANIZATION_R)

    def test_domain_d_exists(self, mas_db):
        assert mas_db.value_exists(ColumnRef("domain", "name"), DOMAIN_D)

    def test_some_journal_exceeds_500_publications(self, mas_db):
        """Task A4's threshold must be attainable."""
        rows = mas_db.execute(
            "SELECT COUNT(*) FROM journal t1 JOIN publication t2 ON "
            "t1.jid = t2.jid GROUP BY t1.name HAVING COUNT(*) > 500")
        assert rows

    def test_organizations_exceed_100_authors(self, mas_db):
        rows = mas_db.execute(
            "SELECT t2.name FROM author t1 JOIN organization t2 ON "
            "t1.oid = t2.oid GROUP BY t2.name HAVING COUNT(*) > 100")
        assert len(rows) >= 2

    def test_prolific_michigan_authors(self, mas_db):
        """Task B4: Michigan authors with more than 50 publications."""
        rows = mas_db.execute(
            "SELECT t1.name FROM author t1 JOIN writes t2 ON "
            "t1.aid = t2.aid JOIN organization t3 ON t1.oid = t3.oid "
            f"WHERE t3.name = '{ORGANIZATION_R}' GROUP BY t1.name "
            "HAVING COUNT(*) > 50")
        assert rows

    def test_frequent_sigmod_authors(self, mas_db):
        """Tasks C3/D3: authors with more than 5 and 8 SIGMOD papers."""
        for threshold in (5, 8):
            rows = mas_db.execute(
                "SELECT t1.name FROM author t1 JOIN writes t2 ON "
                "t1.aid = t2.aid JOIN publication t3 ON t2.pid = t3.pid "
                "JOIN conference t4 ON t3.cid = t4.cid WHERE t4.name = "
                f"'{CONFERENCE_C}' GROUP BY t1.name "
                f"HAVING COUNT(t3.pid) > {threshold}")
            assert rows, f"no authors above {threshold} SIGMOD papers"

    def test_deterministic(self):
        a = build_mas_database(seed=3)
        b = build_mas_database(seed=3)
        assert a.execute("SELECT * FROM author ORDER BY aid LIMIT 20") == \
            b.execute("SELECT * FROM author ORDER BY aid LIMIT 20")
