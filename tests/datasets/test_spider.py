"""Tests for the synthetic Spider corpus generator."""

import pytest

from repro.core.semantics import check_semantics
from repro.datasets import (
    Difficulty,
    SpiderCorpusConfig,
    classify_difficulty,
    generate_corpus,
)
from repro.sqlir.ast import Hole


class TestCorpusGeneration:
    def test_database_count(self, mini_corpus):
        assert len(mini_corpus.databases) == 4

    def test_tasks_generated(self, mini_corpus):
        assert len(mini_corpus) >= 15

    def test_all_difficulties_present_in_larger_corpus(self):
        corpus = generate_corpus("dev", SpiderCorpusConfig(
            num_databases=6, tasks_per_database=8, seed=0))
        counts = corpus.counts()
        assert all(counts[d] > 0 for d in Difficulty)

    def test_gold_queries_execute_nonempty(self, mini_corpus):
        for task in mini_corpus:
            db = mini_corpus.database_for(task)
            assert db.execute_query(task.gold, max_rows=3), task.task_id

    def test_gold_queries_pass_semantic_rules(self, mini_corpus):
        for task in mini_corpus:
            db = mini_corpus.database_for(task)
            assert check_semantics(task.gold, db.schema) == [], \
                task.task_id

    def test_difficulty_labels_consistent(self, mini_corpus):
        for task in mini_corpus:
            assert task.difficulty is classify_difficulty(task.gold)

    def test_hard_tasks_project_aggregates(self, mini_corpus):
        """Hard tasks must carry projected aggregates so that the PBE
        baseline cannot support them (Section 5.4.2)."""
        from repro.sqlir.ast import SelectItem

        for task in mini_corpus.by_difficulty(Difficulty.HARD):
            assert any(isinstance(i, SelectItem) and i.is_aggregate
                       for i in task.gold.select)

    def test_nlq_mentions_literals(self, mini_corpus):
        for task in mini_corpus:
            for literal in task.nlq.literals:
                value = literal.value
                if isinstance(value, float) and value.is_integer():
                    value = int(value)
                assert str(value).casefold() in task.nlq.text.casefold(), \
                    f"{task.task_id}: {value!r} not in {task.nlq.text!r}"

    def test_deterministic(self):
        config = SpiderCorpusConfig(num_databases=2,
                                    tasks_per_database=4, seed=9)
        a = generate_corpus("dev", config)
        b = generate_corpus("dev", config)
        assert [t.task_id for t in a] == [t.task_id for t in b]
        from repro.sqlir.render import to_sql

        assert [to_sql(t.gold) for t in a] == [to_sql(t.gold) for t in b]

    def test_test_split_disjoint_and_larger(self):
        config = SpiderCorpusConfig(num_databases=2,
                                    tasks_per_database=3, seed=0)
        dev = generate_corpus("dev", config)
        test = generate_corpus("test", config)
        assert len(test.databases) == 2 * len(dev.databases)
        assert not set(dev.databases) & set(test.databases)


class TestDifficultyClassification:
    def test_table5_definitions(self, movie_schema):
        from repro.sqlir.parser import parse_sql

        easy = parse_sql("SELECT title FROM movie ORDER BY year LIMIT 3",
                         movie_schema)
        medium = parse_sql("SELECT title FROM movie WHERE year < 1990",
                           movie_schema)
        hard = parse_sql(
            "SELECT name, COUNT(*) FROM actor GROUP BY name",
            movie_schema)
        assert classify_difficulty(easy) is Difficulty.EASY
        assert classify_difficulty(medium) is Difficulty.MEDIUM
        assert classify_difficulty(hard) is Difficulty.HARD

    def test_aggregate_without_group_is_easy(self, movie_schema):
        from repro.sqlir.parser import parse_sql

        query = parse_sql("SELECT MAX(year) FROM movie", movie_schema)
        assert classify_difficulty(query) is Difficulty.EASY
