"""Tests for TSQ synthesis (Section 5.4.1 / 5.4.4)."""

import pytest

from repro.core.tsq import EmptyCell, ExactCell
from repro.core.verifier import Verifier
from repro.datasets import (
    DETAIL_FULL,
    DETAIL_MINIMAL,
    DETAIL_PARTIAL,
    example_values,
    synthesize_tsq,
)
from repro.errors import DatasetError


class TestSynthesis:
    def test_full_detail_has_two_examples(self, mini_corpus):
        task = next(iter(mini_corpus))
        db = mini_corpus.database_for(task)
        tsq = synthesize_tsq(task, db, detail=DETAIL_FULL)
        assert 1 <= len(tsq.tuples) <= 2
        assert tsq.types is not None

    def test_minimal_detail_has_no_examples(self, mini_corpus):
        task = next(iter(mini_corpus))
        db = mini_corpus.database_for(task)
        tsq = synthesize_tsq(task, db, detail=DETAIL_MINIMAL)
        assert tsq.tuples == ()
        assert tsq.types is not None

    def test_partial_detail_erases_one_column(self, mini_corpus):
        for task in mini_corpus:
            if len(task.gold.select) < 2:
                continue
            db = mini_corpus.database_for(task)
            tsq = synthesize_tsq(task, db, detail=DETAIL_PARTIAL)
            if not tsq.tuples:
                continue
            erased = [j for j in range(len(tsq.tuples[0]))
                      if all(isinstance(t[j], EmptyCell)
                             for t in tsq.tuples)]
            assert len(erased) >= 1
            return
        pytest.skip("no multi-column task in the mini corpus")

    def test_unknown_detail_rejected(self, mini_corpus):
        task = next(iter(mini_corpus))
        db = mini_corpus.database_for(task)
        with pytest.raises(DatasetError):
            synthesize_tsq(task, db, detail="bogus")

    def test_tau_and_k_match_gold(self, mini_corpus):
        from repro.sqlir.ast import Hole

        for task in mini_corpus:
            db = mini_corpus.database_for(task)
            tsq = synthesize_tsq(task, db)
            gold_sorted = task.gold.order_by is not None and \
                not isinstance(task.gold.order_by, Hole)
            assert tsq.sorted == gold_sorted
            gold_limit = task.gold.limit if isinstance(task.gold.limit,
                                                       int) else 0
            assert tsq.limit == gold_limit

    def test_gold_satisfies_its_own_tsq(self, mini_corpus):
        """The cornerstone invariant of the simulation study: every
        synthesized TSQ is satisfied by the gold query that produced it,
        at every detail level."""
        for task in mini_corpus:
            db = mini_corpus.database_for(task)
            for detail in (DETAIL_FULL, DETAIL_PARTIAL, DETAIL_MINIMAL):
                tsq = synthesize_tsq(task, db, detail=detail)
                verifier = Verifier(db, tsq=tsq,
                                    literals=task.nlq.literals)
                result = verifier.verify(task.gold)
                assert result.ok, (task.task_id, detail,
                                   result.failed_stage, result.detail)

    def test_deterministic(self, mini_corpus):
        task = next(iter(mini_corpus))
        db = mini_corpus.database_for(task)
        assert synthesize_tsq(task, db, seed=4) == \
            synthesize_tsq(task, db, seed=4)


class TestExampleValues:
    def test_exact_cells_to_values(self, mini_corpus):
        task = next(iter(mini_corpus))
        db = mini_corpus.database_for(task)
        tsq = synthesize_tsq(task, db)
        rows = example_values(tsq)
        assert len(rows) == len(tsq.tuples)
        for row, cells in zip(rows, tsq.tuples):
            for value, cell in zip(row, cells):
                if isinstance(cell, ExactCell):
                    assert value == cell.value
                else:
                    assert value is None
