"""Tests for template-based NLQ generation."""

import random

from repro.datasets.nlgen import generate_nlq_text
from repro.sqlir.parser import parse_sql


class TestGeneration:
    def test_mentions_select_columns(self, movie_schema):
        query = parse_sql("SELECT title FROM movie", movie_schema)
        text = generate_nlq_text(query, movie_schema)
        assert "title" in text.lower()
        assert text.endswith(".")

    def test_mentions_literals(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie WHERE year < 1995", movie_schema)
        text = generate_nlq_text(query, movie_schema)
        assert "1995" in text
        assert "less than" in text

    def test_or_connective_phrased(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie WHERE year < 1990 OR year > 2000",
            movie_schema)
        assert " or " in generate_nlq_text(query, movie_schema)

    def test_grouping_phrased(self, movie_schema):
        query = parse_sql(
            "SELECT name, COUNT(*) FROM actor GROUP BY name",
            movie_schema)
        text = generate_nlq_text(query, movie_schema)
        assert "for each" in text
        assert "number of" in text

    def test_order_and_limit_phrased(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie ORDER BY year DESC LIMIT 3",
            movie_schema)
        text = generate_nlq_text(query, movie_schema)
        assert "highest to lowest" in text
        assert "top 3" in text

    def test_having_phrased(self, movie_schema):
        query = parse_sql(
            "SELECT name, COUNT(*) FROM actor GROUP BY name "
            "HAVING COUNT(*) > 5", movie_schema)
        text = generate_nlq_text(query, movie_schema)
        assert "more than 5" in text

    def test_between_phrased(self, movie_schema):
        query = parse_sql(
            "SELECT title FROM movie WHERE year BETWEEN 1990 AND 1999",
            movie_schema)
        text = generate_nlq_text(query, movie_schema)
        assert "between 1990 and 1999" in text

    def test_deterministic_given_rng(self, movie_schema):
        query = parse_sql("SELECT title FROM movie", movie_schema)
        a = generate_nlq_text(query, movie_schema, random.Random(3))
        b = generate_nlq_text(query, movie_schema, random.Random(3))
        assert a == b
