"""Tests for fact-bank construction (Section 5.1.5)."""

from repro.core.tsq import EmptyCell, ExactCell, RangeCell
from repro.datasets import build_fact_bank, nli_study_tasks
from repro.sqlir.render import to_sql


class TestFactBank:
    def test_ten_facts_per_task(self, mas_db):
        for task in nli_study_tasks(mas_db):
            rows = mas_db.execute(to_sql(task.gold), max_rows=100)
            facts = build_fact_bank(task, mas_db, size=10, seed=0)
            assert len(facts) == min(10, len(set(rows)))

    def test_facts_consistent_with_gold_rows(self, mas_db):
        """Every fact's cells must match its originating result row."""
        task = next(iter(nli_study_tasks(mas_db)))
        rows = mas_db.execute(to_sql(task.gold), max_rows=4000)
        distinct = list(dict.fromkeys(rows))
        for fact in build_fact_bank(task, mas_db, size=10, seed=0):
            row = distinct[fact.order_index]
            for cell, value in zip(fact.cells, row):
                assert cell.matches(value), (fact, row)

    def test_sentences_readable(self, mas_db):
        task = next(iter(nli_study_tasks(mas_db)))
        facts = build_fact_bank(task, mas_db, size=5, seed=0)
        assert all(fact.sentence.startswith("A desired row")
                   for fact in facts)

    def test_blurring_produces_ranges_sometimes(self, mas_db):
        tasks = {t.task_id: t for t in nli_study_tasks(mas_db)}
        facts = build_fact_bank(tasks["A3"], mas_db, size=10, seed=0)
        kinds = {type(c) for fact in facts for c in fact.cells}
        assert RangeCell in kinds or EmptyCell in kinds

    def test_deterministic(self, mas_db):
        task = next(iter(nli_study_tasks(mas_db)))
        a = build_fact_bank(task, mas_db, size=10, seed=2)
        b = build_fact_bank(task, mas_db, size=10, seed=2)
        assert a == b
