"""Tests for the Table 7/8 user-study task definitions."""

import pytest

from repro.datasets import (
    Difficulty,
    nli_study_tasks,
    pbe_study_tasks,
)


class TestNliTasks:
    def test_eight_tasks(self, mas_db):
        assert len(nli_study_tasks(mas_db)) == 8

    def test_difficulty_mix_matches_table5(self, mas_db):
        """Table 5: the NLI study has 0 easy, 3 medium, 5 hard tasks."""
        counts = nli_study_tasks(mas_db).counts()
        assert counts[Difficulty.EASY] == 0
        assert counts[Difficulty.MEDIUM] == 3
        assert counts[Difficulty.HARD] == 5

    def test_all_gold_queries_execute_nonempty(self, mas_db):
        for task in nli_study_tasks(mas_db):
            rows = mas_db.execute_query(task.gold, max_rows=5)
            assert rows, f"{task.task_id} has an empty result"

    def test_literals_tagged(self, mas_db):
        tasks = {t.task_id: t for t in nli_study_tasks(mas_db)}
        assert {l.value for l in tasks["B4"].nlq.literals} == \
            {"University of Michigan", 50}
        assert tasks["A2"].nlq.literals == ()


class TestPbeTasks:
    def test_six_tasks(self, mas_db):
        assert len(pbe_study_tasks(mas_db)) == 6

    def test_difficulty_mix_matches_table5(self, mas_db):
        """Table 5: the PBE study has 0 easy, 4 medium, 2 hard tasks."""
        counts = pbe_study_tasks(mas_db).counts()
        assert counts[Difficulty.EASY] == 0
        assert counts[Difficulty.MEDIUM] == 4
        assert counts[Difficulty.HARD] == 2

    def test_all_gold_queries_execute_nonempty(self, mas_db):
        for task in pbe_study_tasks(mas_db):
            assert mas_db.execute_query(task.gold, max_rows=5)

    def test_pbe_workload_has_no_projected_aggregates(self, mas_db):
        """The PBE study restricts the scope to what SQuID supports."""
        from repro.sqlir.ast import SelectItem

        for task in pbe_study_tasks(mas_db):
            for item in task.gold.select:
                assert isinstance(item, SelectItem)
                assert not item.is_aggregate
