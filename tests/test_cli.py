"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_args(self):
        args = build_parser().parse_args(
            ["demo", "list authors", "--top", "5"])
        assert args.nlq == "list authors"
        assert args.top == 5

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.split == "dev"
        assert args.verify_backend == "threads"
        assert args.workers == 1

    def test_verify_backend_choices(self):
        args = build_parser().parse_args(
            ["demo", "list authors", "--verify-backend", "processes",
             "--workers", "2"])
        assert args.verify_backend == "processes"
        assert args.workers == 2
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["demo", "list authors", "--verify-backend", "fibers"])

    @pytest.mark.parametrize("bad", ["0", "-3"])
    def test_workers_below_one_rejected(self, bad, capsys):
        """--workers 0 used to be silently clamped to inline; now the
        parser rejects it with a clear message."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["demo", "list authors", "--workers", bad])
        err = capsys.readouterr().err
        assert "must be >= 1" in err

    def test_guidance_flag_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.guidance_batch is False
        assert args.guidance_cache_size == 4096
        assert args.guidance_server is None

    def test_guidance_flags_parse(self):
        args = build_parser().parse_args(
            ["demo", "list authors", "--guidance-batch",
             "--guidance-cache-size", "128",
             "--guidance-server", "127.0.0.1:8765"])
        assert args.guidance_batch is True
        assert args.guidance_cache_size == 128
        assert args.guidance_server == "127.0.0.1:8765"

    def test_guidance_cache_size_below_one_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["demo", "list authors", "--guidance-cache-size", "0"])
        assert "must be >= 1" in capsys.readouterr().err


class TestCommands:
    def test_tables_command(self, capsys):
        assert main(["tables"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Table 3" in out
        assert "Table 4" in out

    def test_simulate_tiny(self, capsys):
        code = main(["simulate", "--databases", "2", "--tasks", "2",
                     "--timeout", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Figure 10" in out
        assert "Figure 11" in out

    def test_demo_runs(self, capsys):
        code = main(["demo", 'List authors in domain "Databases".',
                     "--top", "3", "--timeout", "5"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SELECT" in out

    def test_demo_processes_backend(self, capsys):
        code = main(["demo", 'List authors in domain "Databases".',
                     "--top", "3", "--timeout", "5",
                     "--verify-backend", "processes", "--workers", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SELECT" in out
        assert "processes" in out  # telemetry line names the backend

    def test_demo_inline_with_workers_errors(self, capsys):
        code = main(["demo", "list authors", "--verify-backend", "inline",
                     "--workers", "4"])
        assert code == 2
        err = capsys.readouterr().err
        assert "inline" in err

    def test_demo_guidance_batch_reports_amortisation(self, capsys):
        code = main(["demo", 'List authors in domain "Databases".',
                     "--top", "3", "--timeout", "5", "--guidance-batch"])
        assert code == 0
        out = capsys.readouterr().out
        assert "SELECT" in out
        assert "[guidance]" in out

    def test_demo_bad_guidance_server_address_errors(self, capsys):
        """A malformed HOST:PORT is a config error (exit 2), not a
        degrade — degrading is for servers that fail at runtime."""
        code = main(["demo", "list authors",
                     "--guidance-server", "nonsense"])
        assert code == 2
        assert "HOST:PORT" in capsys.readouterr().err

    def test_simulate_guidance_batch_prints_summary(self, capsys):
        code = main(["simulate", "--databases", "2", "--tasks", "2",
                     "--timeout", "2", "--guidance-batch"])
        assert code == 0
        out = capsys.readouterr().out
        assert "GuideCalls" in out and "GuideHits" in out
        assert "[guidance]" in out
