"""Tests for the synthetic data generator."""

import pytest

from repro.db import (
    ColumnSpec,
    Database,
    DataGenerator,
    PopulationPlan,
    make_schema,
)
from repro.errors import DatasetError
from repro.sqlir.ast import ColumnRef
from repro.sqlir.types import ColumnType as T
from tests.conftest import build_movie_schema


def fresh_db():
    return Database.create(build_movie_schema())


class TestPopulate:
    def test_row_counts(self):
        db = fresh_db()
        inserted = DataGenerator(db.schema, seed=1).populate(
            db, PopulationPlan(default_rows=25))
        assert inserted == {"actor": 25, "movie": 25, "starring": 25}

    def test_fk_integrity(self):
        db = fresh_db()
        DataGenerator(db.schema, seed=2).populate(
            db, PopulationPlan(default_rows=30))
        orphans = db.execute(
            "SELECT COUNT(*) FROM starring s LEFT JOIN actor a "
            "ON s.aid = a.aid WHERE a.aid IS NULL")
        assert orphans[0][0] == 0

    def test_deterministic_given_seed(self):
        db_a, db_b = fresh_db(), fresh_db()
        DataGenerator(db_a.schema, seed=7).populate(db_a)
        DataGenerator(db_b.schema, seed=7).populate(db_b)
        rows_a = db_a.execute("SELECT * FROM actor ORDER BY aid")
        rows_b = db_b.execute("SELECT * FROM actor ORDER BY aid")
        assert rows_a == rows_b

    def test_per_table_row_counts(self):
        db = fresh_db()
        plan = PopulationPlan(rows_per_table={"actor": 10, "movie": 5,
                                              "starring": 8})
        inserted = DataGenerator(db.schema, seed=0).populate(db, plan)
        assert inserted["actor"] == 10
        assert inserted["movie"] == 5

    def test_column_spec_pool(self):
        db = fresh_db()
        plan = PopulationPlan(
            default_rows=20,
            column_specs={"actor.gender": ColumnSpec(
                pool=["male", "female", "nonbinary"])})
        DataGenerator(db.schema, seed=0).populate(db, plan)
        values = set(db.distinct_values(ColumnRef("actor", "gender")))
        assert values <= {"male", "female", "nonbinary"}

    def test_numeric_bounds(self):
        db = fresh_db()
        plan = PopulationPlan(
            default_rows=20,
            column_specs={"movie.year": ColumnSpec(low=1990, high=1999)})
        DataGenerator(db.schema, seed=0).populate(db, plan)
        low, high = db.column_min_max(ColumnRef("movie", "year"))
        assert low >= 1990 and high <= 1999

    def test_unique_pool_too_small_raises(self):
        db = fresh_db()
        plan = PopulationPlan(
            default_rows=20,
            column_specs={"actor.gender": ColumnSpec(pool=["x"],
                                                     unique=True)})
        with pytest.raises(DatasetError):
            DataGenerator(db.schema, seed=0).populate(db, plan)

    def test_unique_text_values_distinct(self):
        db = fresh_db()
        plan = PopulationPlan(
            default_rows=30,
            column_specs={"movie.title": ColumnSpec(unique=True)})
        DataGenerator(db.schema, seed=0).populate(db, plan)
        titles = db.distinct_values(ColumnRef("movie", "title"))
        assert len(titles) == 30
