"""Tests for schema ingestion and persistence."""

import sqlite3

import pytest

from repro.db import (
    Database,
    introspect_sqlite,
    load_schema,
    open_database,
    save_database,
    save_schema,
    schema_from_dict,
    schema_to_dict,
)
from repro.errors import SchemaError
from repro.sqlir.types import ColumnType as T


class TestIntrospection:
    def test_roundtrip_from_own_ddl(self, movie_schema):
        """A schema re-ingested from the SQLite file it created matches
        the original in tables, columns, types, PKs and FKs."""
        db = Database.create(movie_schema)
        ingested = introspect_sqlite(db._conn, name="movies")
        assert ingested.num_tables == movie_schema.num_tables
        assert ingested.num_columns == movie_schema.num_columns
        assert ingested.num_foreign_keys == movie_schema.num_foreign_keys
        for table in movie_schema.tables:
            other = ingested.table(table.name)
            assert [c.name for c in other.columns] == \
                [c.name for c in table.columns]
            assert [c.type for c in other.columns] == \
                [c.type for c in table.columns]
            original_pk = table.primary_key
            ingested_pk = other.primary_key
            assert (original_pk is None) == (ingested_pk is None)

    def test_foreign_created_database(self):
        """Ingesting a hand-made SQLite schema."""
        conn = sqlite3.connect(":memory:")
        conn.executescript("""
            CREATE TABLE city (city_id INTEGER PRIMARY KEY, name TEXT);
            CREATE TABLE person (
                person_id INTEGER PRIMARY KEY,
                name VARCHAR(80),
                age INT,
                city_id INTEGER REFERENCES city(city_id));
        """)
        schema = introspect_sqlite(conn, name="towns")
        assert schema.has_table("person")
        assert schema.column_type(
            __import__("repro.sqlir.ast", fromlist=["ColumnRef"])
            .ColumnRef("person", "age")) is T.NUMBER
        assert schema.num_foreign_keys == 1
        fk = schema.foreign_keys[0]
        assert (fk.src_table, fk.dst_table) == ("person", "city")

    def test_implicit_fk_target_resolves_to_pk(self):
        conn = sqlite3.connect(":memory:")
        conn.executescript("""
            CREATE TABLE parent (parent_id INTEGER PRIMARY KEY, x TEXT);
            CREATE TABLE child (
                child_id INTEGER PRIMARY KEY,
                parent_id INTEGER REFERENCES parent);
        """)
        schema = introspect_sqlite(conn)
        assert schema.foreign_keys[0].dst_column == "parent_id"

    def test_empty_database_rejected(self):
        conn = sqlite3.connect(":memory:")
        with pytest.raises(SchemaError):
            introspect_sqlite(conn)


class TestJsonRoundTrip:
    def test_dict_roundtrip(self, movie_schema):
        data = schema_to_dict(movie_schema)
        restored = schema_from_dict(data)
        assert restored.name == movie_schema.name
        assert restored.num_tables == movie_schema.num_tables
        assert restored.num_foreign_keys == movie_schema.num_foreign_keys

    def test_file_roundtrip(self, movie_schema, tmp_path):
        path = tmp_path / "schema.json"
        save_schema(movie_schema, path)
        restored = load_schema(path)
        assert schema_to_dict(restored) == schema_to_dict(movie_schema)

    def test_malformed_rejected(self):
        with pytest.raises(SchemaError):
            schema_from_dict({"name": "x"})


class TestDatabasePersistence:
    def test_save_and_reopen(self, movie_db, tmp_path):
        path = tmp_path / "movies.sqlite"
        save_database(movie_db, path)
        reopened = open_database(path)
        assert reopened.row_count("movie") == movie_db.row_count("movie")
        assert reopened.schema.has_table("starring")
        # Queries run against the reopened database.
        rows = reopened.execute(
            "SELECT title FROM movie WHERE title = 'Forrest Gump'")
        assert rows == [("Forrest Gump",)]

    def test_reopen_with_explicit_schema(self, movie_db, movie_schema,
                                         tmp_path):
        path = tmp_path / "movies2.sqlite"
        save_database(movie_db, path)
        reopened = open_database(path, schema=movie_schema)
        assert reopened.schema is movie_schema

    def test_synthesis_on_reopened_database(self, movie_db, tmp_path):
        """End to end: persist, reopen via introspection, synthesize."""
        from repro.core import Duoquest, EnumeratorConfig
        from repro.guidance import LexicalGuidanceModel
        from repro.nlq import NLQuery

        path = tmp_path / "movies3.sqlite"
        save_database(movie_db, path)
        reopened = open_database(path)
        system = Duoquest(reopened, model=LexicalGuidanceModel(),
                          config=EnumeratorConfig(time_budget=4.0,
                                                  max_candidates=10))
        result = system.synthesize(NLQuery.from_text("all movie titles"))
        assert result.candidates
