"""Tests for the SQLite wrapper."""

import pytest

from repro.db import Database
from repro.errors import ExecutionError, ExecutionTimeout
from repro.sqlir.ast import ColumnRef
from repro.sqlir.parser import parse_sql
from tests.conftest import build_movie_db


class TestExecution:
    def test_execute_select(self, movie_db):
        rows = movie_db.execute("SELECT COUNT(*) FROM movie")
        assert rows == [(40,)]

    def test_execute_query_ast(self, movie_db):
        query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                          movie_db.schema)
        rows = movie_db.execute_query(query)
        assert all(isinstance(row[0], str) for row in rows)

    def test_max_rows(self, movie_db):
        rows = movie_db.execute("SELECT * FROM movie", max_rows=5)
        assert len(rows) == 5

    def test_bad_sql_raises(self, movie_db):
        with pytest.raises(ExecutionError):
            movie_db.execute("SELECT FROM nothing WHERE")

    def test_exists(self, movie_db):
        assert movie_db.exists(
            "SELECT 1 FROM movie WHERE title = 'Forrest Gump' LIMIT 1")
        assert not movie_db.exists(
            "SELECT 1 FROM movie WHERE title = 'No Such Movie' LIMIT 1")

    def test_stats_counted(self):
        db = build_movie_db()
        before = db.stats.statements
        db.execute("SELECT 1 FROM movie LIMIT 1", kind="probe")
        assert db.stats.statements == before + 1
        assert db.stats.per_kind.get("probe", 0) >= 1

    def test_stats_snapshot_is_independent(self, movie_db):
        snap = movie_db.stats.snapshot()
        movie_db.execute("SELECT 1 FROM movie LIMIT 1")
        assert movie_db.stats.statements > snap.statements


class TestIntrospection:
    def test_row_count(self, movie_db):
        assert movie_db.row_count("actor") == 30

    def test_distinct_values(self, movie_db):
        genders = movie_db.distinct_values(ColumnRef("actor", "gender"))
        assert set(genders) <= {"male", "female"}

    def test_distinct_values_limit(self, movie_db):
        titles = movie_db.distinct_values(ColumnRef("movie", "title"),
                                          limit=3)
        assert len(titles) == 3

    def test_column_min_max(self, movie_db):
        low, high = movie_db.column_min_max(ColumnRef("movie", "year"))
        assert low <= high
        assert low >= 1970

    def test_value_exists(self, movie_db):
        assert movie_db.value_exists(ColumnRef("actor", "name"),
                                     "Tom Hanks")
        assert not movie_db.value_exists(ColumnRef("actor", "name"),
                                         "Nobody")


class TestInsert:
    def test_fk_violation_raises(self):
        db = build_movie_db()
        with pytest.raises(ExecutionError):
            db.insert_rows("starring", [(999, 999)])

    def test_insert_returns_count(self):
        db = build_movie_db()
        count = db.insert_rows("actor",
                               [(100, "New Actor", "male", 1980)])
        assert count == 1
        assert db.row_count("actor") == 31


class TestInterruptible:
    def test_fast_statement_unaffected(self, movie_db):
        with movie_db.interruptible(1000):
            rows = movie_db.execute("SELECT COUNT(*) FROM movie")
        assert rows[0][0] == 40

    def test_runaway_statement_interrupted(self):
        db = build_movie_db()
        # A large cross product that cannot finish within the budget.
        slow = ("SELECT COUNT(*) FROM movie a, movie b, movie c, movie d, "
                "movie e")
        with pytest.raises((ExecutionTimeout, ExecutionError)):
            with db.interruptible(10):
                db.execute(slow)


class TestSnapshotRoundTrip:
    """Snapshot/rehydrate round-trips, as used by both verification pool
    backends: data, secondary indexes, and stats accounting."""

    pytestmark = pytest.mark.skipif(
        not Database.supports_snapshots(),
        reason="sqlite build cannot serialize databases")

    def _indexes(self, db):
        rows = db.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND name LIKE 'idx_%' ORDER BY name", kind="meta")
        return [row[0] for row in rows]

    def test_round_trip_preserves_rows(self, movie_db):
        clone = Database.from_snapshot(movie_db.schema,
                                       movie_db.snapshot())
        for table in ("actor", "movie", "starring"):
            assert clone.row_count(table) == movie_db.row_count(table)
        original = movie_db.execute(
            "SELECT title FROM movie ORDER BY mid")
        assert clone.execute(
            "SELECT title FROM movie ORDER BY mid") == original
        clone.close()

    def test_round_trip_preserves_indexes(self, movie_db):
        """schema.ddl() creates secondary indexes on FK/text columns;
        they must survive serialization so rehydrated probe workers run
        at the same speed as the primary connection."""
        expected = self._indexes(movie_db)
        assert expected, "fixture schema should declare indexes"
        clone = Database.from_snapshot(movie_db.schema,
                                       movie_db.snapshot())
        assert self._indexes(clone) == expected
        clone.close()

    def test_rehydrated_stats_start_fresh_and_merge_back(self):
        db = build_movie_db()
        db.execute("SELECT 1 FROM movie LIMIT 1", kind="probe")
        clone = Database.from_snapshot(db.schema, db.snapshot())
        # Fresh counters: the snapshot carries data, not accounting.
        assert clone.stats.statements == 0
        clone.execute("SELECT 1 FROM actor LIMIT 1", kind="probe")
        clone.execute("SELECT COUNT(*) FROM movie", kind="meta")
        before = db.stats.snapshot()
        db.merge_stats(clone.stats)
        assert db.stats.statements == before.statements + 2
        assert db.stats.per_kind["probe"] == \
            before.per_kind.get("probe", 0) + 1
        clone.close()

    def test_stats_delta_since(self):
        db = build_movie_db()
        db.execute("SELECT 1 FROM movie LIMIT 1", kind="probe")
        mark = db.stats.snapshot()
        db.execute("SELECT 1 FROM movie LIMIT 1", kind="probe")
        db.execute("SELECT COUNT(*) FROM actor", kind="meta")
        delta = db.stats.delta_since(mark)
        assert delta.statements == 2
        assert delta.per_kind == {"probe": 1, "meta": 1}

    def test_fork_is_independent(self, movie_db):
        fork = movie_db.fork()
        fork.insert_rows("actor", [(200, "Fork Only", "male", 1970)])
        assert fork.row_count("actor") == movie_db.row_count("actor") + 1
        assert not movie_db.value_exists(ColumnRef("actor", "name"),
                                         "Fork Only")
        fork.close()
