"""Tests for the inverted column index / autocomplete substrate."""

from repro.db import InvertedColumnIndex
from repro.sqlir.ast import ColumnRef


class TestBuild:
    def test_indexes_all_text_columns(self, movie_db):
        index = InvertedColumnIndex.build(movie_db)
        assert index.columns_for_value("Tom Hanks") == \
            [ColumnRef("actor", "name")]
        assert index.columns_for_value("Forrest Gump") == \
            [ColumnRef("movie", "title")]

    def test_numeric_columns_not_indexed(self, movie_db):
        index = InvertedColumnIndex.build(movie_db)
        assert index.columns_for_value("1994") == []

    def test_case_insensitive(self, movie_db):
        index = InvertedColumnIndex.build(movie_db)
        assert index.contains_value("tom hanks")
        assert index.columns_for_value("TOM HANKS")

    def test_value_in_multiple_columns(self):
        index = InvertedColumnIndex()
        index.add_column(ColumnRef("a", "x"), ["shared"])
        index.add_column(ColumnRef("b", "y"), ["shared"])
        assert len(index.columns_for_value("shared")) == 2


class TestComplete:
    def test_prefix_completion(self, movie_db):
        index = InvertedColumnIndex.build(movie_db)
        hits = index.complete("Forr")
        assert any(hit.value == "Forrest Gump" for hit in hits)

    def test_token_completion(self, movie_db):
        """Typing a later token of a value still finds it."""
        index = InvertedColumnIndex.build(movie_db)
        hits = index.complete("Gum")
        assert any(hit.value == "Forrest Gump" for hit in hits)

    def test_limit_respected(self, movie_db):
        index = InvertedColumnIndex.build(movie_db)
        assert len(index.complete("Movie", limit=3)) <= 3

    def test_empty_prefix(self, movie_db):
        index = InvertedColumnIndex.build(movie_db)
        assert index.complete("") == []

    def test_no_match(self, movie_db):
        index = InvertedColumnIndex.build(movie_db)
        assert index.complete("zzzzzz") == []
