"""Tests for the schema model."""

import pytest

from repro.db.schema import Column, ForeignKey, Schema, Table, make_schema
from repro.errors import SchemaError
from repro.sqlir.ast import ColumnRef
from repro.sqlir.types import ColumnType as T


class TestTable:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            Table(name="t", columns=(
                Column("a", T.TEXT), Column("a", T.NUMBER)))

    def test_primary_key_lookup(self, movie_schema):
        assert movie_schema.table("actor").primary_key.name == "aid"
        assert movie_schema.table("starring").primary_key is None

    def test_missing_column_raises(self, movie_schema):
        with pytest.raises(SchemaError):
            movie_schema.table("actor").column("nope")


class TestSchema:
    def test_counts(self, movie_schema):
        assert movie_schema.num_tables == 3
        assert movie_schema.num_foreign_keys == 2
        assert movie_schema.num_columns == 10

    def test_missing_table_raises(self, movie_schema):
        with pytest.raises(SchemaError):
            movie_schema.table("nope")

    def test_column_type_lookup(self, movie_schema):
        assert movie_schema.column_type(
            ColumnRef("movie", "title")) is T.TEXT
        assert movie_schema.column_type(
            ColumnRef("movie", "year")) is T.NUMBER

    def test_star_is_number(self, movie_schema):
        from repro.sqlir.ast import STAR

        assert movie_schema.column_type(STAR) is T.NUMBER

    def test_iter_column_refs_in_schema_order(self, movie_schema):
        refs = list(movie_schema.iter_column_refs())
        assert refs[0] == ColumnRef("actor", "aid")
        assert len(refs) == movie_schema.num_columns

    def test_graph_edges(self, movie_schema):
        graph = movie_schema.graph()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 2
        assert graph.has_edge("starring", "actor")

    def test_foreign_keys_between(self, movie_schema):
        fks = movie_schema.foreign_keys_between("starring", "movie")
        assert len(fks) == 1
        assert fks[0].src_column == "mid"

    def test_foreign_keys_directional(self, movie_schema):
        assert movie_schema.foreign_keys_from("starring")
        assert not movie_schema.foreign_keys_from("movie")
        assert movie_schema.foreign_keys_into("movie")

    def test_bad_fk_rejected(self):
        with pytest.raises(SchemaError):
            make_schema("bad", tables={"a": [("x", T.TEXT)]},
                        foreign_keys=[("a", "x", "missing", "y")],
                        primary_keys={"a": None})

    def test_display_name_default(self, movie_schema):
        assert movie_schema.display_name("actor.birth_year") == \
            "birth year"

    def test_display_name_override(self):
        schema = make_schema("s", tables={"a": [("x", T.TEXT)]},
                             primary_keys={"a": None},
                             display_names={"a.x": "the exes"})
        assert schema.display_name("a.x") == "the exes"


class TestDdl:
    def test_ddl_creates_tables_and_indexes(self, movie_schema):
        statements = movie_schema.ddl()
        creates = [s for s in statements if s.startswith("CREATE TABLE")]
        indexes = [s for s in statements if s.startswith("CREATE INDEX")]
        assert len(creates) == 3
        # FK columns and text columns get secondary indexes.
        assert any("starring(aid)" in s for s in indexes)
        assert any("movie(title)" in s for s in indexes)

    def test_fk_clause_present(self, movie_schema):
        ddl = " ".join(movie_schema.ddl())
        assert "FOREIGN KEY (aid) REFERENCES actor(aid)" in ddl


class TestMakeSchema:
    def test_auto_primary_key_from_id_suffix(self):
        schema = make_schema("s", tables={"thing": [("thing_id", T.NUMBER),
                                                    ("name", T.TEXT)]})
        assert schema.table("thing").primary_key.name == "thing_id"

    def test_explicit_none_primary_key(self):
        schema = make_schema(
            "s", tables={"link": [("aid", T.NUMBER), ("bid", T.NUMBER)]},
            primary_keys={"link": None})
        assert schema.table("link").primary_key is None
