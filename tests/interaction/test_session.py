"""Tests for the dual-specification session (Figure 1 interaction)."""

import pytest

from repro.core import Duoquest, EnumeratorConfig
from repro.guidance import CalibratedOracleModel
from repro.interaction import DuoquestSession, PREVIEW_ROWS
from repro.nlq import NLQuery
from repro.sqlir.parser import parse_sql


@pytest.fixture
def session(movie_db):
    system = Duoquest(movie_db, model=CalibratedOracleModel(seed=1),
                      config=EnumeratorConfig(time_budget=6.0,
                                              max_candidates=20))
    return DuoquestSession.open(movie_db, system)


class TestRounds:
    def test_submit_records_round(self, session):
        nlq = NLQuery.from_text("titles before 1994", literals=[1994])
        result = session.submit(nlq)
        assert len(session.rounds) == 1
        assert session.rounds[0].result is result

    def test_refine_tsq_accumulates_tuples(self, session):
        nlq = NLQuery.from_text("titles before 1994", literals=[1994])
        session.submit(nlq)
        session.refine_tsq(extra_rows=[["Forrest Gump"]])
        second = session.rounds[-1]
        assert second.tsq is not None
        assert len(second.tsq.tuples) == 1
        session.refine_tsq(extra_rows=[["Movie 05"]])
        assert len(session.rounds[-1].tsq.tuples) == 2

    def test_refine_sorted_flag(self, session):
        session.submit(NLQuery.from_text("titles"))
        session.refine_tsq(sorted=True)
        assert session.rounds[-1].tsq.sorted

    def test_rephrase_keeps_tsq(self, session):
        session.submit(NLQuery.from_text("titles before 1994",
                                         literals=[1994]))
        session.refine_tsq(extra_rows=[["Forrest Gump"]])
        session.rephrase("movie names earlier than 1994",
                         literals=[1994])
        last = session.rounds[-1]
        assert last.nlq.text.startswith("movie names")
        assert last.tsq is not None and len(last.tsq.tuples) == 1

    def test_refine_before_submit_raises(self, session):
        with pytest.raises(RuntimeError):
            session.refine_tsq(extra_rows=[["x"]])


class TestInspection:
    def test_preview_capped_at_20_rows(self, session, movie_db):
        result = session.submit(NLQuery.from_text("all movie titles"))
        assert result.candidates
        preview = session.preview(result.ranked()[0])
        assert len(preview) <= PREVIEW_ROWS

    def test_candidate_sql(self, session):
        result = session.submit(NLQuery.from_text("all movie titles"))
        sql = session.candidate_sql(result.ranked()[0])
        assert sql.startswith("SELECT")

    def test_full_view(self, session):
        result = session.submit(NLQuery.from_text("all movie titles"))
        rows = session.full_view(result.ranked()[0])
        assert rows
