"""Tests for the autocomplete server."""

from repro.interaction import AutocompleteServer


class TestSuggest:
    def test_prefix_suggestions(self, movie_db):
        server = AutocompleteServer(movie_db)
        suggestions = server.suggest("Forr")
        assert suggestions
        assert suggestions[0].value == "Forrest Gump"
        assert suggestions[0].source == "movie.title"

    def test_limit(self, movie_db):
        server = AutocompleteServer(movie_db)
        assert len(server.suggest("Movie", limit=4)) <= 4

    def test_no_duplicate_values(self, movie_db):
        server = AutocompleteServer(movie_db)
        values = [s.value for s in server.suggest("Movie", limit=10)]
        assert len(values) == len(set(values))

    def test_resolve_exact(self, movie_db):
        server = AutocompleteServer(movie_db)
        resolved = server.resolve_exact("forrest gump")
        assert resolved is not None
        assert resolved.value == "Forrest Gump"

    def test_resolve_exact_missing(self, movie_db):
        server = AutocompleteServer(movie_db)
        assert server.resolve_exact("nothing like this") is None
