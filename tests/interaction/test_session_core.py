"""SessionCore: the transport-agnostic refinement state machine.

The contract under test (see ``repro.interaction.session``): one core
drives the Figure 1 loop for both the CLI and the daemon — explicit
states (``created → enumerating → awaiting-refinement →
done/cancelled``), cumulative per-session candidate/probe budgets, and
thread-safe cooperative cancellation via the engine's
:class:`CancelToken`.
"""

from __future__ import annotations

import pytest

from repro.core import Duoquest, EnumeratorConfig, TableSketchQuery
from repro.core.search import CancelToken
from repro.core.verifier import SharedProbeCache
from repro.guidance import LexicalGuidanceModel
from repro.interaction import (
    STATE_AWAITING_REFINEMENT,
    STATE_CANCELLED,
    STATE_CREATED,
    STATE_DONE,
    SessionBudgetExceeded,
    SessionCore,
)
from repro.nlq import NLQuery

from tests.conftest import build_movie_db

NLQ = NLQuery.from_text("titles before 1994", literals=[1994])
TSQ = TableSketchQuery.build(rows=[["Forrest Gump"]])


def make_core(**kwargs):
    db = build_movie_db()
    system = Duoquest(db, model=LexicalGuidanceModel(),
                      config=EnumeratorConfig(time_budget=10.0,
                                              max_candidates=24))
    return SessionCore(system, **kwargs)


def make_shared_cache_core(**kwargs):
    db = build_movie_db()
    cache = SharedProbeCache()
    system = Duoquest(db, model=LexicalGuidanceModel(),
                      config=EnumeratorConfig(time_budget=10.0,
                                              max_candidates=24),
                      probe_cache=cache)
    return SessionCore(system, **kwargs), cache


class TestStates:
    def test_lifecycle(self):
        core = make_core()
        assert core.state == STATE_CREATED
        assert core.last_result is None
        result = core.submit(NLQ, TSQ)
        assert core.state == STATE_AWAITING_REFINEMENT
        assert core.last_result is result
        assert len(core.rounds) == 1
        core.refine_tsq(extra_rows=[["Movie 05"]])
        assert core.state == STATE_AWAITING_REFINEMENT
        core.close()
        assert core.state == STATE_DONE

    def test_submit_refused_when_done(self):
        core = make_core()
        core.submit(NLQ, TSQ)
        core.close()
        with pytest.raises(RuntimeError, match="cannot submit"):
            core.submit(NLQ, TSQ)

    def test_cancel_idle_session(self):
        core = make_core()
        core.cancel()
        assert core.state == STATE_CANCELLED
        assert core.cancelled
        with pytest.raises(RuntimeError, match="cannot submit"):
            core.submit(NLQ, TSQ)

    def test_cancelled_sticks_through_close(self):
        core = make_core()
        core.cancel("gone")
        core.close()
        assert core.state == STATE_CANCELLED

    def test_cancel_is_idempotent(self):
        core = make_core()
        core.cancel("first")
        core.cancel("second")
        assert core.state == STATE_CANCELLED

    def test_refine_before_submit_raises(self):
        core = make_core()
        with pytest.raises(RuntimeError, match="no NLQ"):
            core.refine_tsq(extra_rows=[["x"]])
        with pytest.raises(RuntimeError, match="no NLQ"):
            core.rephrase("anything")


class TestCandidateBudget:
    def test_budget_caps_the_round_then_refuses(self):
        core = make_core(max_candidates=3)
        result = core.submit(NLQ, TSQ)
        assert len(result.candidates) == 3
        assert core.candidates_emitted == 3
        assert core.state == STATE_AWAITING_REFINEMENT
        with pytest.raises(SessionBudgetExceeded, match="candidate"):
            core.refine_tsq(extra_rows=[["Movie 05"]])

    def test_budget_spans_rounds(self):
        """The budget is cumulative: round 2 only gets the remainder."""
        full = make_core().submit(NLQ, TSQ)
        total = len(full.candidates)
        assert total >= 2
        core = make_core(max_candidates=total + 1)
        core.submit(NLQ, TSQ)
        second = core.refine_tsq(extra_rows=[["Movie 05"]])
        assert len(second.candidates) == 1
        assert core.candidates_emitted == total + 1

    def test_budgets_snapshot(self):
        core = make_core(max_candidates=5, max_probes=1000)
        core.submit(NLQ, TSQ)
        snapshot = core.budgets()
        assert snapshot["max_candidates"] == 5
        assert snapshot["candidates_emitted"] == 5
        assert snapshot["max_probes"] == 1000
        assert snapshot["probes_executed"] > 0


class TestProbeBudget:
    def test_between_round_enforcement(self):
        core = make_core(max_probes=1)
        core.submit(NLQ, TSQ)
        assert core.probes_executed >= 1
        with pytest.raises(SessionBudgetExceeded, match="probe"):
            core.refine_tsq(extra_rows=[["Movie 05"]])

    def test_mid_round_watcher_stops_enumeration(self):
        """With a shared probe cache the budget lands mid-enumeration:
        the token fires, but the session settles to refinement (a spent
        budget is not a user cancel)."""
        baseline, _ = make_shared_cache_core()
        spent = baseline.submit(NLQ, TSQ).telemetry.probe_misses
        assert spent > 2
        core, _ = make_shared_cache_core(max_probes=2)
        result = core.submit(NLQ, TSQ)
        telemetry = result.telemetry
        assert telemetry.cancelled
        assert "probe budget" in telemetry.cancel_reason
        assert telemetry.probe_misses < spent
        assert core.state == STATE_AWAITING_REFINEMENT
        with pytest.raises(SessionBudgetExceeded, match="probe"):
            core.refine_tsq(extra_rows=[["Movie 05"]])


class TestCancelToken:
    def test_first_reason_wins(self):
        token = CancelToken()
        assert not token.cancelled
        token.cancel("first")
        token.cancel("second")
        assert token.cancelled
        assert token.reason == "first"

    def test_watcher_fires_token(self):
        token = CancelToken()
        armed = []
        token.watch(lambda: "tripped" if armed else None)
        assert not token.cancelled
        armed.append(True)
        assert token.cancelled
        assert token.reason == "tripped"

    def test_pre_cancelled_token_surfaces_in_telemetry(self):
        """A token fired before the search starts stops the engine at
        its first checkpoint, visibly."""
        db = build_movie_db()
        system = Duoquest(db, model=LexicalGuidanceModel(),
                          config=EnumeratorConfig(time_budget=10.0,
                                                  max_candidates=24))
        token = CancelToken()
        token.cancel("stopped before takeoff")
        result = system.synthesize(NLQ, TSQ, cancel_token=token)
        assert result.candidates == []
        assert result.telemetry.cancelled
        assert result.telemetry.cancel_reason == "stopped before takeoff"
