"""Tests for the simulated-user trial machinery."""

import pytest

from repro.baselines.squid import SquidPBE
from repro.core import Duoquest, EnumeratorConfig
from repro.datasets import build_fact_bank, pbe_study_tasks
from repro.guidance import CalibratedOracleModel
from repro.interaction import (
    TRIAL_TIME_LIMIT,
    UserProfile,
    UserSimulator,
    make_cohort,
)


@pytest.fixture(scope="module")
def simulator(mas_db):
    def factory(task, variant):
        return Duoquest(mas_db, model=CalibratedOracleModel(seed=variant),
                        config=EnumeratorConfig())

    return UserSimulator(mas_db, duoquest_factory=factory,
                         pbe=SquidPBE(mas_db), seed=0,
                         system_budget=10.0, max_candidates=30)


@pytest.fixture(scope="module")
def pbe_tasks(mas_db):
    return {t.task_id: t for t in pbe_study_tasks(mas_db)}


class TestCohort:
    def test_size_and_novices(self):
        cohort = make_cohort(16, 6, seed=0)
        assert len(cohort) == 16
        assert sum(1 for u in cohort if u.is_novice) == 6

    def test_deterministic(self):
        assert make_cohort(8, 3, seed=1) == make_cohort(8, 3, seed=1)


class TestTrials:
    def test_duoquest_trial_record(self, simulator, mas_db, pbe_tasks):
        task = pbe_tasks["D2"]
        facts = build_fact_bank(task, mas_db, size=10, seed=0)
        user = UserProfile(user_id=0, sql_expertise=0.9)
        record = simulator.run_ranked_list_trial(user, task, facts,
                                                 use_tsq=True)
        assert record.system == "Duoquest"
        assert 0 < record.duration <= TRIAL_TIME_LIMIT
        assert record.num_examples >= 1

    def test_nli_trial_has_no_examples(self, simulator, mas_db,
                                       pbe_tasks):
        task = pbe_tasks["D2"]
        facts = build_fact_bank(task, mas_db, size=10, seed=0)
        user = UserProfile(user_id=1, sql_expertise=0.8)
        record = simulator.run_ranked_list_trial(user, task, facts,
                                                 use_tsq=False)
        assert record.system == "NLI"
        assert record.num_examples == 0

    def test_pbe_trial(self, simulator, mas_db, pbe_tasks):
        task = pbe_tasks["D2"]
        facts = build_fact_bank(task, mas_db, size=10, seed=0)
        user = UserProfile(user_id=2, sql_expertise=0.3)
        record = simulator.run_pbe_trial(user, task, facts)
        assert record.system == "PBE"
        assert record.duration > 0

    def test_trials_deterministic(self, simulator, mas_db, pbe_tasks):
        task = pbe_tasks["C1"]
        facts = build_fact_bank(task, mas_db, size=10, seed=0)
        user = UserProfile(user_id=3, sql_expertise=0.7)
        a = simulator.run_ranked_list_trial(user, task, facts, True)
        b = simulator.run_ranked_list_trial(user, task, facts, True)
        assert a == b

    def test_duration_never_exceeds_limit(self, simulator, mas_db,
                                          pbe_tasks):
        for task in pbe_tasks.values():
            facts = build_fact_bank(task, mas_db, size=10, seed=0)
            user = UserProfile(user_id=4, sql_expertise=0.1)
            record = simulator.run_ranked_list_trial(user, task, facts,
                                                     use_tsq=True)
            assert record.duration <= TRIAL_TIME_LIMIT
