"""Shared fixtures: a small movie database, the MAS database, and a mini
synthetic Spider corpus. Session-scoped where construction is expensive."""

from __future__ import annotations

import random

import pytest

from repro.db import Database, make_schema
from repro.sqlir.types import ColumnType as T


def build_movie_schema():
    return make_schema(
        "movies",
        tables={
            "actor": [("aid", T.NUMBER), ("name", T.TEXT),
                      ("gender", T.TEXT), ("birth_year", T.NUMBER)],
            "movie": [("mid", T.NUMBER), ("title", T.TEXT),
                      ("year", T.NUMBER), ("revenue", T.NUMBER)],
            "starring": [("aid", T.NUMBER), ("mid", T.NUMBER)],
        },
        foreign_keys=[("starring", "aid", "actor", "aid"),
                      ("starring", "mid", "movie", "mid")],
        primary_keys={"actor": "aid", "movie": "mid", "starring": None},
    )


def build_movie_db() -> Database:
    db = Database.create(build_movie_schema())
    rng = random.Random(11)
    actors = [(i, f"Actor {i:02d}", rng.choice(["male", "female"]),
               rng.randint(1930, 2000)) for i in range(1, 31)]
    # A few well-known names used throughout the tests.
    actors[0] = (1, "Tom Hanks", "male", 1956)
    actors[1] = (2, "Sandra Bullock", "female", 1964)
    movies = [(i, f"Movie {i:02d}", rng.randint(1970, 2020),
               rng.randint(1, 900)) for i in range(1, 41)]
    movies[0] = (1, "Forrest Gump", 1994, 678)
    movies[1] = (2, "Gravity", 2013, 723)
    db.insert_rows("actor", actors)
    db.insert_rows("movie", movies)
    pairs = {(1, 1), (2, 2)}
    while len(pairs) < 90:
        pairs.add((rng.randint(1, 30), rng.randint(1, 40)))
    db.insert_rows("starring", sorted(pairs))
    return db


@pytest.fixture(scope="session")
def movie_db() -> Database:
    return build_movie_db()


@pytest.fixture(scope="session")
def movie_schema(movie_db):
    return movie_db.schema


@pytest.fixture(scope="session")
def mas_db():
    from repro.datasets import build_mas_database

    return build_mas_database(seed=0)


@pytest.fixture(scope="session")
def mini_corpus():
    from repro.datasets import SpiderCorpusConfig, generate_corpus

    return generate_corpus("dev", SpiderCorpusConfig(
        num_databases=4, tasks_per_database=5, seed=1))
