"""Wire-protocol tests: handshake, version mismatch, bad verbs.

The daemon must answer every failure on the wire — a malformed line, an
unknown verb, an unknown session — without taking the connection (or
itself) down, and must reject a version-incompatible peer at the
handshake, mirroring the guidance-server idiom.
"""

from __future__ import annotations

import json
import socket

import pytest

from repro.serve import protocol
from repro.serve.client import SynthesisClient
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    ProtocolMismatch,
    parse_address,
    tsq_payload,
)

from tests.conftest import build_movie_db


@pytest.fixture
def handle(daemon_factory):
    return daemon_factory({"movies": build_movie_db()})


def raw_exchange(handle, lines):
    """Send raw NDJSON lines; returns one decoded reply per line."""
    replies = []
    with socket.create_connection((handle.host, handle.port),
                                  timeout=30.0) as sock:
        stream = sock.makefile("rwb")
        for line in lines:
            stream.write((json.dumps(line) + "\n").encode("utf-8"))
            stream.flush()
            reply = stream.readline()
            if not reply:
                replies.append(None)
                break
            replies.append(json.loads(reply))
    return replies


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:8765") == ("127.0.0.1", 8765)

    @pytest.mark.parametrize("bad", ["8765", ":8765", "host:", "host:x",
                                     "host:70000"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_address(bad)


class TestTsqPayload:
    def test_only_specified_fields_travel(self):
        assert tsq_payload(rows=[["a", 1]]) == {"rows": [["a", 1]]}
        full = tsq_payload(rows=[["a"]], types=["text"], sorted=True,
                           limit=3, negative_rows=[["b"]], tolerance=1)
        assert full == {"rows": [["a"]], "types": ["text"],
                        "sorted": True, "limit": 3,
                        "negative_rows": [["b"]], "tolerance": 1}


class TestHandshake:
    def test_hello_reply_carries_version_and_epoch(self, handle):
        (reply,) = raw_exchange(handle, [protocol.hello_request()])
        assert reply["v"] == PROTOCOL_VERSION
        assert reply["server"] == protocol.SERVER_NAME
        assert reply["epoch"] == 0

    def test_version_mismatch_is_rejected(self, handle):
        (reply,) = raw_exchange(
            handle, [{"v": 99, "id": 0, "hello": True}])
        assert "version mismatch" in reply["error"]
        with pytest.raises(ProtocolMismatch):
            protocol.check_hello_reply(reply)

    def test_first_line_must_be_hello(self, handle):
        (reply,) = raw_exchange(
            handle, [{"v": PROTOCOL_VERSION, "id": 0, "verb": "stats"}])
        assert "hello" in reply["error"]

    def test_check_hello_validates_version(self):
        with pytest.raises(ProtocolMismatch):
            protocol.check_hello({"hello": True, "v": 2})
        with pytest.raises(ProtocolError):
            protocol.check_hello({"v": PROTOCOL_VERSION})


class TestBadRequests:
    def test_unknown_verb_answered_and_connection_survives(self, handle):
        replies = raw_exchange(handle, [
            protocol.hello_request(),
            {"v": PROTOCOL_VERSION, "id": 1, "verb": "frobnicate"},
            {"v": PROTOCOL_VERSION, "id": 2, "verb": "stats"},
        ])
        assert "unknown verb" in replies[1]["error"]
        assert replies[1]["id"] == 1
        assert replies[2]["stats"]["sessions"]["created"] == 0

    def test_malformed_json_line_is_answered(self, handle):
        with socket.create_connection((handle.host, handle.port),
                                      timeout=30.0) as sock:
            stream = sock.makefile("rwb")
            stream.write(json.dumps(protocol.hello_request())
                         .encode("utf-8") + b"\n")
            stream.flush()
            assert json.loads(stream.readline())["v"] == PROTOCOL_VERSION
            stream.write(b"{not json\n")
            stream.flush()
            reply = json.loads(stream.readline())
        assert "malformed" in reply["error"]

    def test_unknown_session_is_an_error(self, handle, client_for):
        client = client_for(handle)
        from repro.serve.client import ServeRequestError
        with pytest.raises(ServeRequestError, match="unknown session"):
            client.status("nope")

    def test_unknown_database_is_an_error(self, handle, client_for):
        client = client_for(handle)
        from repro.serve.client import ServeRequestError
        with pytest.raises(ServeRequestError, match="unknown database"):
            client.create("nope", "titles")

    def test_missing_required_field_is_an_error(self, handle):
        replies = raw_exchange(handle, [
            protocol.hello_request(),
            {"v": PROTOCOL_VERSION, "id": 1, "verb": "create"},
        ])
        assert "missing required field" in replies[1]["error"]


class TestClientHandshake:
    def test_client_connects_and_reads_epoch(self, handle):
        with SynthesisClient.connect(handle.host, handle.port) as client:
            assert client.server_epoch == 0
