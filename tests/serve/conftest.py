"""Fixtures for the synthesis-daemon tests.

Every daemon here serves small in-memory movie databases (fast, fully
deterministic with :class:`LexicalGuidanceModel`), spawned in-process on
a background thread via :func:`repro.serve.spawn_daemon`.
"""

from __future__ import annotations

import pytest

from repro.core import Duoquest, TableSketchQuery
from repro.core.enumerator import EnumeratorConfig
from repro.guidance import LexicalGuidanceModel
from repro.nlq import NLQuery
from repro.serve import SynthesisClient, SynthesisDaemon, spawn_daemon
from repro.sqlir import to_sql

from tests.conftest import build_movie_db

NLQ = "titles before 1994"
LITERALS = (1994,)
TSQ_ROWS = (("Forrest Gump",),)


def serve_config(**overrides) -> EnumeratorConfig:
    settings = dict(time_budget=10.0, max_candidates=24, workers=2,
                    verify_backend="threads", guidance_batch=True)
    settings.update(overrides)
    return EnumeratorConfig(**settings)


def reference_stream(db, nlq_text=NLQ, literals=LITERALS,
                     tsq_rows=TSQ_ROWS, config=None, model=None):
    """The candidate stream an equivalent direct (CLI-style) run emits."""
    system = Duoquest(db, model=model or LexicalGuidanceModel(),
                      config=config or serve_config())
    tsq = TableSketchQuery.build(rows=tsq_rows) if tsq_rows else None
    try:
        result = system.synthesize(
            NLQuery.from_text(nlq_text, literals=literals), tsq)
    finally:
        system.close()
    return [(c.index, c.confidence, to_sql(c.query))
            for c in result.candidates]


def wire_stream(response):
    """A daemon round response's candidates, reference-comparable."""
    return [(c["index"], c["confidence"], c["sql"])
            for c in response["candidates"]]


@pytest.fixture
def two_dbs():
    return {"movies_a": build_movie_db(), "movies_b": build_movie_db()}


@pytest.fixture
def daemon_factory():
    handles = []

    def spawn(databases, **kwargs):
        kwargs.setdefault("config", serve_config())
        daemon = SynthesisDaemon(databases, **kwargs)
        handle = spawn_daemon(daemon)
        handles.append(handle)
        return handle

    yield spawn
    for handle in handles:
        if handle.thread.is_alive():
            handle.stop()


@pytest.fixture
def client_for():
    clients = []

    def connect(handle):
        client = SynthesisClient.connect(handle.host, handle.port)
        clients.append(client)
        return client

    yield connect
    for client in clients:
        try:
            client.close()
        except OSError:
            pass
