"""Leak regressions: every amortisation layer must be memory-bounded.

The daemon amortises across sessions by *keeping* things — probe
caches, warm pools, session records — which is exactly how long-lived
services leak. This suite soaks the daemon (many sessions × several
databases) and asserts the bounds hold: per-cache entry counts stay
under ``--probe-cache-entries``, the registry retires LRU databases
past ``max_cached_databases`` (persisting first, so warm starts
survive eviction), and the session table retires terminal sessions.
A tracemalloc check pins the registry lifecycle down to "no growth".
"""

from __future__ import annotations

import gc
import os
import tracemalloc

import pytest

from repro.serve.client import ServeRequestError
from repro.serve.context import ProbeCacheRegistry

from tests.conftest import build_movie_db
from tests.serve.conftest import (
    NLQ,
    LITERALS,
    TSQ_ROWS,
    reference_stream,
    serve_config,
    wire_stream,
)

ENTRY_BOUND = 16          # per-cache probe/minmax entries
DATABASE_BOUND = 2        # live per-database caches in the registry
TERMINAL_BOUND = 2        # finished/cancelled sessions kept addressable

#: nightly deep profile: more cycles through the same bounds, so slow
#: leaks (growing per cycle, invisible over two) have room to surface
SOAK_CYCLES = 6 if os.environ.get("REPRO_SOAK_DEEP") else 2


def build_variant_db(tag: int):
    """A movie database whose contents (hence content hash) depend on
    ``tag`` — the soak needs genuinely distinct databases."""
    db = build_movie_db()
    db.insert_rows("movie", [(900 + tag, f"Variant {tag:02d}",
                              1980 + tag, 50)])
    return db


class TestDaemonSoak:
    def test_soak_holds_every_bound_and_still_warm_starts(
            self, daemon_factory, client_for, tmp_path):
        """Two cycles over three databases through one bounded daemon:
        entry counts stay under the bound, the registry stays under its
        database bound, terminal sessions retire — and the streams stay
        bit-identical to unbounded direct runs while eviction-flushed
        entries come back as warm-start hits."""
        databases = {f"movies_{tag}": build_variant_db(tag)
                     for tag in range(3)}
        expected = {name: reference_stream(build_variant_db(tag))
                    for tag, name in enumerate(sorted(databases))}
        handle = daemon_factory(
            databases,
            config=serve_config(probe_cache_entries=ENTRY_BOUND),
            cache_dir=str(tmp_path),
            max_terminal_sessions=TERMINAL_BOUND,
            max_cached_databases=DATABASE_BOUND)
        client = client_for(handle)

        session_ids = []
        for _cycle in range(SOAK_CYCLES):
            for name in sorted(databases):
                response = client.create(
                    name, NLQ, literals=list(LITERALS),
                    tsq_rows=[list(r) for r in TSQ_ROWS])
                # Eviction may cost re-probes, never answers: every
                # bounded round emits the unbounded reference stream.
                assert wire_stream(response) == expected[name]
                session_ids.append(response["session"])
                client.cancel(response["session"])

        stats = client.stats()

        # (a) every live cache respects the entry bound
        sizes = stats["probe_cache_sizes"]
        assert sizes, "at least one cache should be live"
        assert all(size <= ENTRY_BOUND for size in sizes.values()), sizes
        assert len(sizes) <= DATABASE_BOUND

        probe_cache = stats["probe_cache"]
        assert probe_cache["probe_cache_entries"] <= \
            ENTRY_BOUND * DATABASE_BOUND
        assert probe_cache["probe_cache_bytes"] > 0

        # (b) the bound actually engaged, and eviction persisted
        assert probe_cache["probe_cache_evictions"] > 0
        assert probe_cache["evicted_flushed"] > 0
        assert probe_cache["caches_retired"] > 0  # database LRU engaged

        # (c) eviction did not cost the warm start: cycle 2 re-seeded
        # retired caches from disk and hit the seeded entries
        assert probe_cache["warm_entries_loaded"] > 0
        assert probe_cache["warm_start_probe_hits"] > 0

        # (d) the session table is bounded too
        sessions = stats["sessions"]
        assert sessions["created"] == len(session_ids) == SOAK_CYCLES * 3
        assert sessions["open"] <= TERMINAL_BOUND
        assert sessions["retired"] >= len(session_ids) - TERMINAL_BOUND

        # (e) and the store files exist for the next daemon's warm start
        assert list(tmp_path.glob("probes-*.sqlite"))


class TestTerminalSessionRetirement:
    def test_retired_session_status_is_a_clean_error(
            self, daemon_factory, client_for):
        handle = daemon_factory({"movies": build_movie_db()},
                                max_terminal_sessions=1)
        client = client_for(handle)
        ids = []
        for _ in range(3):
            response = client.create(
                "movies", NLQ, literals=list(LITERALS),
                tsq_rows=[list(r) for r in TSQ_ROWS])
            ids.append(response["session"])
            client.cancel(response["session"])

        # the newest terminal session stays addressable ...
        assert client.status(ids[-1])["state"] == "cancelled"
        # ... retired ones answer with a protocol error naming the
        # final state, not a KeyError-shaped crash
        with pytest.raises(ServeRequestError, match="retired") as excinfo:
            client.status(ids[0])
        assert "cancelled" in str(excinfo.value)
        # unknown ids keep their distinct (non-"retired") error
        with pytest.raises(ServeRequestError) as excinfo:
            client.status("never-created")
        assert "retired" not in str(excinfo.value)

        sessions = client.stats()["sessions"]
        assert sessions["open"] <= 1
        assert sessions["retired"] >= 2
        assert sessions["max_terminal"] == 1

    def test_refine_on_a_retired_session_is_a_clean_error(
            self, daemon_factory, client_for):
        handle = daemon_factory({"movies": build_movie_db()},
                                max_terminal_sessions=1)
        client = client_for(handle)
        first = client.create("movies", NLQ, literals=list(LITERALS),
                              tsq_rows=[list(r) for r in TSQ_ROWS])
        client.cancel(first["session"])
        second = client.create("movies", NLQ, literals=list(LITERALS),
                               tsq_rows=[list(r) for r in TSQ_ROWS])
        client.cancel(second["session"])
        with pytest.raises(ServeRequestError, match="retired"):
            client.refine(first["session"], extra_rows=[["Movie 05"]])


class TestRegistryLifecycle:
    def test_acquire_release_cycle_does_not_grow(self):
        """The registry must not be what keeps dead databases (or their
        caches) alive: churn acquire/release with databases going out
        of scope and assert the registry- and cache-owned allocations
        do not grow once warm."""
        registry = ProbeCacheRegistry(max_entries=32,
                                      max_databases=DATABASE_BOUND)

        def churn(rounds: int) -> None:
            for i in range(rounds):
                db = build_movie_db()
                cache = registry.acquire(db)
                for j in range(64):
                    cache.record_probe(f"probe-{i}-{j}", True)
                registry.release(db)
                del db, cache
            gc.collect()

        churn(5)  # reach steady state before measuring
        tracemalloc.start()
        try:
            before = tracemalloc.take_snapshot()
            churn(20)
            after = tracemalloc.take_snapshot()
        finally:
            tracemalloc.stop()

        filters = [tracemalloc.Filter(True, "*/repro/serve/context.py"),
                   tracemalloc.Filter(True, "*/repro/core/verifier.py")]
        growth = sum(stat.size_diff for stat in
                     after.filter_traces(filters).compare_to(
                         before.filter_traces(filters), "filename"))
        # 20 leaked caches of 64 probes would be hundreds of KiB; the
        # healthy steady state is allocator noise.
        assert growth < 64 * 1024, f"registry grew by {growth} bytes"
        assert len(registry._caches) <= DATABASE_BOUND
        assert registry.caches_retired >= 20

    def test_weakref_retirement_persists_to_the_store(self, tmp_path):
        """A database that simply goes out of scope still gets its
        probe answers saved (save-on-retire), because the registry
        captured the store identity while it was alive."""
        registry = ProbeCacheRegistry(cache_dir=str(tmp_path))
        db = build_movie_db()
        cache = registry.cache_for(db)
        cache.record_probe("late-probe", True)
        del db, cache
        gc.collect()
        registry._reap()
        assert registry.caches_retired == 1
        assert not registry._caches

        fresh = ProbeCacheRegistry(cache_dir=str(tmp_path))
        warmed = fresh.cache_for(build_movie_db())
        assert warmed.peek("late-probe") is True
        assert fresh.warm_entries_loaded > 0

    def test_id_reuse_collision_persists_the_displaced_cache(
            self, tmp_path):
        """Regression: ``cache_for`` used to silently drop the previous
        cache when ``id(db)`` was reused by a different database. The
        displaced cache must be persisted before being replaced."""
        registry = ProbeCacheRegistry(cache_dir=str(tmp_path))
        db1 = build_movie_db()
        db2 = build_movie_db()  # same contents -> same store file
        cache1 = registry.cache_for(db1)
        cache1.record_probe("displaced-probe", True)

        # Force the collision: rebind db1's entry under db2's key, as
        # if db1 had died and db2's allocation reused its id before
        # any registry call could reap the weakref.
        with registry._lock:
            entry = registry._caches.pop(id(db1))
            registry._caches[id(db2)] = entry
        retired_before = registry.caches_retired

        cache2 = registry.cache_for(db2)
        assert cache2 is not cache1
        assert registry.caches_retired == retired_before + 1

        # the displaced cache reached the store, not the void
        fresh = ProbeCacheRegistry(cache_dir=str(tmp_path))
        warmed = fresh.cache_for(build_movie_db())
        assert warmed.peek("displaced-probe") is True

    def test_database_lru_bound_never_evicts_a_leased_cache(self):
        registry = ProbeCacheRegistry(max_databases=1)
        db1, db2 = build_movie_db(), build_movie_db()
        cache1 = registry.acquire(db1)
        cache2 = registry.acquire(db2)  # over bound, but db1 is leased
        assert len(registry._caches) == 2  # bound yields to leases
        registry.release(db1)
        registry.release(db2)  # now the LRU (db1) can go
        assert len(registry._caches) == 1
        assert registry.cache_for(db2) is cache2
        assert registry.cache_for(db1) is not cache1  # was retired

    def test_close_is_idempotent_and_drops_everything(self, tmp_path):
        registry = ProbeCacheRegistry(cache_dir=str(tmp_path))
        db = build_movie_db()
        registry.cache_for(db).record_probe("closing-probe", False)
        assert registry.close() == 1  # one store file written
        assert not registry._caches
        assert registry.close() == 0  # idempotent


class TestSharedPoolManagerAtexit:
    def test_recreations_register_exactly_one_atexit_hook(
            self, monkeypatch):
        """Regression: every recreation of the shared pool manager used
        to stack another atexit callback (a closure keeping the dead
        manager alive for the life of the process)."""
        import repro.serve.context as context_module

        registered = []
        monkeypatch.setattr(context_module.atexit, "register",
                            lambda fn, *a, **k: registered.append(fn))
        monkeypatch.setattr(context_module, "_SHARED_POOL_MANAGER", None)
        monkeypatch.setattr(context_module, "_ATEXIT_REGISTERED", False)

        managers = []
        for _ in range(5):
            manager = context_module.shared_pool_manager()
            managers.append(manager)
            manager.close()  # force a recreation on the next call

        assert len(registered) == 1
        assert registered[0] is context_module._close_shared_pool_manager
        assert len(set(map(id, managers))) == 5  # really recreated

        # the one hook closes whatever manager is current at exit
        last = context_module.shared_pool_manager()
        context_module._close_shared_pool_manager()
        assert last.closed
