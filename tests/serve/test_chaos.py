"""Chaos with receipts: seeded fault plans against a live daemon.

The contract under any seeded :mod:`repro.faults` plan:

* the daemon never deadlocks or dies — every verb keeps answering and
  shutdown stays clean;
* every session either completes with a candidate stream **bit-for-bit
  equal** to the fault-free golden run, or fails *visibly* (a clean
  error response, terminal ``failed`` state with a reason, and the
  ``sessions_failed`` counter) without touching its siblings;
* every injected fault is receipted: ``injected == absorbed +
  surfaced`` reconciles exactly per fault point;
* nothing a fault touched is memoised or persisted — a fresh session
  after the plan is removed replays the golden stream, including from
  the on-disk probe-cache store.

``REPRO_CHAOS_DEEP=1`` (the nightly job) widens the plan matrix.
"""

from __future__ import annotations

import os
import socket

import pytest

from repro import faults
from repro.serve import ServeRequestError, SynthesisClient

from tests.serve.conftest import (
    LITERALS,
    NLQ,
    TSQ_ROWS,
    reference_stream,
    serve_config,
    wire_stream,
)

# Bounded, seeded plans: `times=` keeps every soak deterministic in
# *total* injections even though thread interleaving varies which call
# draws each one (the golden-stream contract makes that irrelevant).
CHAOS_PLANS = [
    # Fully absorbed: two lock hits, cured by execute's bounded retry.
    "seed=7;db.execute:locked:times=2",
    # Surfacing: a burst of transient errors exhausts one call's retry
    # budget; the lease degrades (or the session fails) visibly.
    "seed=11;db.execute:error:times=3",
    # Injected probe timeout plus cachestore contention on save.
    "seed=3;db.execute:timeout:times=1;cachestore.save:busy:times=1",
]
if os.environ.get("REPRO_CHAOS_DEEP"):
    CHAOS_PLANS += [
        "seed=13;db.execute:locked:rate=0.2,times=8",
        "seed=17;db.execute:error:times=6;cachestore.load:busy:times=1",
        "seed=23;db.execute:locked:times=4;"
        "cachestore.save:torn:times=1",
        "seed=29;db.execute:timeout:times=3;db.execute:locked:times=3",
    ]


@pytest.fixture(autouse=True)
def clean_injector():
    faults.uninstall()
    yield
    faults.uninstall()


def assert_reconciled(counters):
    """No silent faults: every injection was absorbed or surfaced."""
    for point in set(counters["injected"]) | set(counters["absorbed"]) \
            | set(counters["surfaced"]):
        injected = counters["injected"].get(point, 0)
        absorbed = counters["absorbed"].get(point, 0)
        surfaced = counters["surfaced"].get(point, 0)
        assert injected == absorbed + surfaced, (
            f"{point} lost receipts: injected={injected}, "
            f"absorbed={absorbed}, surfaced={surfaced}")


class TestChaosSoak:
    @pytest.mark.parametrize("plan", CHAOS_PLANS)
    def test_soak_survives_and_reconciles(self, plan, two_dbs,
                                          daemon_factory, client_for,
                                          tmp_path):
        # Golden streams BEFORE the daemon exists: constructing it
        # installs the global injector in this (in-process) test.
        golden = {name: reference_stream(db)
                  for name, db in two_dbs.items()}
        handle = daemon_factory(
            two_dbs, config=serve_config(fault_plan=plan),
            cache_dir=str(tmp_path))
        client = client_for(handle)
        completed, failed = 0, 0
        for index, name in enumerate(
                ["movies_a", "movies_b", "movies_a"]):
            session = f"chaos-{index}"
            try:
                response = client.create(name, NLQ, literals=LITERALS,
                                         tsq_rows=TSQ_ROWS,
                                         session=session)
            except ServeRequestError:
                # Visible containment: the session settled to its
                # terminal failed state with a reason, and the daemon
                # keeps serving.
                failed += 1
                status = client.status(session)
                assert status["state"] == "failed"
                assert status["reason"]
            else:
                completed += 1
                assert wire_stream(response) == golden[name], \
                    f"completed stream diverged under plan {plan!r}"
        assert faults.injected_total() >= 1, \
            f"plan {plan!r} never fired — the soak tested nothing"
        assert_reconciled(faults.counters())

        stats = client.stats()
        assert stats["faults"]["plan"] == plan
        assert stats["faults"]["total_injected"] == \
            faults.injected_total()
        assert stats["sessions"]["failed"] == failed
        assert stats["sessions"]["created"] == completed + failed
        assert_reconciled(stats["faults"]["counters"])

        # The daemon survived: a clean shutdown drains and uninstalls
        # the plan it installed.
        handle.stop()
        assert faults.ACTIVE is None

        # Nothing poisoned or persisted: a fault-free daemon over the
        # same databases (and the same on-disk store) replays the
        # golden stream bit for bit.
        fresh = daemon_factory(two_dbs, config=serve_config(),
                               cache_dir=str(tmp_path))
        check = client_for(fresh)
        replay = check.create("movies_a", NLQ, literals=LITERALS,
                              tsq_rows=TSQ_ROWS)
        assert wire_stream(replay) == golden["movies_a"]

    def test_failed_session_leaves_siblings_unharmed(self, two_dbs,
                                                     daemon_factory,
                                                     client_for,
                                                     monkeypatch):
        """An unbounded fault storm fails sessions cleanly; removing
        the plan mid-flight (chaos over) leaves the daemon healthy."""
        golden = reference_stream(two_dbs["movies_a"])
        handle = daemon_factory(
            two_dbs, config=serve_config(fault_plan="db.execute:error"))
        client = client_for(handle)
        with pytest.raises(ServeRequestError):
            client.create("movies_a", NLQ, literals=LITERALS,
                          tsq_rows=TSQ_ROWS, session="doomed")
        status = client.status("doomed")
        assert status["state"] == "failed"
        assert "injected" in status["reason"]
        stats = client.stats()
        assert stats["sessions"]["failed"] == 1
        assert stats["sessions"]["by_state"].get("failed", 0) == 1
        # Chaos ends: disarm the plan (each new session's verifier
        # would otherwise idempotently re-arm it from the daemon's
        # config — stub that seam too). The sibling created afterwards
        # is untouched by the earlier failure.
        monkeypatch.setattr("repro.core.verifier._ensure_faults_installed",
                            lambda spec: False)
        faults.uninstall()
        sibling = client.create("movies_a", NLQ, literals=LITERALS,
                                tsq_rows=TSQ_ROWS, session="sibling")
        assert wire_stream(sibling) == golden
        assert client.status("sibling")["state"] != "failed"

    def test_connection_vanish_is_counted_and_contained(self, two_dbs,
                                                        daemon_factory,
                                                        client_for):
        handle = daemon_factory(two_dbs, config=serve_config(
            fault_plan="daemon.connection:vanish:times=1"))
        client = client_for(handle)
        with pytest.raises((ConnectionError, OSError)):
            client.stats()
        # The drop was this connection's problem only.
        survivor = client_for(handle)
        stats = survivor.stats()
        assert stats["faults"]["connections_dropped"] == 1
        counters = stats["faults"]["counters"]
        assert counters["injected"].get("daemon.connection") == 1
        assert counters["surfaced"].get("daemon.connection") == 1
        assert_reconciled(counters)


class TestOversizedLines:
    def send_raw_line(self, handle, line: bytes) -> bytes:
        sock = socket.create_connection((handle.host, handle.port),
                                        timeout=30.0)
        try:
            stream = sock.makefile("rwb")
            stream.write(b'{"v": 1, "id": 0, "hello": true}\n')
            stream.flush()
            assert stream.readline()  # hello reply
            stream.write(line)
            stream.flush()
            return stream.readline()
        finally:
            sock.close()

    def test_multi_megabyte_line_gets_a_clean_error(self, two_dbs,
                                                    daemon_factory,
                                                    client_for):
        handle = daemon_factory(two_dbs)
        oversized = b'{"verb": "stats", "pad": "' \
            + b"x" * (3 * 1024 * 1024) + b'"}\n'
        reply = self.send_raw_line(handle, oversized)
        assert b"error" in reply and b"exceeds" in reply
        # The daemon survived and the next connection works.
        client = client_for(handle)
        stats = client.stats()
        assert stats["faults"]["oversized_lines"] == 1
        assert stats["faults"]["protocol_errors"] >= 1

    def test_oversized_hello_is_rejected_cleanly(self, two_dbs,
                                                 daemon_factory,
                                                 client_for):
        handle = daemon_factory(two_dbs)
        sock = socket.create_connection((handle.host, handle.port),
                                        timeout=30.0)
        try:
            stream = sock.makefile("rwb")
            stream.write(b"h" * (2 * 1024 * 1024) + b"\n")
            stream.flush()
            reply = stream.readline()
            assert b"error" in reply and b"exceeds" in reply
        finally:
            sock.close()
        client = client_for(handle)
        assert client.stats()["faults"]["oversized_lines"] == 1
