"""Daemon behaviour: bit-identical streams, sharing, cancel, shutdown.

The service contract under test (see ``repro.serve.daemon``): serving a
session through the daemon — warm pools, shared probe caches, shared
batching guidance, concurrency — yields exactly the candidate stream an
equivalent direct run emits; the sharing is visible only in ``stats``.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.enumerator import EnumeratorConfig
from repro.guidance import LexicalGuidanceModel
from repro.serve import SynthesisClient, SynthesisDaemon
from repro.serve.client import ServeRequestError

from tests.conftest import build_movie_db
from tests.serve.conftest import (
    NLQ,
    LITERALS,
    TSQ_ROWS,
    reference_stream,
    serve_config,
    wire_stream,
)


class TestGoldenEquivalence:
    def test_daemon_round_matches_direct_run(self, daemon_factory,
                                             client_for):
        """A single daemon session's candidate stream is bit-for-bit
        the stream the equivalent CLI-style direct run emits."""
        db = build_movie_db()
        handle = daemon_factory({"movies": db})
        client = client_for(handle)
        response = client.create("movies", NLQ, literals=list(LITERALS),
                                 tsq_rows=[list(r) for r in TSQ_ROWS])
        expected = reference_stream(build_movie_db())
        assert expected, "reference run must emit candidates"
        assert wire_stream(response) == expected

    def test_refinement_round_matches_direct_session(self, daemon_factory,
                                                     client_for):
        """Round 2 after a TSQ refinement matches a direct
        DuoquestSession performing the same refinement."""
        from repro.core import Duoquest
        from repro.interaction import DuoquestSession
        from repro.nlq import NLQuery
        from repro.sqlir import to_sql

        handle = daemon_factory({"movies": build_movie_db()})
        client = client_for(handle)
        round1 = client.create("movies", NLQ, literals=list(LITERALS),
                               tsq_rows=[list(r) for r in TSQ_ROWS])
        round2 = client.refine(round1["session"],
                               extra_rows=[["Movie 05"]])

        direct_db = build_movie_db()
        direct = DuoquestSession.open(
            direct_db, Duoquest(direct_db, model=LexicalGuidanceModel(),
                                config=serve_config()))
        from repro.core import TableSketchQuery
        direct.submit(NLQuery.from_text(NLQ, literals=list(LITERALS)),
                      TableSketchQuery.build(
                          rows=[list(r) for r in TSQ_ROWS]))
        result = direct.refine_tsq(extra_rows=[["Movie 05"]])
        expected = [(c.index, c.confidence, to_sql(c.query))
                    for c in result.candidates]
        assert wire_stream(round2) == expected


class TestConcurrentSessions:
    def test_concurrent_sessions_bit_identical_and_shared(
            self, daemon_factory, two_dbs):
        """Four concurrent sessions across two databases each emit the
        stream a sequential direct run emits — and the later session on
        each database hits the earlier one's probes (cross-session
        reuse) and warm pool."""
        handle = daemon_factory(two_dbs)
        streams = {}
        errors = []

        def run_session(slot, database):
            try:
                with SynthesisClient.connect(handle.host,
                                             handle.port) as client:
                    response = client.create(
                        database, NLQ, literals=list(LITERALS),
                        tsq_rows=[list(r) for r in TSQ_ROWS])
                    streams[slot] = (database, wire_stream(response))
            except BaseException as exc:  # surface in the main thread
                errors.append(exc)

        threads = [threading.Thread(target=run_session,
                                    args=(i, name))
                   for i, name in enumerate(
                       ["movies_a", "movies_b", "movies_a", "movies_b"])]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        assert not errors, errors
        assert len(streams) == 4

        expected = reference_stream(build_movie_db())
        assert expected
        for slot, (database, stream) in streams.items():
            assert stream == expected, \
                f"session {slot} on {database} diverged"

        stats = handle.daemon.stats()
        assert stats["sessions"]["created"] == 4
        # The second session on each database re-ran the same probes
        # against the shared per-database cache: its first round's
        # cross-generation hits are cross-session by construction.
        assert stats["cross_session_probe_hits"] > 0
        # ... and leased each database's already-warm thread pool.
        assert stats["pool_reused_rounds"] >= 2
        assert stats["pool"]["persistent_leases"] >= 4

    def test_sessions_on_one_database_are_serialised(self, daemon_factory,
                                                     client_for):
        """The per-database lock is FIFO: concurrent creates on one
        database both finish, both match the reference."""
        handle = daemon_factory({"movies": build_movie_db()})
        results = {}

        def run(slot):
            with SynthesisClient.connect(handle.host,
                                         handle.port) as client:
                response = client.create(
                    "movies", NLQ, literals=list(LITERALS),
                    tsq_rows=[list(r) for r in TSQ_ROWS])
                results[slot] = wire_stream(response)

        threads = [threading.Thread(target=run, args=(i,))
                   for i in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(120)
        expected = reference_stream(build_movie_db())
        assert results[0] == expected and results[1] == expected


class _SlowLexical(LexicalGuidanceModel):
    """Deterministic but slow: stretches enumerations so a cancel can
    land mid-run."""

    def column(self, ctx, slot, candidates):
        time.sleep(0.005)
        return super().column(ctx, slot, candidates)


class TestCancellation:
    def test_cancel_mid_enumeration_releases_the_pool(
            self, daemon_factory, client_for):
        """Cancelling a running enumeration stops it cooperatively
        (cancelled state + telemetry), and the session's pool lease is
        released — the next session leases the same warm pool."""
        handle = daemon_factory(
            {"movies": build_movie_db()},
            config=serve_config(time_budget=30.0, max_candidates=None),
            model=_SlowLexical())
        controller = client_for(handle)
        outcome = {}

        def run_create():
            with SynthesisClient.connect(handle.host,
                                         handle.port) as client:
                outcome["response"] = client.create(
                    "movies", NLQ, literals=list(LITERALS),
                    tsq_rows=[list(r) for r in TSQ_ROWS],
                    session="victim")

        worker = threading.Thread(target=run_create)
        worker.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            try:
                if controller.status("victim")["state"] == "enumerating":
                    break
            except ServeRequestError:
                pass  # create still registering
            time.sleep(0.01)
        else:
            pytest.fail("session never started enumerating")
        cancelled = controller.cancel("victim", reason="test cancel")
        assert cancelled["state"] == "cancelled"
        worker.join(60)
        assert not worker.is_alive()

        response = outcome["response"]
        assert response["state"] == "cancelled"
        telemetry = response["telemetry"]
        assert telemetry["cancelled"]
        assert telemetry["cancel_reason"] == "test cancel"

        # The lease went back: a fresh session leases the same warm
        # pool (reused, no new worker spawn) and completes normally.
        # (Bound the round — the slow model would otherwise stretch an
        # uncapped enumeration past the socket timeout.)
        follow_up = controller.create("movies", NLQ,
                                      literals=list(LITERALS),
                                      tsq_rows=[list(r) for r in TSQ_ROWS],
                                      max_candidates=3)
        assert follow_up["state"] == "awaiting-refinement"
        assert follow_up["telemetry"]["pool_reused"]
        assert follow_up["candidates"]

        refused = controller.status("victim")
        assert refused["state"] == "cancelled"


class TestBudgets:
    def test_candidate_budget_is_cumulative(self, daemon_factory,
                                            client_for):
        handle = daemon_factory({"movies": build_movie_db()})
        client = client_for(handle)
        round1 = client.create("movies", NLQ, literals=list(LITERALS),
                               tsq_rows=[list(r) for r in TSQ_ROWS],
                               max_candidates=5)
        assert len(round1["candidates"]) == 5
        budgets = client.status(round1["session"])["budgets"]
        assert budgets["max_candidates"] == 5
        assert budgets["candidates_emitted"] == 5
        assert budgets["max_probes"] is None
        with pytest.raises(ServeRequestError, match="candidate budget"):
            client.refine(round1["session"], extra_rows=[["Movie 05"]])

    def test_probe_budget_tracks_executed_probes(self, daemon_factory,
                                                 client_for):
        handle = daemon_factory({"movies": build_movie_db()})
        client = client_for(handle)
        round1 = client.create("movies", NLQ, literals=list(LITERALS),
                               tsq_rows=[list(r) for r in TSQ_ROWS],
                               max_probes=1)
        budgets = client.status(round1["session"])["budgets"]
        assert budgets["probes_executed"] >= 1
        with pytest.raises(ServeRequestError, match="probe budget"):
            client.refine(round1["session"], extra_rows=[["Movie 05"]])


class TestShutdown:
    def test_graceful_shutdown_closes_pools_and_flushes_caches(
            self, client_for, tmp_path):
        from repro.serve import spawn_daemon

        db = build_movie_db()
        daemon = SynthesisDaemon({"movies": db}, config=serve_config(),
                                 cache_dir=str(tmp_path))
        handle = spawn_daemon(daemon)
        client = client_for(handle)
        response = client.create("movies", NLQ, literals=list(LITERALS),
                                 tsq_rows=[list(r) for r in TSQ_ROWS])
        assert response["telemetry"]["probe_misses"] > 0
        handle.stop()
        assert daemon.context.closed
        assert daemon.context.pool_manager.closed
        saved = list(tmp_path.iterdir())
        assert saved, "probe-cache store was not flushed on shutdown"

    def test_stop_with_no_sessions(self, daemon_factory):
        handle = daemon_factory({"movies": build_movie_db()})
        handle.stop()
        assert handle.daemon.context.closed


class TestStateMachineOverTheWire:
    def test_refine_after_cancel_is_an_error(self, daemon_factory,
                                             client_for):
        handle = daemon_factory({"movies": build_movie_db()})
        client = client_for(handle)
        round1 = client.create("movies", NLQ, literals=list(LITERALS),
                               tsq_rows=[list(r) for r in TSQ_ROWS])
        client.cancel(round1["session"])
        with pytest.raises(ServeRequestError, match="cannot submit"):
            client.refine(round1["session"], extra_rows=[["Movie 05"]])

    def test_duplicate_session_id_is_an_error(self, daemon_factory,
                                              client_for):
        handle = daemon_factory({"movies": build_movie_db()})
        client = client_for(handle)
        client.create("movies", NLQ, literals=list(LITERALS),
                      session="dup")
        with pytest.raises(ServeRequestError, match="already exists"):
            client.create("movies", NLQ, literals=list(LITERALS),
                          session="dup")
