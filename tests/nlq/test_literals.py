"""Tests for literal tagging and NLQ construction."""

from repro.nlq.literals import Literal, NLQuery, extract_literals
from repro.sqlir.types import ColumnType


class TestExtractLiterals:
    def test_quoted_text(self):
        literals = extract_literals('Movies with "Tom Hanks" in them')
        assert [l.value for l in literals] == ["Tom Hanks"]

    def test_bare_numbers(self):
        literals = extract_literals("Movies before 1995 or after 2000")
        assert [l.value for l in literals] == [1995, 2000]

    def test_decimal_number(self):
        literals = extract_literals("rating above 8.5")
        assert literals[0].value == 8.5

    def test_numbers_inside_quotes_not_double_counted(self):
        literals = extract_literals('publications in "SIGMOD 2020"')
        values = [l.value for l in literals]
        assert values == ["SIGMOD 2020"]

    def test_single_quotes(self):
        literals = extract_literals("movies named 'Gravity'")
        assert literals[0].value == "Gravity"


class TestNLQuery:
    def test_from_text_auto_extraction(self):
        nlq = NLQuery.from_text('Show "Gravity" movies after 2010')
        assert {l.value for l in nlq.literals} == {"Gravity", 2010}

    def test_explicit_literals_override(self):
        nlq = NLQuery.from_text("Show movies", literals=[1999])
        assert [l.value for l in nlq.literals] == [1999]

    def test_typed_partitions(self):
        nlq = NLQuery.from_text("q", literals=["a", 1, 2.5, "b"])
        assert [l.value for l in nlq.text_literals] == ["a", "b"]
        assert [l.value for l in nlq.number_literals] == [1, 2.5]

    def test_literal_type(self):
        assert Literal("x").type is ColumnType.TEXT
        assert Literal(3).type is ColumnType.NUMBER

    def test_tokens(self):
        nlq = NLQuery.from_text("List all movies")
        assert nlq.tokens() == ["list", "all", "movies"]
