"""Tests for lexical schema linking."""

from repro.nlq.linking import link_schema
from repro.nlq.literals import NLQuery
from repro.sqlir.ast import ColumnRef


class TestLinkSchema:
    def test_mentioned_column_scores_high(self, movie_schema):
        nlq = NLQuery.from_text("List the birth year of each actor")
        scores = link_schema(nlq, movie_schema)
        birth_year = scores.column_score(
            ColumnRef("actor", "birth_year"))
        revenue = scores.column_score(ColumnRef("movie", "revenue"))
        assert birth_year > revenue

    def test_mentioned_table_scores_high(self, movie_schema):
        nlq = NLQuery.from_text("Show all movies")
        scores = link_schema(nlq, movie_schema)
        assert scores.table_score("movie") > scores.table_score("actor")

    def test_ranked_columns_sorted(self, movie_schema):
        nlq = NLQuery.from_text("movie titles")
        ranked = link_schema(nlq, movie_schema).ranked_columns()
        scores = [score for _, score in ranked]
        assert scores == sorted(scores, reverse=True)
        assert ranked[0][0] == ColumnRef("movie", "title")

    def test_scores_bounded(self, movie_schema):
        nlq = NLQuery.from_text(
            "movie movie title title year year actor name")
        scores = link_schema(nlq, movie_schema)
        assert all(0.0 <= s <= 1.0 for s in scores.columns.values())

    def test_literal_type_bonus(self, movie_schema):
        with_number = NLQuery.from_text("movies in some year",
                                        literals=[1995])
        without = NLQuery.from_text("movies in some year", literals=[])
        score_with = link_schema(with_number, movie_schema).column_score(
            ColumnRef("movie", "year"))
        score_without = link_schema(without, movie_schema).column_score(
            ColumnRef("movie", "year"))
        assert score_with > score_without
