"""Tests for NLQ tokenisation and lexical similarity."""

from hypothesis import given
from hypothesis import strategies as st

from repro.nlq.tokenize import (
    bigrams,
    contains_phrase,
    content_tokens,
    identifier_words,
    overlap_score,
    stem,
    stems,
    tokenize,
)


class TestTokenize:
    def test_basic(self):
        assert tokenize("List all movies before 1995.") == \
            ["list", "all", "movies", "before", "1995"]

    def test_numbers_kept(self):
        assert "42" in tokenize("top 42 rows")

    def test_content_tokens_drop_stopwords(self):
        tokens = content_tokens("List the names of all actors")
        assert "the" not in tokens
        assert "names" in tokens


class TestStem:
    def test_plural(self):
        assert stem("publications") == "publication"

    def test_ing(self):
        assert stem("starring") == "starr"

    def test_plural_and_lemma_share_stem(self):
        assert stem("movies") == stem("movie")
        assert stem("titles") == stem("title")
        assert stem("cities") == stem("city")

    def test_short_words_untouched(self):
        assert stem("is") == "is"

    def test_digits_untouched(self):
        assert stem("1995") == "1995"

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll",)),
                   min_size=1, max_size=15))
    def test_stem_never_longer(self, token):
        assert len(stem(token)) <= len(token) + 1  # 'ies' -> 'y' + base


class TestIdentifierWords:
    def test_snake_case(self):
        assert identifier_words("birth_year") == ["birth", "year"]

    def test_camel_case(self):
        assert identifier_words("birthYear") == ["birth", "year"]


class TestOverlapScore:
    def test_full_overlap(self):
        query = stems("list the birth year of actors")
        assert overlap_score(query, "birth_year") == 1.0

    def test_partial_overlap(self):
        query = stems("list the year")
        assert overlap_score(query, "birth_year") == 0.5

    def test_no_overlap(self):
        assert overlap_score(stems("hello"), "birth_year") == 0.0

    def test_empty_name(self):
        assert overlap_score(stems("anything"), "") == 0.0


class TestContainsPhrase:
    def test_contiguous_match(self):
        assert contains_phrase("show me more than five rows", "more than")

    def test_non_contiguous_no_match(self):
        assert not contains_phrase("more rows than that", "more than")

    def test_case_insensitive(self):
        assert contains_phrase("Ordered From Earliest", "from earliest")


class TestBigrams:
    def test_pairs(self):
        assert bigrams(["a", "b", "c"]) == [("a", "b"), ("b", "c")]

    def test_short_input(self):
        assert bigrams(["a"]) == []
