"""Tests for the Duoquest facade."""

import pytest

from repro.core import Duoquest, EnumeratorConfig, TableSketchQuery
from repro.guidance import CalibratedOracleModel
from repro.nlq.literals import NLQuery
from repro.sqlir.canon import queries_equal
from repro.sqlir.parser import parse_sql


@pytest.fixture
def system(movie_db):
    return Duoquest(movie_db, model=CalibratedOracleModel(seed=0),
                    config=EnumeratorConfig(time_budget=8.0,
                                            max_candidates=40))


class TestSynthesize:
    def test_returns_result(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(NLQuery.from_text("titles"), None,
                                   gold=gold, task_id="t")
        assert result.candidates
        assert result.elapsed > 0

    def test_ranked_by_confidence(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(NLQuery.from_text("titles"), None,
                                   gold=gold, task_id="t")
        confs = [c.confidence for c in result.ranked()]
        assert confs == sorted(confs, reverse=True)

    def test_top_k(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(NLQuery.from_text("titles"), None,
                                   gold=gold, task_id="t")
        assert len(result.top(3)) <= 3

    def test_rank_of_gold(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie WHERE year < 1994",
                         movie_db.schema)
        rows = movie_db.execute_query(gold)
        tsq = TableSketchQuery.build(types=["text"], rows=[[rows[0][0]]])
        result = system.synthesize(
            NLQuery.from_text("titles before 1994", literals=[1994]),
            tsq, gold=gold, task_id="t2")
        rank = result.rank_of(lambda q: queries_equal(q, gold))
        assert rank is not None
        assert rank <= 5

    def test_stop_when_terminates_early(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(
            NLQuery.from_text("titles"), None, gold=gold, task_id="t",
            stop_when=lambda c: c.index >= 2)
        assert len(result.candidates) == 3

    def test_sql_renders_topk(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(NLQuery.from_text("titles"), None,
                                   gold=gold, task_id="t")
        rendered = result.sql(3)
        assert all(sql.startswith("SELECT") for sql in rendered)

    def test_verifier_stats_exposed(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(NLQuery.from_text("titles"), None,
                                   gold=gold, task_id="t")
        assert "pass" in result.verifier_stats


class TestSoundness:
    def test_every_candidate_satisfies_tsq(self, movie_db):
        """The paper's soundness guarantee (Section 2.1)."""
        gold = parse_sql("SELECT title, year FROM movie WHERE year < 1994",
                         movie_db.schema)
        rows = movie_db.execute_query(gold)
        tsq = TableSketchQuery.build(
            types=["text", "number"],
            rows=[list(rows[0]), list(rows[1])])
        system = Duoquest(movie_db, model=CalibratedOracleModel(seed=1),
                          config=EnumeratorConfig(time_budget=8.0,
                                                  max_candidates=30))
        result = system.synthesize(
            NLQuery.from_text("titles and years before 1994",
                              literals=[1994]),
            tsq, gold=gold, task_id="sound")
        assert result.candidates
        for candidate in result.candidates:
            produced = movie_db.execute_query(candidate.query,
                                              max_rows=5000)
            assert tsq.satisfied_by_rows(produced)


class TestGuidanceBackendOwnership:
    """The facade owns a guidance backend it creates (and only that):
    one wrapper per system, shared across synthesize() calls, released
    by close()."""

    def test_facade_wraps_once_and_reuses_across_synthesize(self,
                                                            movie_db):
        from repro.guidance import BatchingGuidanceModel

        with Duoquest(movie_db, model=CalibratedOracleModel(seed=0),
                      config=EnumeratorConfig(
                          time_budget=5.0, max_candidates=5,
                          guidance_batch=True)) as system:
            assert isinstance(system.model, BatchingGuidanceModel)
            nlq = NLQuery.from_text("movies before 1995",
                                    literals=[1995])
            first = system.synthesize(nlq, task_id="own")
            second = system.synthesize(nlq, task_id="own")
            assert [c.query for c in first.candidates] == \
                [c.query for c in second.candidates]
            # The repeat run is answered from the facade-owned cache.
            assert second.telemetry.guide_hits > 0
            assert second.telemetry.guide_calls == 0

    def test_close_releases_only_an_owned_backend(self, movie_db):
        from repro.guidance import BatchingGuidanceModel

        closed = []

        class Closeable(BatchingGuidanceModel):
            def close(self):
                closed.append(True)
                super().close()

        # Caller-wrapped model: the facade must not close it.
        shared = Closeable(CalibratedOracleModel(seed=0))
        Duoquest(movie_db, model=shared,
                 config=EnumeratorConfig(guidance_batch=True)).close()
        assert not closed

        # Facade-created wrapper: close() must release it.
        system = Duoquest(movie_db, model=CalibratedOracleModel(seed=0),
                          config=EnumeratorConfig(guidance_batch=True))
        monkey_closed = []
        system.model.close = lambda: monkey_closed.append(True)
        system.close()
        assert monkey_closed
