"""Tests for the Duoquest facade."""

import pytest

from repro.core import Duoquest, EnumeratorConfig, TableSketchQuery
from repro.guidance import CalibratedOracleModel
from repro.nlq.literals import NLQuery
from repro.sqlir.canon import queries_equal
from repro.sqlir.parser import parse_sql


@pytest.fixture
def system(movie_db):
    return Duoquest(movie_db, model=CalibratedOracleModel(seed=0),
                    config=EnumeratorConfig(time_budget=8.0,
                                            max_candidates=40))


class TestSynthesize:
    def test_returns_result(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(NLQuery.from_text("titles"), None,
                                   gold=gold, task_id="t")
        assert result.candidates
        assert result.elapsed > 0

    def test_ranked_by_confidence(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(NLQuery.from_text("titles"), None,
                                   gold=gold, task_id="t")
        confs = [c.confidence for c in result.ranked()]
        assert confs == sorted(confs, reverse=True)

    def test_top_k(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(NLQuery.from_text("titles"), None,
                                   gold=gold, task_id="t")
        assert len(result.top(3)) <= 3

    def test_rank_of_gold(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie WHERE year < 1994",
                         movie_db.schema)
        rows = movie_db.execute_query(gold)
        tsq = TableSketchQuery.build(types=["text"], rows=[[rows[0][0]]])
        result = system.synthesize(
            NLQuery.from_text("titles before 1994", literals=[1994]),
            tsq, gold=gold, task_id="t2")
        rank = result.rank_of(lambda q: queries_equal(q, gold))
        assert rank is not None
        assert rank <= 5

    def test_stop_when_terminates_early(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(
            NLQuery.from_text("titles"), None, gold=gold, task_id="t",
            stop_when=lambda c: c.index >= 2)
        assert len(result.candidates) == 3

    def test_sql_renders_topk(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(NLQuery.from_text("titles"), None,
                                   gold=gold, task_id="t")
        rendered = result.sql(3)
        assert all(sql.startswith("SELECT") for sql in rendered)

    def test_verifier_stats_exposed(self, system, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        result = system.synthesize(NLQuery.from_text("titles"), None,
                                   gold=gold, task_id="t")
        assert "pass" in result.verifier_stats


class TestSoundness:
    def test_every_candidate_satisfies_tsq(self, movie_db):
        """The paper's soundness guarantee (Section 2.1)."""
        gold = parse_sql("SELECT title, year FROM movie WHERE year < 1994",
                         movie_db.schema)
        rows = movie_db.execute_query(gold)
        tsq = TableSketchQuery.build(
            types=["text", "number"],
            rows=[list(rows[0]), list(rows[1])])
        system = Duoquest(movie_db, model=CalibratedOracleModel(seed=1),
                          config=EnumeratorConfig(time_budget=8.0,
                                                  max_candidates=30))
        result = system.synthesize(
            NLQuery.from_text("titles and years before 1994",
                              literals=[1994]),
            tsq, gold=gold, task_id="sound")
        assert result.candidates
        for candidate in result.candidates:
            produced = movie_db.execute_query(candidate.query,
                                              max_rows=5000)
            assert tsq.satisfied_by_rows(produced)
