"""Tests for progressive join path construction (Algorithm 2)."""

import pytest

from repro.core.joins import JoinPathBuilder
from repro.db import make_schema
from repro.sqlir.types import ColumnType as T


@pytest.fixture(scope="module")
def builder(request):
    schema = make_schema(
        "joins",
        tables={
            "a": [("a_id", T.NUMBER), ("name", T.TEXT)],
            "b": [("b_id", T.NUMBER), ("a_id", T.NUMBER)],
            "c": [("c_id", T.NUMBER), ("b_id", T.NUMBER)],
            "island": [("island_id", T.NUMBER)],
        },
        foreign_keys=[("b", "a_id", "a", "a_id"),
                      ("c", "b_id", "b", "b_id")],
    )
    return JoinPathBuilder(schema, max_extensions=1)


class TestBasics:
    def test_no_tables_returns_every_table(self, builder):
        paths = builder.paths_for_tables(())
        assert {p.tables[0] for p in paths} == {"a", "b", "c", "island"}
        assert all(len(p) == 1 for p in paths)

    def test_single_table_plus_extensions(self, builder):
        paths = builder.paths_for_tables(("a",))
        assert paths[0].tables == ("a",)  # shortest first
        assert any(set(p.tables) == {"a", "b"} for p in paths)

    def test_adjacent_pair(self, builder):
        paths = builder.paths_for_tables(("a", "b"))
        assert set(paths[0].tables) == {"a", "b"}
        assert len(paths[0].edges) == 1

    def test_steiner_bridges_intermediate_table(self, builder):
        """a and c are only connected through b."""
        paths = builder.paths_for_tables(("a", "c"))
        assert set(paths[0].tables) == {"a", "b", "c"}
        assert len(paths[0].edges) == 2

    def test_disconnected_tables_yield_nothing(self, builder):
        assert builder.paths_for_tables(("a", "island")) == ()

    def test_sorted_by_length(self, builder):
        paths = builder.paths_for_tables(("b",))
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths)

    def test_caching_returns_same_object(self, builder):
        assert builder.paths_for_tables(("a", "b")) is \
            builder.paths_for_tables(("b", "a"))


class TestExtensions:
    def test_extension_depth(self):
        schema = make_schema(
            "deep",
            tables={
                "x": [("x_id", T.NUMBER)],
                "y": [("y_id", T.NUMBER), ("x_id", T.NUMBER)],
                "z": [("z_id", T.NUMBER), ("y_id", T.NUMBER)],
            },
            foreign_keys=[("y", "x_id", "x", "x_id"),
                          ("z", "y_id", "y", "y_id")])
        shallow = JoinPathBuilder(schema, max_extensions=1)
        deep = JoinPathBuilder(schema, max_extensions=2)
        shallow_sets = {frozenset(p.tables)
                        for p in shallow.paths_for_tables(("x",))}
        deep_sets = {frozenset(p.tables)
                     for p in deep.paths_for_tables(("x",))}
        assert frozenset({"x", "y"}) in shallow_sets
        assert frozenset({"x", "y", "z"}) not in shallow_sets
        assert frozenset({"x", "y", "z"}) in deep_sets

    def test_no_duplicate_paths(self, builder):
        paths = builder.paths_for_tables(("a", "b"))
        canonicals = [p.canonical() for p in paths]
        assert len(canonicals) == len(set(canonicals))


class TestParallelForeignKeys:
    def test_one_path_per_fk_choice(self):
        """Two FKs between the same tables (e.g. cite.citing/cited) give
        two distinct minimal paths."""
        schema = make_schema(
            "parallel",
            tables={
                "paper": [("paper_id", T.NUMBER)],
                "cite": [("citing", T.NUMBER), ("cited", T.NUMBER)],
            },
            foreign_keys=[("cite", "citing", "paper", "paper_id"),
                          ("cite", "cited", "paper", "paper_id")],
            primary_keys={"cite": None})
        builder = JoinPathBuilder(schema, max_extensions=0)
        paths = builder.paths_for_tables(("paper", "cite"))
        assert len(paths) == 2
        columns = {p.edges[0].src_column for p in paths}
        assert columns == {"citing", "cited"}

    def test_mas_paths_for_user_tasks(self, mas_db):
        """The 4-table join of task A3 must be constructible."""
        builder = JoinPathBuilder(mas_db.schema, max_extensions=2)
        paths = builder.paths_for_tables(("author", "organization"))
        table_sets = {frozenset(p.tables) for p in paths}
        assert frozenset({"author", "organization", "writes",
                          "publication"}) in table_sets
