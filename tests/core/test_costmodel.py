"""The verification cost model and the cost-aware dispatch paths.

Two contracts under test:

* :class:`~repro.core.search.costmodel.CostModel` is **monotone**:
  costs never decrease when a join path grows, a referenced table gets
  bigger, more example tuples are pending, or a probe references more
  tables. Absolute values are unspecified.
* ``SearchEngine._dispatch`` implements the three ``--cost-order``
  tiers exactly: ``off`` is a straight ``pool.run``, ``order``
  dispatches cheapest-first but un-permutes results back into job
  order, and ``abort`` propagates the first observed timeout to every
  costlier pending wave (the Litmus cascade) via :data:`COST_ABORT`.
"""

from __future__ import annotations

import pytest

from repro.core.search.costmodel import (
    COST_ORDER_MODES,
    CostModel,
    validate_cost_order,
)
from repro.core.search.engine import COST_ABORT, SearchEngine
from repro.core.search.telemetry import SearchTelemetry
from repro.core.tsq import TableSketchQuery
from repro.core.verifier import Verifier, VerifyResult
from repro.sqlir.parser import parse_sql


# ----------------------------------------------------------------------
# Mode validation
# ----------------------------------------------------------------------
def test_modes_are_the_documented_triple():
    assert COST_ORDER_MODES == ("off", "order", "abort")


@pytest.mark.parametrize("mode", COST_ORDER_MODES)
def test_validate_accepts_known_modes(mode):
    assert validate_cost_order(mode) == mode


def test_validate_rejects_unknown_mode():
    with pytest.raises(ValueError, match="unknown cost_order 'bogus'"):
        validate_cost_order("bogus")


# ----------------------------------------------------------------------
# CostModel monotonicity
# ----------------------------------------------------------------------
class TestCostModelMonotonicity:
    @pytest.fixture()
    def model(self, movie_db):
        return CostModel(movie_db)

    def test_table_cost_monotone_in_cardinality(self, model, movie_db):
        cards = model.cardinalities
        assert cards["starring"] > cards["movie"] > cards["actor"] > 0
        assert model.table_cost("starring") > model.table_cost("movie") \
            > model.table_cost("actor")

    def test_unknown_table_costs_the_floor(self, model):
        assert model.table_cost("no_such_table") == 1.0
        assert model.table_cost("actor") > model.table_cost("no_such_table")

    def test_structure_cost_monotone_in_join_length(self, model,
                                                    movie_db):
        single = parse_sql("SELECT title FROM movie WHERE year < 1995",
                           movie_db.schema)
        joined = parse_sql(
            "SELECT name, title FROM actor "
            "JOIN starring ON actor.aid = starring.aid "
            "JOIN movie ON starring.mid = movie.mid", movie_db.schema)
        assert model.structure_cost(joined) > model.structure_cost(single)

    def test_structure_cost_monotone_in_cardinality(self, movie_db):
        grown = CostModel(movie_db)
        # Same schema, one table reported 100x bigger: any query
        # touching it must cost at least as much as before.
        grown._cards = {name: count for name, count
                        in CostModel(movie_db).cardinalities.items()}
        query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                          movie_db.schema)
        before = grown.structure_cost(query)
        grown._cards["movie"] *= 100.0
        assert grown.structure_cost(query) > before

    def test_estimate_monotone_in_pending_probes(self, movie_db):
        """More example tuples -> more pending probes -> higher
        estimate, structure held constant."""
        query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                          movie_db.schema)
        one = Verifier(movie_db, tsq=TableSketchQuery.build(
            types=["text"], rows=[["Forrest Gump"]]))
        three = Verifier(movie_db, tsq=TableSketchQuery.build(
            types=["text"],
            rows=[["Forrest Gump"], ["Gravity"], ["Movie 03"]]))
        small = CostModel(movie_db, verifier=one)
        large = CostModel(movie_db, verifier=three)
        assert large.probe_count_hint(query) > small.probe_count_hint(query)
        assert large.estimate(query) > small.estimate(query)
        # Without a verifier the estimate degrades to structure alone.
        bare = CostModel(movie_db)
        assert bare.estimate(query) == bare.structure_cost(query)

    def test_probe_sql_cost_monotone_in_tables(self, model):
        one = model.probe_sql_cost(
            "SELECT 1 FROM movie WHERE title = 'Gravity' LIMIT 1")
        two = model.probe_sql_cost(
            "SELECT 1 FROM movie, starring WHERE movie.mid = starring.mid "
            "LIMIT 1")
        none = model.probe_sql_cost("SELECT 1 LIMIT 1")
        assert two > one > none == 1.0


# ----------------------------------------------------------------------
# Engine dispatch: order / abort semantics
# ----------------------------------------------------------------------
PASS = VerifyResult(ok=True)
TIMED_OUT = VerifyResult(ok=True, timed_out=True)


class FakePool:
    """Records every run() call; answers from a per-job outcome map."""

    def __init__(self, workers, outcomes=None):
        self.workers = workers
        self.calls = []

        self.outcomes = outcomes or {}

    def run(self, jobs):
        self.calls.append([query for query, _ in jobs])
        return [self.outcomes.get(query, PASS) for query, _ in jobs]


class StubCostModel:
    """Cost = the number embedded in the fake 'query' label."""

    def estimate(self, query, treat_as_partial=False):
        return float(query.split(":")[1])


def make_engine(cost_order):
    engine = SearchEngine.__new__(SearchEngine)
    engine.cost_order = cost_order
    engine.cost_model = StubCostModel() if cost_order != "off" else None
    engine.telemetry = SearchTelemetry()
    return engine


def jobs_with_costs(costs):
    return [(f"q{i}:{cost}", False) for i, cost in enumerate(costs)]


class TestCostOrderedDispatch:
    def test_off_is_a_straight_pool_run(self):
        engine = make_engine("off")
        pool = FakePool(workers=2)
        jobs = jobs_with_costs([9, 1, 5])
        results = engine._dispatch(pool, jobs)
        assert pool.calls == [["q0:9", "q1:1", "q2:5"]]  # original order
        assert results == [PASS, PASS, PASS]
        assert engine.telemetry.cost_ordered == 0

    def test_order_dispatches_cheapest_first_and_unpermutes(self):
        engine = make_engine("order")
        pool = FakePool(workers=2, outcomes={"q0:9": TIMED_OUT})
        jobs = jobs_with_costs([9, 1, 5])
        results = engine._dispatch(pool, jobs)
        assert pool.calls == [["q1:1", "q2:5", "q0:9"]]  # by cost
        # Results align with the *original* job order regardless.
        assert results == [TIMED_OUT, PASS, PASS]
        assert engine.telemetry.cost_ordered == 3
        assert engine.telemetry.probe_timeouts == 1
        assert engine.telemetry.cost_aborts == 0

    def test_order_breaks_cost_ties_by_job_index(self):
        engine = make_engine("order")
        pool = FakePool(workers=2)
        engine._dispatch(pool, jobs_with_costs([5, 5, 1]))
        assert pool.calls == [["q2:1", "q0:5", "q1:5"]]

    def test_abort_propagates_timeout_to_costlier_waves(self):
        """Five jobs, two workers: the cheapest wave times out, so both
        later waves are abandoned with COST_ABORT — exactly the jobs
        with estimated cost >= the timed-out one's."""
        engine = make_engine("abort")
        pool = FakePool(workers=2, outcomes={"q3:1": TIMED_OUT})
        jobs = jobs_with_costs([8, 6, 4, 1, 2])
        results = engine._dispatch(pool, jobs)
        # Only the cheapest wave [1, 2] ever reached the pool.
        assert pool.calls == [["q3:1", "q4:2"]]
        assert results == [COST_ABORT, COST_ABORT, COST_ABORT,
                           TIMED_OUT, PASS]
        assert engine.telemetry.cost_aborts == 3
        assert engine.telemetry.probe_timeouts == 1

    def test_abort_without_timeouts_runs_every_wave(self):
        engine = make_engine("abort")
        pool = FakePool(workers=2)
        jobs = jobs_with_costs([8, 6, 4, 1, 2])
        results = engine._dispatch(pool, jobs)
        assert pool.calls == [["q3:1", "q4:2"], ["q2:4", "q1:6"],
                              ["q0:8"]]
        assert results == [PASS] * 5
        assert engine.telemetry.cost_aborts == 0
        assert engine.telemetry.probe_timeouts == 0

    def test_abort_timeout_in_middle_wave_spares_earlier_waves(self):
        engine = make_engine("abort")
        pool = FakePool(workers=2, outcomes={"q1:6": TIMED_OUT})
        jobs = jobs_with_costs([8, 6, 4, 1, 2])
        results = engine._dispatch(pool, jobs)
        assert pool.calls == [["q3:1", "q4:2"], ["q2:4", "q1:6"]]
        assert results == [COST_ABORT, TIMED_OUT, PASS, PASS, PASS]
        assert engine.telemetry.cost_aborts == 1

    def test_single_job_rounds_skip_the_cost_path(self):
        """len(jobs) < 2 cannot benefit from ordering: straight run,
        no cost_ordered telemetry (but timeouts still counted)."""
        engine = make_engine("order")
        pool = FakePool(workers=2, outcomes={"q0:7": TIMED_OUT})
        results = engine._dispatch(pool, jobs_with_costs([7]))
        assert results == [TIMED_OUT]
        assert engine.telemetry.cost_ordered == 0
        assert engine.telemetry.probe_timeouts == 1

    def test_cost_abort_sentinel_is_a_visible_prune(self):
        """The sentinel's stage name is what search_report surfaces as
        the prune:cost_abort column; it must never read as an actual
        timeout (the abandonment is presumed, not observed)."""
        assert COST_ABORT.failed_stage == "cost_abort"
        assert not COST_ABORT.ok
        assert not COST_ABORT.timed_out
