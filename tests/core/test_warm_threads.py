"""Warm thread pools: lease lifecycle, stat folding, degrade paths.

The contract under test (see ``repro.core.search.parallel``):
``PoolManager(warm_threads=True)`` serves multi-worker ``threads``
leases from a per-database :class:`PersistentThreadPool` whose executor
(and per-thread database forks) survive lease close — later leases
attach warm (``reused``). Failures degrade visibly on the lease, never
raise into the engine, and fork statement counters fold back into the
primary database exactly once.
"""

from __future__ import annotations

import pytest

from repro.core.search.parallel import (
    PersistentThreadPool,
    PersistentThreadPoolLease,
    PoolManager,
)
from repro.core.tsq import TableSketchQuery
from repro.core.verifier import Verifier
from repro.db.database import Database
from repro.errors import ExecutionError
from repro.sqlir.ast import AggOp, ColumnRef, JoinPath, Query, SelectItem

from tests.conftest import build_movie_db

pytestmark = pytest.mark.skipif(
    not Database.supports_snapshots(),
    reason="sqlite build cannot snapshot databases")


@pytest.fixture
def db():
    database = build_movie_db()
    yield database
    database.close()


@pytest.fixture
def verifier(db):
    return Verifier(db, tsq=TableSketchQuery.build(
        rows=[["Forrest Gump"]]))


def title_query() -> Query:
    return Query(select=(SelectItem(AggOp.NONE,
                                    ColumnRef("movie", "title")),),
                 join_path=JoinPath(tables=("movie",)),
                 where=None, group_by=None, having=None, order_by=None,
                 limit=None)


class TestLeaseLifecycle:
    def test_second_lease_attaches_warm(self, db, verifier):
        pool = PersistentThreadPool(db, workers=2)
        try:
            first = pool.lease(verifier)
            assert first.reused is False and not first.degraded
            first.close()
            second = pool.lease(verifier)
            assert second.reused is True
            assert pool.spawns == 1 and pool.leases == 2
            second.close()
        finally:
            pool.close()

    def test_lease_runs_jobs_and_folds_stats(self, db, verifier):
        pool = PersistentThreadPool(db, workers=2)
        try:
            lease = pool.lease(verifier)
            jobs = [(title_query(), False)] * 4
            results = lease.run(jobs)
            assert len(results) == 4
            before = db.stats.statements
            lease.close()
            # fork statement counters folded back into the primary
            assert db.stats.statements >= before
            assert lease._closed
            lease.close()  # idempotent
        finally:
            pool.close()

    def test_executor_survives_lease_close(self, db, verifier):
        pool = PersistentThreadPool(db, workers=2)
        try:
            pool.lease(verifier).close()
            assert pool.executor is not None
            pool.close()
            assert pool.executor is None
        finally:
            pool.close()


class TestDegradePaths:
    def test_unsnapshottable_database_degrades_every_lease(
            self, db, verifier, monkeypatch):
        monkeypatch.setattr(db, "snapshot", lambda: (_ for _ in ()).throw(
            ExecutionError("no snapshots here")))
        pool = PersistentThreadPool(db, workers=2)
        try:
            first = pool.lease(verifier)
            assert first.degraded
            assert "no snapshots" in first.degrade_reason
            # the pool remembers: later leases degrade without retrying
            second = pool.lease(verifier)
            assert second.degraded
            assert pool.spawns == 0
            # degraded leases still verify (inline)
            results = second.run([(title_query(), False)])
            assert len(results) == 1
        finally:
            pool.close()

    def test_retired_pool_degrades_inflight_lease(self, db, verifier):
        pool = PersistentThreadPool(db, workers=2)
        try:
            lease = pool.lease(verifier)
            pool.retire("simulated worker failure")
            results = lease.run([(title_query(), False)] * 2)
            assert len(results) == 2
            assert lease.degraded
            assert "retired" in lease.degrade_reason
        finally:
            pool.close()


class TestManagerPolicy:
    def test_threads_fall_back_without_opt_in(self, db, verifier):
        with PoolManager() as manager:
            lease = manager.lease(verifier, backend="threads", workers=2)
            assert not isinstance(lease, PersistentThreadPoolLease)
            assert manager.fallback_leases == 1
            assert manager.stats["pools"] == 0
            lease.close()

    def test_warm_threads_opt_in_serves_persistent_leases(self, db,
                                                          verifier):
        with PoolManager(warm_threads=True) as manager:
            first = manager.lease(verifier, backend="threads", workers=2)
            assert isinstance(first, PersistentThreadPoolLease)
            first.close()
            second = manager.lease(verifier, backend="threads", workers=2)
            assert second.reused is True
            second.close()
            stats = manager.stats
            assert stats == {"pools": 1, "worker_spawns": 1,
                             "persistent_leases": 2, "fallback_leases": 0,
                             "pool_retires": 0, "breaker_trips": 0}

    def test_single_worker_still_falls_back(self, db, verifier):
        with PoolManager(warm_threads=True) as manager:
            lease = manager.lease(verifier, backend="threads", workers=1)
            assert not isinstance(lease, PersistentThreadPoolLease)
            lease.close()

    def test_thread_and_process_pools_coexist_per_database(self, db,
                                                           verifier):
        """The registry is keyed by (database, backend): warming the
        threads pool must not evict the process pool."""
        with PoolManager(warm_threads=True) as manager:
            threaded = manager.lease(verifier, backend="threads",
                                     workers=2)
            assert isinstance(threaded, PersistentThreadPoolLease)
            threaded.close()
            processed = manager.lease(verifier, backend="processes",
                                      workers=2)
            processed.close()
            assert manager.stats["pools"] == 2
            again = manager.lease(verifier, backend="threads", workers=2)
            assert again.reused is True
            again.close()
