"""Persistent verification pools: leases, reuse, sync, and failure.

The PoolManager contract under test: workers spawn once per database
and survive lease ``close()`` (the engine's ``finally`` must never kill
the shared executor), probe answers discovered anywhere propagate to
every worker by the next task, configurations that cannot benefit fall
back to plain per-enumeration pools, and every failure mode degrades
to inline verification visibly instead of crashing the enumeration.
"""

from __future__ import annotations

import logging

import pytest

from repro.core.enumerator import Enumerator, EnumeratorConfig
from repro.core.search.parallel import (
    PersistentPoolLease,
    PersistentProcessPool,
    PoolManager,
    ProcessVerificationPool,
    VerificationPool,
)
from repro.core.tsq import TableSketchQuery
from repro.core.verifier import SharedProbeCache, Verifier
from repro.db.database import Database
from repro.errors import ExecutionError
from repro.nlq.literals import NLQuery
from repro.sqlir.parser import parse_sql

needs_snapshots = pytest.mark.skipif(
    not Database.supports_snapshots(),
    reason="sqlite build cannot serialize databases")


def make_verifier(db, cache=None):
    tsq = TableSketchQuery.build(types=["text"], rows=[["Forrest Gump"]])
    return Verifier(db, tsq=tsq, probe_cache=cache)


def make_jobs(db, count=4):
    query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                      db.schema)
    return [(query, False)] * count


class TestLeaseLifecycle:
    @needs_snapshots
    def test_workers_spawn_once_across_leases(self, movie_db):
        with PoolManager() as manager:
            cache = SharedProbeCache()
            for _ in range(3):
                lease = manager.lease(make_verifier(movie_db, cache),
                                      backend="processes", workers=2)
                results = lease.run(make_jobs(movie_db))
                assert all(r.ok for r in results)
                lease.close()
            stats = manager.stats
            assert stats["pools"] == 1
            assert stats["worker_spawns"] == 1
            assert stats["persistent_leases"] == 3

    @needs_snapshots
    def test_first_lease_cold_rest_reused(self, movie_db):
        with PoolManager() as manager:
            cache = SharedProbeCache()
            first = manager.lease(make_verifier(movie_db, cache),
                                  backend="processes", workers=2)
            second = manager.lease(make_verifier(movie_db, cache),
                                   backend="processes", workers=2)
            assert not first.reused
            assert second.reused

    @needs_snapshots
    def test_lease_close_keeps_executor_alive(self, movie_db):
        with PoolManager() as manager:
            cache = SharedProbeCache()
            lease = manager.lease(make_verifier(movie_db, cache),
                                  backend="processes", workers=2)
            lease.run(make_jobs(movie_db))
            lease.close()
            lease.close()  # idempotent
            _, pool = next(iter(manager._pools.values()))
            assert pool.executor is not None  # workers still warm

    @needs_snapshots
    def test_context_manager_protocol(self, movie_db):
        cache = SharedProbeCache()
        with PoolManager() as manager:
            with manager.lease(make_verifier(movie_db, cache),
                               backend="processes", workers=2) as lease:
                assert lease.run(make_jobs(movie_db))

    @needs_snapshots
    def test_manager_close_shuts_pools_and_falls_back(self, movie_db):
        manager = PoolManager()
        cache = SharedProbeCache()
        manager.lease(make_verifier(movie_db, cache),
                      backend="processes", workers=2).close()
        manager.close()
        manager.close()  # idempotent
        assert manager.closed
        # Still usable — but only hands out per-enumeration pools now.
        pool = manager.lease(make_verifier(movie_db, cache),
                             backend="processes", workers=2)
        assert isinstance(pool, ProcessVerificationPool)
        pool.close()


class TestFallbackPolicy:
    """lease() is the policy boundary: configurations that cannot
    benefit from warm processes get plain per-enumeration pools."""

    def test_single_worker_falls_back(self, movie_db):
        with PoolManager() as manager:
            pool = manager.lease(make_verifier(movie_db),
                                 backend="processes", workers=1)
            assert isinstance(pool, ProcessVerificationPool)
            assert manager.stats["fallback_leases"] == 1
            assert manager.stats["pools"] == 0

    def test_threads_backend_falls_back(self, movie_db):
        with PoolManager() as manager:
            pool = manager.lease(make_verifier(movie_db),
                                 backend="threads", workers=2)
            assert isinstance(pool, VerificationPool)
            pool.close()

    def test_invalid_config_still_raises(self, movie_db):
        with PoolManager() as manager:
            with pytest.raises(ValueError, match="positive integer"):
                manager.lease(make_verifier(movie_db),
                              backend="processes", workers=0)
            with pytest.raises(ValueError, match="unknown verify_backend"):
                manager.lease(make_verifier(movie_db), backend="fibers",
                              workers=2)

    def test_bad_max_pools_rejected(self):
        with pytest.raises(ValueError, match="max_pools"):
            PoolManager(max_pools=0)


class TestCacheSync:
    @needs_snapshots
    def test_probe_entries_flow_back_to_primary(self, movie_db):
        with PoolManager() as manager:
            cache = SharedProbeCache()
            lease = manager.lease(make_verifier(movie_db, cache),
                                  backend="processes", workers=2)
            lease.run(make_jobs(movie_db, count=6))
            lease.close()
            assert len(cache) > 0
            assert cache.hits + cache.misses > 0

    @needs_snapshots
    def test_second_task_sees_first_tasks_probes(self, movie_db):
        """The per-task delta sync: probes answered during task 1 (in
        workers or inline) are cross-task hits inside task 2's workers."""
        with PoolManager() as manager:
            cache = SharedProbeCache()
            cache.begin_task()
            first = manager.lease(make_verifier(movie_db, cache),
                                  backend="processes", workers=2)
            first.run(make_jobs(movie_db, count=6))
            first.close()
            cache.begin_task()
            cross_before = cache.cross_task_hits
            second = manager.lease(make_verifier(movie_db, cache),
                                   backend="processes", workers=2)
            second.run(make_jobs(movie_db, count=6))
            second.close()
            assert cache.cross_task_hits > cross_before

    @needs_snapshots
    def test_switching_caches_reseeds_workers(self, movie_db):
        """A lease arriving with a different cache object (sharing
        disabled harness-side) still verifies correctly."""
        with PoolManager() as manager:
            first = manager.lease(make_verifier(movie_db,
                                                SharedProbeCache()),
                                  backend="processes", workers=2)
            first.run(make_jobs(movie_db))
            first.close()
            other = SharedProbeCache()
            second = manager.lease(make_verifier(movie_db, other),
                                   backend="processes", workers=2)
            results = second.run(make_jobs(movie_db, count=6))
            assert all(r.ok for r in results)
            second.close()
            assert manager.stats["worker_spawns"] == 1

    @needs_snapshots
    def test_warm_hits_propagate_from_workers(self, movie_db):
        """Warm-start (disk-loaded) entries seeded into workers report
        warm hits back to the primary cache."""
        cold = SharedProbeCache()
        verifier = make_verifier(movie_db, cold)
        for query, partial in make_jobs(movie_db, count=1):
            verifier.verify(query, treat_as_partial=partial, record=False)
        probes, minmax, _ = cold.export()
        warm = SharedProbeCache()
        warm.seed(probes, minmax, warm=True)
        with PoolManager() as manager:
            lease = manager.lease(make_verifier(movie_db, warm),
                                  backend="processes", workers=2)
            lease.run(make_jobs(movie_db, count=6))
            lease.close()
        assert warm.warm_start_hits > 0

    @needs_snapshots
    def test_warm_hits_survive_cache_switch_on_warm_pool(self, movie_db):
        """A warm-seeded cache arriving at an *already-warm* pool (the
        second harness run in one process) takes the full-export sync
        path — warm markers must survive it, or worker-side warm hits
        silently downgrade to plain hits."""
        cold = SharedProbeCache()
        verifier = make_verifier(movie_db, cold)
        for query, partial in make_jobs(movie_db, count=1):
            verifier.verify(query, treat_as_partial=partial, record=False)
        probes, minmax, _ = cold.export()
        with PoolManager() as manager:
            # Spawn the pool with an unrelated cache and a *different
            # TSQ* (harness run 1): column probes derive from the TSQ's
            # example cells, so the workers must not have computed the
            # warm entries themselves — those hits would be legitimate
            # cross-task reuse, not warm starts.
            other_tsq = TableSketchQuery.build(types=["text"],
                                               rows=[["Gravity"]])
            other_verifier = Verifier(movie_db, tsq=other_tsq,
                                      probe_cache=SharedProbeCache())
            first = manager.lease(other_verifier, backend="processes",
                                  workers=2)
            first.run(make_jobs(movie_db))
            first.close()
            # Harness run 2: fresh registry cache, warm-seeded from disk.
            warm = SharedProbeCache()
            warm.seed(probes, minmax, warm=True)
            lease = manager.lease(make_verifier(movie_db, warm),
                                  backend="processes", workers=2)
            assert lease.reused
            lease.run(make_jobs(movie_db, count=6))
            lease.close()
        assert warm.warm_start_hits > 0


class TestDegradeAndEviction:
    def test_unsnapshottable_db_degrades_lease(self, movie_db,
                                               monkeypatch, caplog):
        def broken_snapshot(self):
            raise ExecutionError("no serialize support")

        monkeypatch.setattr(Database, "snapshot", broken_snapshot)
        with PoolManager() as manager:
            with caplog.at_level(logging.WARNING,
                                 logger="repro.core.search.parallel"):
                lease = manager.lease(make_verifier(movie_db),
                                      backend="processes", workers=2)
            assert lease.degraded
            assert lease.workers == 1
            assert "degraded to inline" in caplog.text
            results = lease.run(make_jobs(movie_db))
            assert all(r.ok for r in results)
            # The failure is db-level and permanent: the next lease
            # degrades immediately without a second snapshot attempt.
            again = manager.lease(make_verifier(movie_db),
                                  backend="processes", workers=2)
            assert again.degraded
            assert manager.stats["worker_spawns"] == 0

    @needs_snapshots
    def test_unpicklable_state_degrades_lease_not_pool(self, movie_db):
        from repro.core.semantics import Rule, RuleSet

        with PoolManager() as manager:
            cache = SharedProbeCache()
            good = manager.lease(make_verifier(movie_db, cache),
                                 backend="processes", workers=2)
            assert not good.degraded
            good.close()
            unpicklable = RuleSet(rules=(
                Rule(name="local", description="unpicklable closure",
                     check=lambda query, schema: None),))
            tsq = TableSketchQuery.build(types=["text"],
                                         rows=[["Forrest Gump"]])
            bad_verifier = Verifier(movie_db, tsq=tsq, rules=unpicklable,
                                    probe_cache=cache)
            bad = manager.lease(bad_verifier, backend="processes",
                                workers=2)
            assert bad.degraded
            assert "not picklable" in bad.degrade_reason
            assert all(r.ok for r in bad.run(make_jobs(movie_db)))
            # The pool itself survived for picklable verifiers.
            after = manager.lease(make_verifier(movie_db, cache),
                                  backend="processes", workers=2)
            assert not after.degraded
            assert after.reused

    @needs_snapshots
    def test_worker_failure_degrades_and_respawns_next_lease(self,
                                                             movie_db,
                                                             caplog):
        with PoolManager() as manager:
            cache = SharedProbeCache()
            lease = manager.lease(make_verifier(movie_db, cache),
                                  backend="processes", workers=2)
            _, pool = next(iter(manager._pools.values()))

            def broken_map(fn, payloads):
                raise RuntimeError("worker died")

            pool.executor.map = broken_map
            with caplog.at_level(logging.WARNING,
                                 logger="repro.core.search.parallel"):
                results = lease.run(make_jobs(movie_db))
            assert all(r.ok for r in results)  # inline fallback answered
            assert lease.degraded
            assert pool.executor is None  # retired
            # The next lease heals: a fresh executor spawns.
            healed = manager.lease(make_verifier(movie_db, cache),
                                   backend="processes", workers=2)
            assert not healed.degraded
            assert manager.stats["worker_spawns"] == 2
            healed.run(make_jobs(movie_db))
            healed.close()

    @needs_snapshots
    def test_mid_batch_failure_folds_nothing_twice(self, movie_db):
        """A batch that dies *after* a worker already returned an
        outcome must fold none of the partial results: the inline rerun
        re-verifies every job, so folding the partial batch too would
        double-count worker telemetry and cache deltas."""
        baseline_cache = SharedProbeCache()
        verifier = make_verifier(movie_db, baseline_cache)
        for query, partial in make_jobs(movie_db, count=4):
            verifier.verify(query, treat_as_partial=partial, record=False)
        baseline = (baseline_cache.hits, baseline_cache.misses)

        with PoolManager() as manager:
            cache = SharedProbeCache()
            lease = manager.lease(make_verifier(movie_db, cache),
                                  backend="processes", workers=2)
            _, pool = next(iter(manager._pools.values()))
            real_map = pool.executor.map

            def poisoned_map(fn, payloads):
                def outcomes():
                    for outcome in real_map(fn, payloads):
                        yield outcome          # one real worker delta...
                        raise RuntimeError("worker died mid-batch")
                return outcomes()

            pool.executor.map = poisoned_map
            results = lease.run(make_jobs(movie_db, count=4))
            assert all(r.ok for r in results)  # inline rerun answered
            assert lease.degraded
        # Exactly one accounting of the four jobs — the partial worker
        # delta was discarded, not folded on top of the inline rerun.
        assert (cache.hits, cache.misses) == baseline

    @needs_snapshots
    def test_close_after_retire_is_idempotent(self, movie_db, caplog):
        """retire() racing a second retire (or close()) is a silent
        no-op: one warning, one shutdown, no crash."""
        with PoolManager() as manager:
            cache = SharedProbeCache()
            lease = manager.lease(make_verifier(movie_db, cache),
                                  backend="processes", workers=2)
            _, pool = next(iter(manager._pools.values()))

            def broken_map(fn, payloads):
                raise RuntimeError("worker died")

            pool.executor.map = broken_map
            with caplog.at_level(logging.WARNING,
                                 logger="repro.core.search.parallel"):
                lease.run(make_jobs(movie_db))  # degrades + retires
                assert pool.executor is None
                pool.retire("second retire must be silent")
                pool.close()
                lease.close()
                lease.close()
            assert caplog.text.count("retired:") == 1

    @needs_snapshots
    def test_sibling_retire_degrades_lease_without_re_retiring(
            self, movie_db):
        """A lease whose pool was retired by a *sibling* lease (its
        batch hit the dead worker first) degrades to inline — it must
        not retire again, and the manager heals on the next lease."""
        with PoolManager() as manager:
            cache = SharedProbeCache()
            survivor = manager.lease(make_verifier(movie_db, cache),
                                     backend="processes", workers=2)
            _, pool = next(iter(manager._pools.values()))
            pool.retire("sibling lease hit a dead worker")
            assert pool.executor is None
            results = survivor.run(make_jobs(movie_db))
            assert all(r.ok for r in results)
            assert survivor.degraded
            assert "retired by a concurrent lease" \
                in survivor.degrade_reason
            healed = manager.lease(make_verifier(movie_db, cache),
                                   backend="processes", workers=2)
            assert not healed.degraded
            assert manager.stats["worker_spawns"] == 2
            healed.close()

    @needs_snapshots
    def test_midrun_degrade_clears_pool_reused(self, movie_db):
        """A warm lease whose workers die mid-enumeration ran inline:
        telemetry must not claim the run rode a warm pool."""
        from repro.guidance.lexical import LexicalGuidanceModel

        nlq = NLQuery.from_text("movies called 'Forrest Gump'")
        tsq = TableSketchQuery.build(types=["text"],
                                     rows=[["Forrest Gump"]])
        config = EnumeratorConfig(max_candidates=10, workers=2,
                                  verify_backend="processes")
        with PoolManager() as manager:
            cache = SharedProbeCache()
            warmup = manager.lease(make_verifier(movie_db, cache),
                                   backend="processes", workers=2)
            warmup.run(make_jobs(movie_db))
            warmup.close()
            _, pool = next(iter(manager._pools.values()))

            def broken_map(fn, payloads):
                raise RuntimeError("worker died")

            pool.executor.map = broken_map
            enumerator = Enumerator(
                movie_db, model=LexicalGuidanceModel(), nlq=nlq, tsq=tsq,
                config=config, probe_cache=cache, pool_manager=manager)
            list(enumerator.enumerate())
            telemetry = enumerator.telemetry
            assert telemetry.snapshot_degraded
            assert not telemetry.pool_reused
            assert telemetry.workers == 1

    @needs_snapshots
    def test_lru_eviction_bounds_worker_processes(self, movie_db):
        other = Database.from_snapshot(movie_db.schema,
                                       movie_db.snapshot())
        with PoolManager(max_pools=1) as manager:
            manager.lease(make_verifier(movie_db), backend="processes",
                          workers=2).close()
            manager.lease(make_verifier(other), backend="processes",
                          workers=2).close()
            assert manager.stats["pools"] == 1
            (held, _), = manager._pools.values()
            assert held is other  # most recent survives


class TestEngineIntegration:
    @needs_snapshots
    def test_enumerations_share_one_pool_and_match_cold_run(self,
                                                            movie_db):
        """Full stack: Duoquest enumerations through a manager reuse one
        warm pool, report it in telemetry, and emit the exact stream a
        cold per-enumeration run produces."""
        from repro.guidance.lexical import LexicalGuidanceModel

        nlq = NLQuery.from_text("movies called 'Forrest Gump'")
        tsq = TableSketchQuery.build(types=["text"],
                                     rows=[["Forrest Gump"]])
        config = EnumeratorConfig(max_candidates=10, workers=2,
                                  verify_backend="processes")

        def run(pool_manager, cache):
            enumerator = Enumerator(
                movie_db, model=LexicalGuidanceModel(), nlq=nlq, tsq=tsq,
                config=config, probe_cache=cache,
                pool_manager=pool_manager)
            stream = [(c.confidence, c.index, str(c.query))
                      for c in enumerator.enumerate()]
            return stream, enumerator.telemetry

        cold_stream, cold_telemetry = run(None, None)
        assert not cold_telemetry.pool_reused
        with PoolManager() as manager:
            cache = SharedProbeCache()
            first, t1 = run(manager, cache)
            second, t2 = run(manager, cache)
            assert first == cold_stream
            assert second == cold_stream
            assert not t1.pool_reused  # spawned this enumeration
            assert t2.pool_reused      # warm by the second
            assert manager.stats["worker_spawns"] == 1
            assert t2.cross_task_probe_hits > 0
