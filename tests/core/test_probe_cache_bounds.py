"""Bounded-mode unit contract for :class:`SharedProbeCache`.

The bound must hold through *every* insert path (direct records, seed,
worker-delta merges), eviction must be LRU over actual access order,
warm (disk-seeded) entries must drop silently while non-warm evictions
flush to the attached sink — and the unbounded default must stay the
untouched seed behaviour.
"""

from __future__ import annotations

import pytest

from repro.core.verifier import SharedProbeCache
from repro.sqlir import ColumnRef


def fill(cache, count, prefix="probe"):
    for i in range(count):
        cache.record_probe(f"{prefix}-{i:03d}", i % 2 == 0)


class StubDb:
    """Just enough database for ``probe_keyed`` to execute against."""

    interrupt_armed = False

    def __init__(self):
        self.calls = []

    def exists(self, sql, params=()):
        self.calls.append(sql)
        return True


class TestBoundHolds:
    def test_inserts_never_exceed_the_bound(self):
        cache = SharedProbeCache(max_entries=5)
        fill(cache, 20)
        assert len(cache) == 5
        assert cache.evictions == 15

    def test_bound_counts_probes_and_minmax_together(self):
        cache = SharedProbeCache(max_entries=4)
        fill(cache, 3)
        for i in range(3):
            cache.record_minmax(ColumnRef(table="t", column=f"c{i}"),
                                (0, i))
        assert len(cache) == 4
        assert cache.evictions == 2

    def test_seed_respects_the_bound_keeping_the_most_recent(self):
        cache = SharedProbeCache(max_entries=3)
        cache.seed({f"probe-{i:03d}": True for i in range(10)}, {})
        assert len(cache) == 3
        # dict order is the recency channel: the *last* entries survive
        assert cache.peek("probe-009") is True
        assert cache.peek("probe-000") is None

    def test_merge_remote_respects_the_bound(self):
        """Worker deltas re-deliver entries the bound may since have
        evicted; the bound, not the delta, wins."""
        cache = SharedProbeCache(max_entries=4)
        cache.merge_remote(0, 0, 0, 0,
                           [(f"worker-{i}", True) for i in range(9)], [])
        assert len(cache) == 4
        assert cache.evictions == 5

    def test_invalid_bound_is_rejected(self):
        with pytest.raises(ValueError):
            SharedProbeCache(max_entries=0)
        with pytest.raises(ValueError):
            SharedProbeCache(max_entries=-3)

    def test_unbounded_default_never_evicts(self):
        cache = SharedProbeCache()
        fill(cache, 500)
        assert len(cache) == 500
        assert cache.evictions == 0
        assert not cache._lru  # no LRU bookkeeping off the bounded path


class TestLruOrder:
    def test_a_hit_refreshes_recency(self):
        cache = SharedProbeCache(max_entries=3)
        fill(cache, 3)  # probe-000 .. probe-002
        # touch the oldest, making probe-001 the eviction candidate
        assert cache.peek("probe-000") is True  # peek does not touch...
        cache.probe_keyed(StubDb(), "probe-000", "probe-000")  # a hit does
        cache.record_probe("probe-003", True)
        assert cache.peek("probe-000") is True
        assert cache.peek("probe-001") is None  # evicted as LRU
        assert cache.peek("probe-003") is True

    def test_export_emits_lru_order_when_bounded(self):
        cache = SharedProbeCache(max_entries=4)
        fill(cache, 4)
        cache.probe_keyed(StubDb(), "probe-000",
                          "probe-000")  # hit: now most recent
        probes, _, _ = cache.export()
        assert list(probes) == ["probe-001", "probe-002",
                                "probe-003", "probe-000"]

    def test_bounded_export_reseed_keeps_the_hot_entries(self):
        cache = SharedProbeCache(max_entries=4)
        fill(cache, 4)
        cache.probe_keyed(StubDb(), "probe-000", "probe-000")
        probes, minmax, _ = cache.export()
        reborn = SharedProbeCache(max_entries=2)
        reborn.seed(probes, minmax, warm=True)
        # the two most recently *used* survive the tighter bound
        assert reborn.peek("probe-000") is True
        assert reborn.peek("probe-003") is False  # fill's odd entries
        assert reborn.peek("probe-001") is None


class TestEvictionPersistence:
    def test_warm_entries_drop_silently(self):
        """Disk-seeded entries are already on disk: evicting one must
        not queue it for a redundant flush."""
        sink_batches = []
        cache = SharedProbeCache(max_entries=2)
        cache.set_eviction_sink(
            lambda probes, minmax: sink_batches.append((probes, minmax))
            or (len(probes) + len(minmax)))
        cache.seed({f"warm-{i}": True for i in range(2)}, {}, warm=True)
        fill(cache, 2)  # evicts both warm entries
        assert cache.evictions == 2
        flushed = cache.flush_evicted()
        assert flushed == 0
        assert not sink_batches

    def test_non_warm_evictions_reach_the_sink(self):
        sink_batches = []
        cache = SharedProbeCache(max_entries=2)
        cache.set_eviction_sink(
            lambda probes, minmax: sink_batches.append((probes, minmax))
            or (len(probes) + len(minmax)))
        fill(cache, 6)  # 4 non-warm evictions, buffered
        assert cache.evictions == 4
        assert cache.evicted_flushed == 0  # below FLUSH_BATCH: buffered
        assert cache.flush_evicted() == 4
        assert cache.evicted_flushed == 4
        (probes, minmax), = sink_batches
        assert set(probes) == {f"probe-{i:03d}" for i in range(4)}
        assert not minmax

    def test_flush_batches_at_the_threshold(self):
        sink_batches = []
        cache = SharedProbeCache(max_entries=2)
        cache.set_eviction_sink(
            lambda probes, minmax: sink_batches.append((probes, minmax))
            or (len(probes) + len(minmax)))
        fill(cache, cache.FLUSH_BATCH + 2)
        # crossing FLUSH_BATCH buffered evictions triggered a flush
        # without anyone calling flush_evicted()
        assert sink_batches
        assert cache.evicted_flushed >= cache.FLUSH_BATCH

    def test_failed_sink_counts_nothing_flushed(self):
        cache = SharedProbeCache(max_entries=2)
        cache.set_eviction_sink(lambda probes, minmax: 0)  # store down
        fill(cache, 6)
        assert cache.flush_evicted() == 0
        assert cache.evicted_flushed == 0
        assert cache.evictions == 4  # the evictions still happened

    def test_eviction_without_a_sink_buffers_nothing(self):
        cache = SharedProbeCache(max_entries=2)
        fill(cache, 10)
        assert cache.evictions == 8
        assert not cache._evicted_probes
        assert cache.flush_evicted() == 0


class TestAccounting:
    def test_approx_bytes_tracks_the_bound(self):
        unbounded = SharedProbeCache()
        fill(unbounded, 100)
        bounded = SharedProbeCache(max_entries=10)
        fill(bounded, 100)
        assert unbounded.approx_bytes() > bounded.approx_bytes() > 0

    def test_empty_cache_reports_zero_bytes(self):
        assert SharedProbeCache().approx_bytes() == 0

    def test_evicted_entry_is_a_miss_again(self):
        db = StubDb()
        cache = SharedProbeCache(max_entries=1)
        cache.probe_keyed(db, "alpha", "alpha")
        cache.probe_keyed(db, "beta", "beta")    # evicts alpha
        cache.probe_keyed(db, "alpha", "alpha")  # re-probes, no crash
        assert db.calls == ["alpha", "beta", "alpha"]
        assert cache.misses == 3
        assert cache.hits == 0
