"""Tests for guided partial query enumeration (Algorithm 1)."""

import pytest

from repro.core.enumerator import Enumerator, EnumeratorConfig
from repro.core.tsq import TableSketchQuery
from repro.guidance import CalibratedOracleModel, LexicalGuidanceModel
from repro.nlq.literals import NLQuery
from repro.sqlir.canon import queries_equal, signature
from repro.sqlir.parser import parse_sql


def run_enum(db, nlq, tsq=None, gold=None, seed=0, **config_overrides):
    config_overrides.setdefault("time_budget", 10.0)
    config_overrides.setdefault("max_candidates", 60)
    config = EnumeratorConfig(**config_overrides)
    enumerator = Enumerator(db, CalibratedOracleModel(seed=seed), nlq,
                            tsq=tsq, config=config, gold=gold,
                            task_id="enum-test")
    return list(enumerator.enumerate()), enumerator


class TestBasicEnumeration:
    def test_finds_simple_gold(self, movie_db):
        gold = parse_sql("SELECT title FROM movie WHERE year < 1994",
                         movie_db.schema)
        nlq = NLQuery.from_text("movie titles before 1994",
                                literals=[1994])
        tsq = TableSketchQuery.build(types=["text"])
        candidates, _ = run_enum(movie_db, nlq, tsq, gold)
        assert any(queries_equal(c.query, gold) for c in candidates)

    def test_candidates_are_complete_and_unique(self, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        nlq = NLQuery.from_text("all movie titles")
        candidates, _ = run_enum(movie_db, nlq, None, gold)
        signatures = [signature(c.query) for c in candidates]
        assert len(signatures) == len(set(signatures))
        assert all(c.query.is_complete for c in candidates)

    def test_confidence_non_increasing_in_emission_order(self, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        nlq = NLQuery.from_text("all movie titles")
        candidates, _ = run_enum(movie_db, nlq, None, gold)
        confidences = [c.confidence for c in candidates]
        assert all(a >= b - 1e-12 for a, b in
                   zip(confidences, confidences[1:]))

    def test_candidate_indices_sequential(self, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        nlq = NLQuery.from_text("all movie titles")
        candidates, _ = run_enum(movie_db, nlq, None, gold)
        assert [c.index for c in candidates] == list(
            range(len(candidates)))

    def test_max_candidates_respected(self, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        nlq = NLQuery.from_text("all movie titles")
        candidates, _ = run_enum(movie_db, nlq, None, gold,
                                 max_candidates=5)
        assert len(candidates) == 5

    def test_max_expansions_bounds_work(self, movie_db):
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        nlq = NLQuery.from_text("all movie titles")
        _, enumerator = run_enum(movie_db, nlq, None, gold,
                                 max_expansions=10)
        assert enumerator.expansions <= 10


class TestTsqPruning:
    def test_tsq_shrinks_candidate_list(self, movie_db):
        """The dual specification must prune relative to NLQ-only."""
        gold = parse_sql("SELECT title, year FROM movie WHERE year < 1994",
                         movie_db.schema)
        nlq = NLQuery.from_text("titles and years before 1994",
                                literals=[1994])
        rows = movie_db.execute_query(gold)
        tsq = TableSketchQuery.build(types=["text", "number"],
                                     rows=[list(rows[0])])
        with_tsq, _ = run_enum(movie_db, nlq, tsq, gold)
        without, _ = run_enum(movie_db, nlq, None, gold)
        assert len(with_tsq) <= len(without)
        # Every returned candidate satisfies the TSQ: soundness.
        for candidate in with_tsq:
            result_rows = movie_db.execute_query(candidate.query,
                                                 max_rows=5000)
            assert tsq.satisfied_by_rows(result_rows)

    def test_width_restriction_from_types(self, movie_db):
        gold = parse_sql("SELECT title, year FROM movie",
                         movie_db.schema)
        nlq = NLQuery.from_text("titles and years")
        tsq = TableSketchQuery.build(types=["text", "number"])
        candidates, _ = run_enum(movie_db, nlq, tsq, gold)
        assert candidates
        assert all(len(c.query.select) == 2 for c in candidates)

    def test_sorted_tsq_forces_order_by(self, movie_db):
        gold = parse_sql("SELECT title FROM movie ORDER BY year ASC",
                         movie_db.schema)
        nlq = NLQuery.from_text("titles from earliest")
        tsq = TableSketchQuery(types=None, tuples=(), sorted=True, limit=0)
        candidates, _ = run_enum(movie_db, nlq, tsq, gold)
        assert candidates
        assert all(c.query.order_by is not None for c in candidates)


class TestAblationModes:
    def test_noguide_still_finds_gold(self, movie_db):
        gold = parse_sql("SELECT title FROM movie WHERE year < 1994",
                         movie_db.schema)
        nlq = NLQuery.from_text("titles before 1994", literals=[1994])
        rows = movie_db.execute_query(gold)
        tsq = TableSketchQuery.build(types=["text"], rows=[[rows[0][0]]])
        candidates, _ = run_enum(movie_db, nlq, tsq, gold, guided=False,
                                 max_candidates=200, time_budget=20.0)
        assert any(queries_equal(c.query, gold) for c in candidates)

    def test_nopq_explores_more_states(self, movie_db):
        gold = parse_sql("SELECT title FROM movie WHERE year < 1994",
                         movie_db.schema)
        nlq = NLQuery.from_text("titles before 1994", literals=[1994])
        tsq = TableSketchQuery.build(types=["text"],
                                     rows=[["No Such Movie"]])
        # With an unsatisfiable TSQ, pruning stops the search almost
        # immediately; NoPQ keeps enumerating complete queries.
        pruned, enum_pruned = run_enum(movie_db, nlq, tsq, gold,
                                       max_expansions=3000)
        nopq, enum_nopq = run_enum(movie_db, nlq, tsq, gold,
                                   verify_partial=False,
                                   max_expansions=3000)
        assert not pruned and not nopq  # nothing satisfies the TSQ
        assert enum_nopq.expansions > enum_pruned.expansions


class TestJoinHandling:
    def test_join_query_reachable(self, movie_db):
        gold = parse_sql(
            "SELECT t1.name FROM actor t1 JOIN starring t2 ON "
            "t1.aid = t2.aid JOIN movie t3 ON t2.mid = t3.mid "
            "WHERE t3.title = 'Forrest Gump'", movie_db.schema)
        nlq = NLQuery.from_text('actors starring in "Forrest Gump"',
                                literals=["Forrest Gump"])
        tsq = TableSketchQuery.build(types=["text"], rows=[["Tom Hanks"]])
        candidates, _ = run_enum(movie_db, nlq, tsq, gold)
        assert any(queries_equal(c.query, gold) for c in candidates)

    def test_aggregate_join_extension_reachable(self, movie_db):
        """COUNT over a joined table not referenced by any column."""
        gold = parse_sql(
            "SELECT t1.name, COUNT(*) FROM actor t1 JOIN starring t2 ON "
            "t1.aid = t2.aid GROUP BY t1.name", movie_db.schema)
        nlq = NLQuery.from_text("number of movies for each actor")
        rows = movie_db.execute_query(gold)
        tsq = TableSketchQuery.build(types=["text", "number"],
                                     rows=[list(rows[0])])
        candidates, _ = run_enum(movie_db, nlq, tsq, gold,
                                 max_candidates=120, time_budget=20.0)
        assert any(queries_equal(c.query, gold) for c in candidates)


class TestLexicalBackend:
    def test_lexical_model_enumerates(self, movie_db):
        nlq = NLQuery.from_text("List the movie titles before 1994.",
                                literals=[1994])
        config = EnumeratorConfig(time_budget=8.0, max_candidates=30)
        enumerator = Enumerator(movie_db, LexicalGuidanceModel(), nlq,
                                tsq=TableSketchQuery.build(types=["text"]),
                                config=config)
        candidates = list(enumerator.enumerate())
        assert candidates
