"""Tests for the Section 7 future-work extensions: negative examples and
noisy-example tolerance."""

import pytest

from repro.core.tsq import TableSketchQuery
from repro.core.verifier import Verifier
from repro.errors import TSQError
from repro.sqlir.parser import parse_sql


class TestNegativeExamples:
    def test_negative_tuple_rejects_result(self):
        tsq = TableSketchQuery.build(rows=[["keep"]],
                                     negative_rows=[["drop"]])
        assert tsq.satisfied_by_rows([("keep",), ("other",)])
        assert not tsq.satisfied_by_rows([("keep",), ("drop",)])

    def test_negative_range_cell(self):
        tsq = TableSketchQuery.build(rows=[["a", None]],
                                     negative_rows=[[None, (100, 200)]])
        assert tsq.satisfied_by_rows([("a", 50)])
        assert not tsq.satisfied_by_rows([("a", 50), ("b", 150)])

    def test_negative_only_tsq_not_empty(self):
        tsq = TableSketchQuery.build(negative_rows=[["drop"]])
        assert not tsq.is_empty

    def test_width_checked_for_negatives(self):
        with pytest.raises(TSQError):
            TableSketchQuery.build(types=["text"],
                                   negative_rows=[["a", "b"]])

    def test_verifier_rejects_query_producing_negative(self, movie_db):
        tsq = TableSketchQuery.build(
            rows=[["Forrest Gump"]],
            negative_rows=[["Gravity"]])
        verifier = Verifier(movie_db, tsq=tsq)
        all_titles = parse_sql("SELECT title FROM movie", movie_db.schema)
        old_only = parse_sql("SELECT title FROM movie WHERE year < 2000",
                             movie_db.schema)
        assert not verifier.verify(all_titles).ok
        assert verifier.verify(old_only).ok


class TestTolerance:
    def test_negative_tolerance_rejected(self):
        with pytest.raises(TSQError):
            TableSketchQuery(tolerance=-1)

    def test_tolerance_allows_one_noisy_example(self):
        tsq = TableSketchQuery.build(rows=[["real"], ["bogus"]],
                                     tolerance=1)
        assert tsq.satisfied_by_rows([("real",)])

    def test_strict_mode_still_fails(self):
        tsq = TableSketchQuery.build(rows=[["real"], ["bogus"]])
        assert not tsq.satisfied_by_rows([("real",)])

    def test_tolerance_budget_exhausted(self):
        tsq = TableSketchQuery.build(rows=[["real"], ["bogus"], ["fake"]],
                                     tolerance=1)
        assert not tsq.satisfied_by_rows([("real",)])

    def test_sorted_tolerance_skips_out_of_order_example(self):
        tsq = TableSketchQuery.build(rows=[["a"], ["z"], ["b"]],
                                     sorted=True, tolerance=1)
        # 'z' is noise; 'a' then 'b' appear in order.
        assert tsq.satisfied_by_rows([("a",), ("b",)])

    def test_sorted_strict_rejects_out_of_order(self):
        tsq = TableSketchQuery.build(rows=[["a"], ["z"], ["b"]],
                                     sorted=True)
        assert not tsq.satisfied_by_rows([("a",), ("b",)])

    def test_verifier_tolerates_noisy_example(self, movie_db):
        """A misremembered fact no longer kills the gold query."""
        gold = parse_sql("SELECT title FROM movie", movie_db.schema)
        noisy = TableSketchQuery.build(
            rows=[["Forrest Gump"], ["No Such Movie"]], tolerance=1)
        strict = TableSketchQuery.build(
            rows=[["Forrest Gump"], ["No Such Movie"]])
        assert Verifier(movie_db, tsq=noisy).verify(gold).ok
        assert not Verifier(movie_db, tsq=strict).verify(gold).ok

    def test_partial_pruning_respects_tolerance(self, movie_db):
        from repro.sqlir.ast import HOLE, Where

        noisy = TableSketchQuery.build(
            rows=[["Forrest Gump"], ["No Such Movie"]], tolerance=1)
        verifier = Verifier(movie_db, tsq=noisy)
        partial = parse_sql("SELECT title FROM movie",
                            movie_db.schema).replace(
            where=Where(logic=HOLE, predicates=(HOLE,)))
        assert verifier.verify(partial).ok


class TestSessionIntegration:
    def test_refine_with_negative_rows(self, movie_db):
        from repro.core import Duoquest, EnumeratorConfig
        from repro.guidance import CalibratedOracleModel
        from repro.interaction import DuoquestSession
        from repro.nlq import NLQuery

        system = Duoquest(movie_db, model=CalibratedOracleModel(seed=1),
                          config=EnumeratorConfig(time_budget=5.0,
                                                  max_candidates=15))
        session = DuoquestSession.open(movie_db, system)
        session.submit(NLQuery.from_text("titles before 1994",
                                         literals=[1994]))
        result = session.refine_tsq(negative_rows=[["Gravity"]])
        tsq = session.rounds[-1].tsq
        assert tsq.negative_tuples
        for candidate in result.candidates:
            rows = movie_db.execute_query(candidate.query, max_rows=5000)
            assert ("Gravity",) not in rows
