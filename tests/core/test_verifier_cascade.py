"""Cascade golden tests + shared probe cache concurrency.

The first half pins *which* stage of the ascending-cost cascade
(Algorithm 3) prunes each of a fixed set of doomed candidates — a
regression net over stage ordering: a reordering or a stage silently
going no-op shows up as a different ``failed_stage``.

The second half exercises the :class:`SharedProbeCache` under
concurrent access: many verifier forks on separate threads and
connections must agree on probe outcomes, and repeat probes must be
answered from the cache.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.tsq import TableSketchQuery
from repro.core.verifier import (
    STAGE_BY_COLUMN,
    STAGE_BY_ROW,
    STAGE_CLAUSES,
    STAGE_COLUMN_TYPES,
    STAGE_FULL,
    STAGE_LITERALS,
    STAGE_SEMANTICS,
    SharedProbeCache,
    Verifier,
    VerifierConfig,
)
from repro.nlq.literals import Literal
from repro.sqlir.parser import parse_sql


def q(sql, db):
    return parse_sql(sql, db.schema)


#: (case id, SQL, TSQ kwargs, literals, treat_as_partial, expected stage)
#: Each candidate is doomed by construction; the golden part is *where*
#: the cascade catches it.
DOOMED = (
    ("clauses/order-by-forbidden",
     "SELECT title FROM movie ORDER BY year",
     dict(rows=[["Forrest Gump"]], sorted=False), (), False,
     STAGE_CLAUSES),
    ("clauses/limit-exceeds-k",
     "SELECT title FROM movie ORDER BY year LIMIT 9",
     dict(rows=[["Forrest Gump"]], sorted=True, limit=2), (), False,
     STAGE_CLAUSES),
    ("semantics/avg-of-text",
     "SELECT AVG(title) FROM movie",
     None, (), False,
     STAGE_SEMANTICS),
    ("column_types/number-for-text-annotation",
     "SELECT year FROM movie",
     dict(types=["text"], rows=[["Forrest Gump"]]), (), False,
     STAGE_COLUMN_TYPES),
    ("column_types/width-mismatch",
     "SELECT title, year FROM movie",
     dict(types=["text"], rows=[["Forrest Gump"]]), (), False,
     STAGE_COLUMN_TYPES),
    ("by_column/unknown-cell-value",
     "SELECT title FROM movie",
     dict(rows=[["No Such Movie Anywhere"]]), (), False,
     STAGE_BY_COLUMN),
    ("by_row/cells-never-cooccur",
     # 'Forrest Gump' (1994) and year 2013 both exist column-wise, but
     # never on one row; only the row-wise probe can see that, and it
     # only runs for partial queries (complete ones go to stage 7).
     "SELECT title, year FROM movie",
     dict(rows=[["Forrest Gump", 2013]]), (), True,
     STAGE_BY_ROW),
    ("literals/tagged-literal-unused",
     "SELECT title FROM movie WHERE year = 2013",
     dict(rows=[["Gravity"]]), (Literal(1994),), False,
     STAGE_LITERALS),
    ("full_satisfaction/result-misses-example",
     "SELECT title FROM movie WHERE year = 2013",
     dict(rows=[["Forrest Gump"]]), (), False,
     STAGE_FULL),
)


class TestCascadeGoldens:
    @pytest.mark.parametrize(
        "sql,tsq_kwargs,literals,partial,stage",
        [case[1:] for case in DOOMED],
        ids=[case[0] for case in DOOMED])
    def test_doomed_candidate_pruned_at_pinned_stage(
            self, movie_db, sql, tsq_kwargs, literals, partial, stage):
        tsq = (TableSketchQuery.build(**tsq_kwargs)
               if tsq_kwargs is not None else None)
        verifier = Verifier(movie_db, tsq=tsq, literals=literals)
        result = verifier.verify(q(sql, movie_db),
                                 treat_as_partial=partial)
        assert not result.ok
        assert result.failed_stage == stage
        assert verifier.stats == {stage: 1}

    def test_every_stage_with_a_prune_is_pinned(self):
        """The golden set covers each prunable stage of the cascade."""
        pinned = {case[5] for case in DOOMED}
        assert pinned == {STAGE_CLAUSES, STAGE_SEMANTICS,
                          STAGE_COLUMN_TYPES, STAGE_BY_COLUMN,
                          STAGE_BY_ROW, STAGE_LITERALS, STAGE_FULL}

    def test_sound_candidate_passes_all_stages(self, movie_db):
        tsq = TableSketchQuery.build(rows=[["Forrest Gump"]])
        verifier = Verifier(movie_db, tsq=tsq)
        assert verifier.verify(
            q("SELECT title FROM movie WHERE year = 1994", movie_db)).ok
        assert verifier.stats == {"pass": 1}


def _snapshots_supported() -> bool:
    from repro.db.database import Database

    return Database.supports_snapshots()


class TestSharedProbeCacheConcurrency:
    PROBES = [
        "SELECT 1 FROM movie WHERE title = 'Forrest Gump' LIMIT 1",
        "SELECT 1 FROM movie WHERE title = 'Gravity' LIMIT 1",
        "SELECT 1 FROM movie WHERE title = 'Nope' LIMIT 1",
        "SELECT 1 FROM actor WHERE name = 'Tom Hanks' LIMIT 1",
        "SELECT 1 FROM actor WHERE name = 'Nobody' LIMIT 1",
    ]

    @pytest.mark.skipif(not _snapshots_supported(),
                        reason="sqlite3 build lacks serialize()")
    def test_concurrent_probes_agree_and_hit_cache(self, movie_db):
        cache = SharedProbeCache()
        payload = movie_db.snapshot()
        local = threading.local()
        rounds = 40

        def worker(_):
            db = getattr(local, "db", None)
            if db is None:
                from repro.db.database import Database
                db = local.db = Database.from_snapshot(movie_db.schema,
                                                       payload)
            return tuple(cache.probe(db, sql) for sql in self.PROBES)

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(worker, range(rounds)))

        assert len(set(outcomes)) == 1, "workers disagreed on probes"
        assert outcomes[0] == (True, True, False, True, False)
        total = rounds * len(self.PROBES)
        assert cache.hits + cache.misses == total
        # Each distinct probe is computed at most once per racing
        # thread; everything else must be a cache hit.
        assert cache.misses <= len(self.PROBES) * 8
        assert cache.hits >= total - len(self.PROBES) * 8
        assert cache.hit_rate > 0.5

    def test_serial_hit_rate_is_exact(self, movie_db):
        cache = SharedProbeCache()
        for _ in range(10):
            for sql in self.PROBES:
                cache.probe(movie_db, sql)
        assert cache.misses == len(self.PROBES)
        assert cache.hits == 9 * len(self.PROBES)
        assert cache.hit_rate == pytest.approx(0.9)

    @pytest.mark.skipif(not _snapshots_supported(),
                        reason="sqlite3 build lacks serialize()")
    def test_forked_verifiers_share_one_cache(self, movie_db):
        """Verifier.fork shares the probe cache: a probe answered by one
        fork is a hit for every other fork."""
        tsq = TableSketchQuery.build(rows=[["Forrest Gump"]])
        primary = Verifier(movie_db, tsq=tsq)
        query = q("SELECT title FROM movie", movie_db)
        assert primary.verify(query, treat_as_partial=True).ok
        misses_after_primary = primary.probe_cache.misses

        fork = primary.fork(movie_db.fork())
        assert fork.probe_cache is primary.probe_cache
        assert fork.verify(query, treat_as_partial=True).ok
        assert primary.probe_cache.misses == misses_after_primary
        assert primary.probe_cache.hits > 0
