"""The fault-injection subsystem and the hardening it forces.

PR 10's contract: every injected fault is *receipted* — counted when it
fires, and booked either ``absorbed`` (a bounded retry or recreate cured
it) or ``surfaced`` (it landed in a visible degrade counter, warning, or
clean error). The degrade-ladder audit at the bottom walks every named
fault point and fails if any disposition goes missing: a point whose
``injected != absorbed + surfaced`` is a silent failure path.
"""

from __future__ import annotations

import sqlite3

import pytest

from repro import faults
from repro.core import Duoquest
from repro.core.enumerator import EnumeratorConfig
from repro.core.search.cachestore import PersistentProbeCache
from repro.core.search.parallel import (
    PersistentThreadPool,
    RespawnBreaker,
)
from repro.core.tsq import TableSketchQuery
from repro.core.verifier import SharedProbeCache
from repro.db.database import Database
from repro.errors import ExecutionError, ExecutionTimeout
from repro.faults import FaultPlan, FaultInjector, RetryPolicy
from repro.nlq.literals import NLQuery
from repro.sqlir import to_sql

from tests.conftest import build_movie_db


def synthesize(db, config):
    nlq = NLQuery.from_text("titles before 1994", literals=(1994,))
    tsq = TableSketchQuery.build(types=["text"],
                                 rows=[["Forrest Gump"]])
    system = Duoquest(db, config=config)
    try:
        return system.synthesize(nlq, tsq)
    finally:
        system.close()


@pytest.fixture(autouse=True)
def clean_injector():
    """Every test starts and ends without a global injector."""
    faults.uninstall()
    yield
    faults.uninstall()


@pytest.fixture
def db():
    # A private database per test: the injector mutates execution
    # behaviour, so the session-scoped movie_db must not be shared here.
    return build_movie_db()


class TestPlanGrammar:
    def test_parses_rules_seed_and_options(self):
        plan = FaultPlan.parse(
            "seed=7; db.execute:locked:rate=0.25,times=3,after=2 ;"
            "guidance.connect:refused")
        assert plan.seed == 7
        assert len(plan.rules) == 2
        rule = plan.rules[0]
        assert (rule.point, rule.mode) == ("db.execute", "locked")
        assert rule.rate == 0.25 and rule.times == 3 and rule.after == 2
        assert plan.rules[1].point == "guidance.connect"

    @pytest.mark.parametrize("spec,message", [
        ("nosuch.point:crash", "unknown fault point"),
        ("db.execute:melt", "no mode"),
        ("db.execute", "expected"),
        ("db.execute:locked:rate", "bad option"),
        ("db.execute:locked:rate=lots", "bad value"),
        ("db.execute:locked:color=red", "unknown option"),
        ("seed=x;db.execute:locked", "bad seed"),
        ("seed=3", "no rules"),
        ("", "non-empty"),
        ("db.execute:locked:rate=0", "rate"),
        ("db.execute:locked:times=0", "times"),
    ])
    def test_rejects_malformed_specs(self, spec, message):
        with pytest.raises(ValueError, match=message):
            FaultPlan.parse(spec)


class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=0.3)
        first = list(policy.delays())
        assert first == list(policy.delays())
        assert len(first) == 4
        assert all(0.0 <= d <= 0.3 for d in first)
        # Exponential shape survives the jitter given the 0.5 band.
        assert policy.delay_for(3) > policy.delay_for(0)

    def test_call_retries_then_propagates_the_final_failure(self):
        attempts = []
        slept = []

        def flaky():
            attempts.append(1)
            raise OSError("boom")

        policy = RetryPolicy(attempts=3, base_delay=0.01)
        with pytest.raises(OSError):
            policy.call(flaky, retryable=(OSError,), sleep=slept.append)
        assert len(attempts) == 3
        assert len(slept) == 2

    def test_call_returns_first_success(self):
        outcomes = iter([OSError("once"), "ok"])

        def once():
            outcome = next(outcomes)
            if isinstance(outcome, Exception):
                raise outcome
            return outcome

        policy = RetryPolicy(attempts=3, base_delay=0.0)
        assert policy.call(once, retryable=(OSError,),
                           sleep=lambda _: None) == "ok"

    def test_should_retry_vetoes(self):
        def fail():
            raise OSError("permanent")

        policy = RetryPolicy(attempts=5, base_delay=0.0)
        calls = []
        with pytest.raises(OSError):
            policy.call(fail, retryable=(OSError,),
                        should_retry=lambda exc: False,
                        sleep=calls.append)
        assert calls == []


class TestInjectorDeterminism:
    def test_same_plan_draws_identically(self):
        plan = FaultPlan.parse("seed=11;db.execute:locked:rate=0.3")
        a, b = FaultInjector(plan), FaultInjector(plan)
        draws_a = [a.draw("db.execute") is not None for _ in range(200)]
        draws_b = [b.draw("db.execute") is not None for _ in range(200)]
        assert draws_a == draws_b
        assert any(draws_a) and not all(draws_a)

    def test_after_and_times_bound_the_rule(self):
        plan = FaultPlan.parse("db.execute:error:after=2,times=3")
        injector = FaultInjector(plan)
        draws = [injector.draw("db.execute") is not None
                 for _ in range(10)]
        assert draws == [False, False, True, True, True,
                         False, False, False, False, False]
        assert injector.injected == {"db.execute": 3}

    def test_points_draw_independently(self):
        plan = FaultPlan.parse(
            "db.execute:locked:rate=0.5;cachestore.load:busy:rate=0.5")
        injector = FaultInjector(plan)
        db_draws = [injector.draw("db.execute") is not None
                    for _ in range(64)]
        # A fresh injector consulted only at the other point must not
        # be perturbed by db.execute's rng stream.
        other = FaultInjector(plan)
        other_db = [other.draw("db.execute") is not None
                    for _ in range(64)]
        assert db_draws == other_db


class TestDatabaseExecuteHardening:
    def test_bounded_rule_is_absorbed_by_retries(self, db):
        injector = faults.install("db.execute:locked:times=2")
        rows = db.execute("SELECT COUNT(*) FROM movie")
        assert rows == [(40,)]
        assert db.stats.retries == 2
        assert injector.injected == {"db.execute": 2}
        assert injector.absorbed == {"db.execute": 2}
        assert injector.surfaced == {}

    def test_exhausted_retries_surface_a_transient_error(self, db):
        injector = faults.install("db.execute:error")
        with pytest.raises(ExecutionError) as excinfo:
            db.execute("SELECT COUNT(*) FROM movie")
        assert faults.is_transient(excinfo.value)
        # attempts=3: the injection fired on every try; two were
        # absorbed by retries, the third surfaced.
        assert injector.injected == {"db.execute": 3}
        assert injector.absorbed == {"db.execute": 2}
        assert injector.surfaced == {"db.execute": 1}

    def test_timeout_mode_surfaces_as_execution_timeout(self, db):
        injector = faults.install("db.execute:timeout:times=1")
        with pytest.raises(ExecutionTimeout):
            with db.interruptible(250):
                db.execute("SELECT COUNT(*) FROM movie")
        assert injector.injected == {"db.execute": 1}
        assert injector.surfaced == {"db.execute": 1}

    def test_disabled_injector_leaves_execute_untouched(self, db):
        rows = db.execute("SELECT COUNT(*) FROM movie")
        assert rows == [(40,)]
        assert db.stats.retries == 0


class TestProbeCachePoisoning:
    def test_transient_failure_is_never_memoised(self, db):
        faults.install("db.execute:error")
        cache = SharedProbeCache()
        with pytest.raises(ExecutionError):
            cache.probe_keyed(db, "k1", "SELECT 1 FROM movie")
        assert cache.peek("k1") is None
        # The fault plan expires nothing here (rate=1, unbounded), so
        # clear it and re-probe: the truthful answer lands in the cache.
        faults.uninstall()
        assert cache.probe_keyed(db, "k1", "SELECT 1 FROM movie") is True
        assert cache.peek("k1") is True

    def test_nontransient_failure_still_stays_sound(self, db):
        cache = SharedProbeCache()
        # An unexecutable probe draws no conclusion: pruning soundness
        # requires outcome True (the pre-existing contract).
        assert cache.probe_keyed(db, "bad", "SELECT nope FROM movie") \
            is True


class TestCachestoreHardening:
    def seed_store(self, tmp_path, db):
        store = PersistentProbeCache(tmp_path)
        cache, _ = store.warm_cache(db)
        cache.probe_keyed(db, "k", "SELECT 1 FROM movie")
        assert store.save(db, cache) is not None
        return store

    def test_injected_busy_load_is_absorbed(self, tmp_path, db):
        store = self.seed_store(tmp_path, db)
        injector = faults.install("cachestore.load:busy:times=1")
        entries = store.load(db)
        assert entries is not None and entries[0]
        assert injector.injected == {"cachestore.load": 1}
        assert injector.absorbed == {"cachestore.load": 1}

    def test_injected_corrupt_load_cold_starts(self, tmp_path, db,
                                               caplog):
        store = self.seed_store(tmp_path, db)
        injector = faults.install("cachestore.load:corrupt:times=1")
        assert store.load(db) is None
        assert injector.surfaced == {"cachestore.load": 1}
        assert "cold start" in caplog.text

    def test_injected_busy_save_exhausts_to_a_warned_skip(
            self, tmp_path, db, caplog):
        store = self.seed_store(tmp_path, db)
        injector = faults.install("cachestore.save:busy")
        cache, _ = store.warm_cache(db)
        cache.probe_keyed(db, "k2", "SELECT 2 FROM movie")
        assert store.save(db, cache) is None
        # attempts=3: two retries absorbed, the final failure surfaced.
        assert injector.injected == {"cachestore.save": 3}
        assert injector.absorbed == {"cachestore.save": 2}
        assert injector.surfaced == {"cachestore.save": 1}

    def test_injected_corrupt_save_recreates_the_store(self, tmp_path,
                                                       db, caplog):
        store = self.seed_store(tmp_path, db)
        injector = faults.install("cachestore.save:torn:times=1")
        cache, _ = store.warm_cache(db)
        cache.probe_keyed(db, "k2", "SELECT 2 FROM movie")
        # The recreate path unlinks the torn file and re-upserts.
        assert store.save(db, cache) is not None
        assert injector.surfaced == {"cachestore.save": 1}
        assert "recreating" in caplog.text or "corrupt" in caplog.text
        faults.uninstall()
        entries = store.load(db)
        assert entries is not None and "k2" in entries[0]

    def test_held_lock_retries_then_cold_starts(self, tmp_path, db,
                                                monkeypatch, caplog):
        """A real writer holding the store lock: load retries under the
        policy, then degrades to a cold start — never an exception."""
        store = self.seed_store(tmp_path, db)
        monkeypatch.setattr(PersistentProbeCache, "BUSY_TIMEOUT_MS", 1)
        monkeypatch.setattr(
            PersistentProbeCache, "RETRY_POLICY",
            RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02))
        holder = sqlite3.connect(store.path_for(db))
        try:
            holder.execute("BEGIN EXCLUSIVE")
            assert store.load(db) is None
        finally:
            holder.rollback()
            holder.close()
        assert "locked" in caplog.text

    def test_held_lock_save_never_raises(self, tmp_path, db,
                                         monkeypatch, caplog):
        store = self.seed_store(tmp_path, db)
        monkeypatch.setattr(PersistentProbeCache, "BUSY_TIMEOUT_MS", 1)
        monkeypatch.setattr(
            PersistentProbeCache, "RETRY_POLICY",
            RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02))
        cache, _ = store.warm_cache(db)
        cache.probe_keyed(db, "k2", "SELECT 2 FROM movie")
        holder = sqlite3.connect(store.path_for(db))
        try:
            holder.execute("BEGIN EXCLUSIVE")
            assert store.save(db, cache) is None
        finally:
            holder.rollback()
            holder.close()
        assert "locked" in caplog.text


class TestRespawnBreaker:
    def test_trips_after_threshold_in_window(self):
        clock = [0.0]
        breaker = RespawnBreaker(threshold=3, window=30.0,
                                 clock=lambda: clock[0])
        assert breaker.record() is False
        clock[0] = 1.0
        assert breaker.record() is False
        clock[0] = 2.0
        assert breaker.record() is True
        assert breaker.tripped
        assert breaker.retires == 3

    def test_old_marks_age_out_of_the_window(self):
        clock = [0.0]
        breaker = RespawnBreaker(threshold=3, window=30.0,
                                 clock=lambda: clock[0])
        breaker.record()
        breaker.record()
        clock[0] = 31.0
        assert breaker.record() is False
        assert not breaker.tripped

    def test_pool_opens_the_breaker_after_repeated_retires(self, db):
        from concurrent.futures import ThreadPoolExecutor

        pool = PersistentThreadPool(db, workers=2)
        try:
            for _ in range(PersistentThreadPool.BREAKER_THRESHOLD):
                # retire() only counts a live executor (the manager
                # respawns one per lease in production).
                pool.executor = ThreadPoolExecutor(max_workers=1)
                pool.retire("simulated worker failure")
            assert "circuit breaker open" in pool.unavailable_reason
            assert pool.breaker.tripped
        finally:
            pool.close()


class TestDegradeLadderAudit:
    """Every named fault point reconciles: injected == absorbed +
    surfaced, with at least one visible disposition. A point failing
    this audit has a silent failure path."""

    def assert_reconciled(self, counters, point, minimum=1):
        injected = counters["injected"].get(point, 0)
        absorbed = counters["absorbed"].get(point, 0)
        surfaced = counters["surfaced"].get(point, 0)
        assert injected >= minimum, f"{point} never injected"
        assert injected == absorbed + surfaced, (
            f"{point} lost receipts: injected={injected}, "
            f"absorbed={absorbed}, surfaced={surfaced}")

    def test_db_execute_reconciles(self, db):
        faults.install("db.execute:locked:times=2")
        db.execute("SELECT 1 FROM movie LIMIT 1")
        self.assert_reconciled(faults.counters(), "db.execute")

    def test_cachestore_points_reconcile(self, tmp_path, db):
        store = PersistentProbeCache(tmp_path)
        cache, _ = store.warm_cache(db)
        cache.probe_keyed(db, "k", "SELECT 1 FROM movie")
        store.save(db, cache)
        faults.install(
            "cachestore.load:busy:times=1;cachestore.save:torn:times=1")
        cache.probe_keyed(db, "k2", "SELECT 2 FROM movie")
        store.save(db, cache)
        store.load(db)
        counters = faults.counters()
        self.assert_reconciled(counters, "cachestore.load")
        self.assert_reconciled(counters, "cachestore.save")

    def test_guidance_points_reconcile(self):
        injector = faults.install(
            "guidance.connect:refused:times=1;"
            "guidance.transport:garbage:times=1")
        with pytest.raises(OSError):
            faults.fire_guidance_connect(injector)
        with pytest.raises(ValueError):
            faults.fire_guidance_transport(injector)
        counters = faults.counters()
        self.assert_reconciled(counters, "guidance.connect")
        self.assert_reconciled(counters, "guidance.transport")

    def test_daemon_connection_point_reconciles(self):
        injector = faults.install(
            "daemon.connection:vanish:times=1")
        rule = injector.draw("daemon.connection")
        assert rule is not None and rule.mode == "vanish"
        injector.note_surfaced("daemon.connection")
        self.assert_reconciled(faults.counters(), "daemon.connection")

    @pytest.mark.skipif(not Database.supports_snapshots(),
                        reason="no snapshot support")
    def test_pool_worker_crash_reconciles_via_the_primary(self, db):
        """A crashed process worker cannot return its counters; the
        primary recognises the marker and books the injection, and the
        lease visibly degrades to inline verification."""
        result = synthesize(db, EnumeratorConfig(
            time_budget=5.0, max_candidates=4, workers=2,
            verify_backend="processes",
            fault_plan="pool.worker:crash:times=1"))
        assert result.candidates  # the run survived the crash
        self.assert_reconciled(faults.counters(), "pool.worker")
        assert result.telemetry.faults_injected >= 1


class TestEquivalenceWhenDisabled:
    def test_no_plan_means_no_counters_and_identical_streams(self, db):
        baseline = synthesize(db, EnumeratorConfig(
            time_budget=5.0, max_candidates=6))
        again = synthesize(db, EnumeratorConfig(
            time_budget=5.0, max_candidates=6, fault_plan=None))
        assert [(c.index, c.confidence, to_sql(c.query)) for c in
                baseline.candidates] == \
            [(c.index, c.confidence, to_sql(c.query)) for c in
             again.candidates]
        assert faults.ACTIVE is None
        assert faults.injected_total() == 0
        assert baseline.telemetry.faults_injected == 0
        assert baseline.telemetry.transient_retries == 0
