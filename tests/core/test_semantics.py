"""Tests for the Table 4 semantic pruning rules.

Each rule is exercised with (a) the paper's bad example, which must fire,
and (b) the paper's suggested alternative, which must pass.
"""

import pytest

from repro.core.semantics import DEFAULT_RULES, Rule, RuleSet, check_semantics
from repro.db import make_schema
from repro.sqlir.parser import parse_sql
from repro.sqlir.types import ColumnType as T


@pytest.fixture(scope="module")
def schema():
    # The actor schema used by Table 4's examples.
    return make_schema(
        "table4",
        tables={"actor": [("aid", T.NUMBER), ("name", T.TEXT),
                          ("birth_yr", T.NUMBER)],
                "starring": [("aid", T.NUMBER), ("mid", T.NUMBER)]},
        foreign_keys=[("starring", "aid", "actor", "aid")],
        primary_keys={"actor": "aid", "starring": None},
    )


def fired(sql, schema):
    return {v.rule for v in check_semantics(parse_sql(sql, schema), schema)}


class TestInconsistentPredicates:
    def test_conflicting_equalities_fire(self, schema):
        assert "inconsistent-predicates" in fired(
            "SELECT name FROM actor WHERE name = 'Tom Hanks' AND "
            "name = 'Brad Pitt'", schema)

    def test_or_alternative_passes(self, schema):
        assert "inconsistent-predicates" not in fired(
            "SELECT name FROM actor WHERE name = 'Tom Hanks' OR "
            "name = 'Brad Pitt'", schema)

    def test_empty_numeric_interval_fires(self, schema):
        assert "inconsistent-predicates" in fired(
            "SELECT name FROM actor WHERE birth_yr < 1950 AND "
            "birth_yr > 1960", schema)

    def test_satisfiable_interval_passes(self, schema):
        assert "inconsistent-predicates" not in fired(
            "SELECT name FROM actor WHERE birth_yr > 1950 AND "
            "birth_yr < 1960", schema)


class TestConstantOutputColumn:
    def test_projected_equality_column_fires(self, schema):
        assert "constant-output-column" in fired(
            "SELECT name, birth_yr FROM actor WHERE birth_yr = 1950",
            schema)

    def test_alternative_passes(self, schema):
        assert "constant-output-column" not in fired(
            "SELECT name FROM actor WHERE birth_yr = 1950", schema)

    def test_or_logic_not_constant(self, schema):
        assert "constant-output-column" not in fired(
            "SELECT name, birth_yr FROM actor WHERE birth_yr = 1950 OR "
            "birth_yr = 1960", schema)


class TestUngroupedAggregation:
    def test_mixed_projection_fires(self, schema):
        assert "ungrouped-aggregation" in fired(
            "SELECT birth_yr, COUNT(*) FROM actor", schema)

    def test_group_by_alternative_passes(self, schema):
        assert "ungrouped-aggregation" not in fired(
            "SELECT birth_yr, COUNT(*) FROM actor GROUP BY birth_yr",
            schema)


class TestGroupBySingletonGroups:
    def test_primary_key_group_fires(self, schema):
        assert "groupby-singleton-groups" in fired(
            "SELECT aid, MAX(birth_yr) FROM actor GROUP BY aid", schema)

    def test_alternative_passes(self, schema):
        assert fired("SELECT aid, birth_yr FROM actor", schema) == set()

    def test_joined_pk_group_allowed(self, schema):
        """With a join the PK group can hold several rows."""
        assert "groupby-singleton-groups" not in fired(
            "SELECT t1.aid, COUNT(*) FROM actor t1 JOIN starring t2 ON "
            "t1.aid = t2.aid GROUP BY t1.aid", schema)


class TestUnnecessaryGroupBy:
    def test_group_without_aggregate_fires(self, schema):
        assert "unnecessary-groupby" in fired(
            "SELECT name FROM actor GROUP BY name", schema)

    def test_alternative_passes(self, schema):
        assert fired("SELECT name FROM actor", schema) == set()


class TestAggregateTypeUsage:
    def test_avg_on_text_fires(self, schema):
        assert "aggregate-type-usage" in fired(
            "SELECT AVG(name) FROM actor", schema)

    def test_count_on_text_allowed(self, schema):
        assert "aggregate-type-usage" not in fired(
            "SELECT COUNT(name) FROM actor", schema)

    def test_max_on_number_allowed(self, schema):
        assert "aggregate-type-usage" not in fired(
            "SELECT MAX(birth_yr) FROM actor", schema)


class TestFaultyTypeComparison:
    def test_inequality_on_text_fires(self, schema):
        assert "faulty-type-comparison" in fired(
            "SELECT name FROM actor WHERE name >= 'Tom Hanks'", schema)

    def test_like_on_number_fires(self, schema):
        assert "faulty-type-comparison" in fired(
            "SELECT birth_yr FROM actor WHERE birth_yr LIKE '%1956%'",
            schema)

    def test_like_on_text_allowed(self, schema):
        assert "faulty-type-comparison" not in fired(
            "SELECT name FROM actor WHERE name LIKE '%Tom%'", schema)


class TestStructuralRules:
    def test_duplicate_predicates_fire(self, schema):
        assert "duplicate-predicates" in fired(
            "SELECT name FROM actor WHERE birth_yr = 1950 AND "
            "birth_yr = 1950", schema)

    def test_duplicate_projections_fire(self, schema):
        assert "duplicate-projections" in fired(
            "SELECT name, name FROM actor", schema)


class TestRuleSet:
    def test_default_covers_table4(self):
        names = {rule.name for rule in DEFAULT_RULES}
        assert {"inconsistent-predicates", "constant-output-column",
                "ungrouped-aggregation", "groupby-singleton-groups",
                "unnecessary-groupby", "aggregate-type-usage",
                "faulty-type-comparison"} <= names

    def test_extension(self, schema):
        custom = Rule("no-actors", "domain rule",
                      lambda q, s: "banned" if "actor" in
                      q.referenced_tables() else None)
        extended = RuleSet().extended([custom])
        query = parse_sql("SELECT name FROM actor", schema)
        assert any(v.rule == "no-actors"
                   for v in extended.check(query, schema))
        assert RuleSet().ok(query, schema)

    def test_partial_queries_tolerated(self, schema):
        from repro.sqlir.ast import Query

        assert check_semantics(Query.empty(), schema) == []
