"""Probe planner: plan cache, canonical keys, round fusion, fallbacks.

The contract under test (see ``repro.core.search.planner``): probes
sharing a structural signature compile once and share one parameterised
statement and one probe-cache entry; round prefetching fuses sibling
probes into multi-probe statements whose per-arm outcomes are exactly
what individual execution would have produced; the ``fuse`` mode
compiles each group into one single-scan aggregate statement and stages
row probes behind the fused column-stage answers; a fused statement
that cannot execute degrades down the ladder (fuse -> UNION ALL batch
-> individual probing); and none of it can change a verification
outcome.
"""

from __future__ import annotations

import pytest

from repro.core.search.planner import (
    MAX_FUSED_ARMS,
    PROBE_PLANNER_MODES,
    PlannerCounters,
    ProbePlanner,
    validate_probe_planner,
)
from repro.core.tsq import TableSketchQuery
from repro.core.verifier import SharedProbeCache, Verifier, VerifierConfig
from repro.sqlir.canon import canonicalize_probe, probe_plan_key
from repro.sqlir.parser import parse_sql

from tests.conftest import build_movie_db


def probe_sql(year: object) -> str:
    return f"SELECT 1 FROM movie WHERE year = {year} LIMIT 1"


class TestValidation:
    def test_modes_are_closed(self):
        for mode in PROBE_PLANNER_MODES:
            assert validate_probe_planner(mode) == mode
        with pytest.raises(ValueError):
            validate_probe_planner("fused")

    def test_off_never_constructs_a_planner(self):
        with pytest.raises(ValueError):
            ProbePlanner("off")

    def test_enumerator_config_rejects_bad_mode(self):
        from repro.core.enumerator import EnumeratorConfig

        with pytest.raises(ValueError):
            EnumeratorConfig(probe_planner="nope")

    def test_verifier_builds_planner_from_config(self, movie_db):
        verifier = Verifier(movie_db,
                            config=VerifierConfig(probe_planner="plan"))
        assert verifier.planner is not None
        assert verifier.planner.mode == "plan"
        off = Verifier(movie_db)
        assert off.planner is None

    def test_forks_share_the_planner(self, movie_db):
        verifier = Verifier(movie_db,
                            config=VerifierConfig(probe_planner="batch"))
        fork = verifier.fork(movie_db)
        assert fork.planner is verifier.planner


class TestPlanCache:
    def test_compiles_once_per_structure(self):
        planner = ProbePlanner("plan")
        first = planner.plan_for(probe_sql(1994))
        second = planner.plan_for(probe_sql(2013))
        assert first.sql == second.sql
        assert first.params != second.params
        assert planner.counters.compiles == 1
        assert planner.counters.plan_hits == 1

    def test_distinct_structures_compile_separately(self):
        planner = ProbePlanner("plan")
        planner.plan_for(probe_sql(1994))
        planner.plan_for("SELECT 1 FROM movie WHERE revenue = 678 LIMIT 1")
        assert planner.counters.compiles == 2
        assert planner.counters.plan_hits == 0

    def test_renderings_of_the_same_probe_share_a_cache_entry(self):
        """Whitespace renderings of the same probe are one probe: the
        planner executes once and serves the repeat from the shared
        canonical entry."""
        db = build_movie_db()
        planner = ProbePlanner("plan")
        cache = SharedProbeCache()
        before = db.stats.snapshot()
        first = planner.probe(db, cache, probe_sql(1994))
        second = planner.probe(
            db, cache,
            "SELECT 1  FROM movie\n  WHERE year = 1994  LIMIT 1")
        assert first is second is True
        assert db.stats.delta_since(before).statements == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_int_and_float_literals_do_not_share_a_cache_entry(self):
        """``= 5`` and ``= 5.0`` share a *plan* but never a cache
        entry: against a TEXT-affinity column SQLite text-converts the
        operand and the two probes genuinely differ, so folding them
        onto one key would cache a wrong answer."""
        db = build_movie_db()
        db.insert_rows("actor", [(997, "5", "male", 1970)])
        planner = ProbePlanner("plan")
        cache = SharedProbeCache()
        int_sql = "SELECT 1 FROM actor WHERE name >= 5 LIMIT 1"
        float_sql = "SELECT 1 FROM actor WHERE name >= 5.0 LIMIT 1"
        int_probe = planner.probe(db, cache, int_sql)
        float_probe = planner.probe(db, cache, float_sql)
        assert int_probe == db.exists(int_sql)
        assert float_probe == db.exists(float_sql)
        # Neither probe may be served from the other's entry.
        assert cache.misses == 2 and cache.hits == 0

    def test_plan_outcomes_match_raw_execution(self):
        db = build_movie_db()
        planner = ProbePlanner("plan")
        cache = SharedProbeCache()
        for sql in (probe_sql(1994), probe_sql(1066),
                    "SELECT 1 FROM movie WHERE title = 'Gravity' "
                    "COLLATE NOCASE LIMIT 1",
                    "SELECT 1 FROM movie WHERE title = 'No Such' "
                    "COLLATE NOCASE LIMIT 1"):
            assert planner.probe(db, cache, sql) == db.exists(sql)

    def test_counter_deltas_fold_remotely(self):
        planner = ProbePlanner("plan")
        planner.plan_for(probe_sql(1994))
        before = planner.counters.copy()
        planner.merge_remote(
            PlannerCounters(2, 7, 1, 5, 0, 3, 1).as_tuple())
        delta = planner.counters.delta_since(before)
        assert (delta.compiles, delta.plan_hits, delta.batch_stmts,
                delta.batched_probes, delta.batch_fallbacks,
                delta.fused_groups, delta.fuse_fallbacks) == \
            (2, 7, 1, 5, 0, 3, 1)


def make_verifier(db, mode="batch", rows=(("Forrest Gump",),)):
    tsq = TableSketchQuery.build(types=["text"], rows=[list(r) for r in rows])
    return Verifier(db, tsq=tsq,
                    config=VerifierConfig(probe_planner=mode))


class TestRoundBatching:
    def test_prefetch_fuses_and_seeds_the_cache(self):
        db = build_movie_db()
        verifier = make_verifier(db, rows=[["Forrest Gump"], ["Gravity"]])
        queries = [
            parse_sql("SELECT title FROM movie WHERE year < 1995",
                      db.schema),
            parse_sql("SELECT title FROM movie WHERE year > 2000",
                      db.schema),
        ]
        jobs = [(query, False) for query in queries]
        before = db.stats.snapshot()
        answered = verifier.planner.prefetch(verifier, jobs)
        assert answered > 1
        delta = db.stats.delta_since(before)
        # All answered probes rode in fused statements, strictly fewer
        # statements than probes answered.
        assert delta.per_kind.get("probe_batch", 0) >= 1
        assert delta.statements < answered
        assert verifier.planner.counters.batch_stmts >= 1
        # The cascade now runs entirely from the cache: no new probes.
        before = db.stats.snapshot()
        for query in queries:
            assert verifier.verify(query).ok or True
        delta = db.stats.delta_since(before)
        assert delta.per_kind.get("probe", 0) == 0

    def test_fused_outcomes_match_individual_execution(self):
        db = build_movie_db()
        verifier = make_verifier(db, rows=[["Forrest Gump"], ["No Such"]])
        query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                          db.schema)
        pending = verifier.pending_probe_sql(query)
        assert len(pending) >= 2
        verifier.planner.prefetch(verifier, [(query, False)])
        for sql in pending:
            param_sql, params = canonicalize_probe(sql)
            key = probe_plan_key(param_sql, params)
            cached = verifier.probe_cache.peek(key)
            assert cached is not None
            assert cached == db.exists(sql)

    def test_prefetch_skips_cached_and_duplicate_probes(self):
        db = build_movie_db()
        verifier = make_verifier(db)
        query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                          db.schema)
        verifier.planner.prefetch(verifier, [(query, False)])
        stmts = verifier.planner.counters.batch_stmts
        # Same round again: everything cached, nothing to fuse.
        answered = verifier.planner.prefetch(verifier,
                                             [(query, False), (query, False)])
        assert answered == 0
        assert verifier.planner.counters.batch_stmts == stmts

    def test_plan_mode_never_prefetches(self):
        db = build_movie_db()
        verifier = make_verifier(db, mode="plan")
        query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                          db.schema)
        assert verifier.planner.prefetch(verifier, [(query, False)]) == 0

    def test_fused_failure_falls_back_to_individual_probes(self,
                                                           monkeypatch):
        """An unexecutable fused statement must not poison anything:
        the planner abandons it and the cascade's per-probe error
        semantics (no conclusion -> satisfied) take over unchanged."""
        from repro.errors import ExecutionError

        db = build_movie_db()
        verifier = make_verifier(db, rows=[["Forrest Gump"], ["Gravity"]])
        query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                          db.schema)
        original = type(db).execute

        def failing(self, sql, params=(), max_rows=None, kind="query"):
            if kind == "probe_batch":
                raise ExecutionError("fused statement rejected")
            return original(self, sql, params, max_rows=max_rows, kind=kind)

        monkeypatch.setattr(type(db), "execute", failing)
        assert verifier.planner.prefetch(verifier, [(query, False)]) == 0
        assert verifier.planner.counters.batch_fallbacks == 1
        # The cascade still runs on individual probes and reaches the
        # same verdict it would without any planner (here: the full
        # check correctly rejects, since 'Gravity' is not in year<1995).
        result = verifier.verify(query)
        assert verifier.probe_cache.misses > 0  # probed individually
        monkeypatch.setattr(type(db), "execute", original)
        plain = Verifier(db, tsq=verifier.tsq).verify(query)
        assert (result.ok, result.failed_stage) == \
            (plain.ok, plain.failed_stage)

    def test_oversized_rounds_split_into_capped_statements(self):
        """More pending probes than MAX_FUSED_ARMS split into several
        fused statements, none exceeding the arm cap."""
        db = build_movie_db()
        planner = ProbePlanner("batch")
        cache = SharedProbeCache()

        class FakeVerifier:
            probe_cache = cache

            def __init__(self, database):
                self.db = database

            def pending_probe_sql(self, query, treat_as_partial=False):
                return [probe_sql(year) for year in range(1900, 1900 + 150)]

        fake = FakeVerifier(db)
        before = db.stats.snapshot()
        answered = planner.prefetch(fake, [(None, False)])
        assert answered == 150
        delta = db.stats.delta_since(before)
        expected = -(-150 // MAX_FUSED_ARMS)
        assert delta.per_kind.get("probe_batch", 0) == expected


class TestFuseMode:
    """``fuse``: one single-scan statement per group, staged so the
    fused column-stage answers prune row-probe compilation, with the
    degrade ladder (fuse -> UNION ALL batch -> individual probing) and
    the timeout path (nothing memoised, candidates stay alive) exact."""

    @staticmethod
    def partial_jobs(db, years=(1990, 1995, 2000, 2005)):
        queries = [parse_sql(
            f"SELECT title FROM movie WHERE year < {year}", db.schema)
            for year in years]
        return queries, [(query, True) for query in queries]

    def test_fuse_executes_one_scan_per_group(self):
        db = build_movie_db()
        verifier = make_verifier(db, mode="fuse")
        queries, jobs = self.partial_jobs(db)
        before = db.stats.snapshot()
        answered = verifier.planner.prefetch(verifier, jobs)
        delta = db.stats.delta_since(before)
        # Four distinct row probes over one join skeleton: ONE grouped
        # single-scan statement answered all of them.
        assert answered == 4
        assert delta.per_kind.get("probe_fuse", 0) == 1
        assert delta.statements == 1
        counters = verifier.planner.counters
        assert counters.fused_groups == 1
        assert counters.batched_probes == 4
        assert counters.fuse_fallbacks == 0
        assert counters.batch_stmts == 0

    def test_fused_answers_match_individual_execution(self):
        db = build_movie_db()
        verifier = make_verifier(db, mode="fuse",
                                 rows=[["Forrest Gump"], ["Gravity"]])
        queries, jobs = self.partial_jobs(db)
        verifier.planner.prefetch(verifier, jobs)
        checked = 0
        for query in queries:
            for sql in verifier.pending_probe_sql(query, True):
                key = probe_plan_key(*canonicalize_probe(sql))
                cached = verifier.probe_cache.peek(key)
                if cached is not None:
                    assert cached == db.exists(sql)
                    checked += 1
        assert checked > 0

    def test_fuse_seeds_minmax_bounds_without_meta_statements(self):
        """AVG range checks ride in the fused scan as MIN/MAX aggregate
        pairs: the cascade then finds the bounds cached, so no per-
        column ``meta`` statement is ever executed."""
        db = build_movie_db()
        tsq = TableSketchQuery.build(types=["number", "number"],
                                     rows=[[1995, 400.0]])
        verifier = Verifier(db, tsq=tsq,
                            config=VerifierConfig(probe_planner="fuse"))
        query = parse_sql("SELECT AVG(year), AVG(revenue) FROM movie",
                          db.schema)
        staged = verifier.pending_probe_stages(query)
        assert len(staged.avg_columns) == 2
        before = db.stats.snapshot()
        answered = verifier.planner.prefetch(verifier, [(query, False)])
        assert answered == 2  # two columns' bounds from one scan
        delta = db.stats.delta_since(before)
        assert delta.per_kind.get("probe_fuse", 0) == 1
        result = verifier.verify(query)
        delta = db.stats.delta_since(before)
        assert delta.per_kind.get("meta", 0) == 0
        # Same verdict as a planner-off verifier paying meta statements.
        plain = Verifier(db, tsq=tsq).verify(query)
        assert (result.ok, result.failed_stage) == \
            (plain.ok, plain.failed_stage)

    def test_fused_column_answers_prune_row_compilation(self):
        """The staged prefetch: both column arms land False in the
        fused scan, the candidate is refuted by peeked answers alone,
        and its row probes are never compiled — not in the plan cache,
        not in the probe cache."""
        db = build_movie_db()
        verifier = make_verifier(db, mode="fuse",
                                 rows=[["No Such A"], ["No Such B"]])
        query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                          db.schema)
        staged = verifier.pending_probe_stages(query, True)
        row_sqls = staged.row_probes()
        assert len(staged.column_probes) == 2 and len(row_sqls) == 2
        answered = verifier.planner.prefetch(verifier, [(query, True)])
        assert answered == 2  # the two column arms only
        assert verifier.column_stage_refuted(query)
        for sql in row_sqls:
            key = probe_plan_key(*canonicalize_probe(sql))
            assert verifier.probe_cache.peek(key) is None
            assert sql not in verifier.planner._plans
        # The cascade reaches the refutation the peek predicted.
        result = verifier.verify(query, treat_as_partial=True)
        assert not result.ok and result.failed_stage == "by_column"

    def test_fuse_failure_degrades_to_batch_fusion(self, monkeypatch):
        """First rung of the ladder: a failed single-scan statement
        retries its arms as the ``batch`` mode's UNION ALL fusion, with
        the degradation visible in the counters — and the answers still
        exactly what individual execution would produce."""
        from repro.errors import ExecutionError

        db = build_movie_db()
        verifier = make_verifier(db, mode="fuse")
        queries, jobs = self.partial_jobs(db)
        original = type(db).execute

        def failing(self, sql, params=(), max_rows=None, kind="query"):
            if kind == "probe_fuse":
                raise ExecutionError("grouped scan rejected")
            return original(self, sql, params, max_rows=max_rows,
                            kind=kind)

        monkeypatch.setattr(type(db), "execute", failing)
        answered = verifier.planner.prefetch(verifier, jobs)
        assert answered == 4  # the UNION ALL retry answered every arm
        counters = verifier.planner.counters
        assert counters.fused_groups == 0
        assert counters.fuse_fallbacks == 1
        assert counters.batch_stmts == 1
        assert counters.batch_fallbacks == 0
        assert counters.batched_probes == 4
        monkeypatch.setattr(type(db), "execute", original)
        for query in queries:
            for sql in verifier.pending_probe_sql(query, True):
                key = probe_plan_key(*canonicalize_probe(sql))
                cached = verifier.probe_cache.peek(key)
                if cached is not None:
                    assert cached == db.exists(sql)

    def test_fuse_and_batch_failure_fall_back_to_individual(
            self, monkeypatch):
        """Bottom of the ladder: when the grouped scan AND the UNION
        ALL retry both fail, nothing is memoised and the cascade's
        per-probe error semantics take over unchanged."""
        from repro.errors import ExecutionError

        db = build_movie_db()
        verifier = make_verifier(db, mode="fuse")
        queries, jobs = self.partial_jobs(db)
        original = type(db).execute

        def failing(self, sql, params=(), max_rows=None, kind="query"):
            if kind in ("probe_fuse", "probe_batch"):
                raise ExecutionError("fused statement rejected")
            return original(self, sql, params, max_rows=max_rows,
                            kind=kind)

        monkeypatch.setattr(type(db), "execute", failing)
        assert verifier.planner.prefetch(verifier, jobs) == 0
        counters = verifier.planner.counters
        assert counters.fuse_fallbacks == 1
        assert counters.batch_fallbacks == 1
        assert counters.fused_groups == counters.batch_stmts == 0
        assert len(verifier.probe_cache) == 0  # nothing memoised
        # The cascade probes individually and reaches the verdicts a
        # planner-off verifier reaches.
        results = [verifier.verify(q, treat_as_partial=True)
                   for q in queries]
        monkeypatch.setattr(type(db), "execute", original)
        plain = Verifier(db, tsq=verifier.tsq)
        expected = [plain.verify(q, treat_as_partial=True)
                    for q in queries]
        assert [(r.ok, r.failed_stage) for r in results] == \
            [(r.ok, r.failed_stage) for r in expected]

    def test_fuse_timeout_memoises_nothing(self, monkeypatch):
        """A fused scan that blows the probe budget (``--cost-order
        abort`` interplay) draws no conclusion for ANY arm: nothing is
        memoised, no fallback statement runs, and every candidate stays
        alive for the cascade's own per-probe budget."""
        from repro.errors import ExecutionError

        db = build_movie_db()
        tsq = TableSketchQuery.build(types=["text"],
                                     rows=[["Forrest Gump"]])
        verifier = Verifier(db, tsq=tsq, config=VerifierConfig(
            probe_planner="fuse", cost_order="abort",
            probe_timeout_ms=60_000))
        queries, jobs = self.partial_jobs(db)
        original = type(db).execute

        def interrupted(self, sql, params=(), max_rows=None,
                        kind="query"):
            if kind == "probe_fuse":
                # What sqlite raises when the budget timer interrupts a
                # running statement; the interruptible() guard converts
                # it to ExecutionTimeout at scope exit.
                raise ExecutionError("interrupted")
            return original(self, sql, params, max_rows=max_rows,
                            kind=kind)

        monkeypatch.setattr(type(db), "execute", interrupted)
        timeouts_before = db.stats.timeouts
        assert verifier.planner.prefetch(verifier, jobs) == 0
        counters = verifier.planner.counters
        # A timeout is not a degradation: no fallback rung runs and no
        # outcome is recorded for any arm.
        assert counters.fuse_fallbacks == 0
        assert counters.batch_fallbacks == 0
        assert counters.fused_groups == counters.batch_stmts == 0
        assert len(verifier.probe_cache) == 0
        assert db.stats.timeouts == timeouts_before + 1
        # Candidates stay alive: the cascade re-probes each arm under
        # its own per-probe budget and reaches the planner-off
        # verdicts, with no timeout flag stamped on any result.
        results = [verifier.verify(q, treat_as_partial=True)
                   for q in queries]
        assert not any(r.timed_out for r in results)
        monkeypatch.setattr(type(db), "execute", original)
        plain = Verifier(db, tsq=tsq)
        expected = [plain.verify(q, treat_as_partial=True)
                    for q in queries]
        assert [(r.ok, r.failed_stage) for r in results] == \
            [(r.ok, r.failed_stage) for r in expected]

    def test_single_statement_groups_are_left_to_the_cascade(self):
        """A group whose payload is one statement's worth saves nothing
        by fusing: the planner leaves it alone (same statement count
        either way, simpler failure surface)."""
        db = build_movie_db()
        verifier = make_verifier(db, mode="fuse")
        query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                          db.schema)
        # Complete query: one column probe, no row stage -> one lone arm.
        assert verifier.planner.prefetch(verifier, [(query, False)]) == 0
        assert verifier.planner.counters.fused_groups == 0


class TestPendingProbeSuperset:
    """pending_probe_sql mirrors the cascade's probe builders: every
    probe the cascade executes must be in the pending list (superset in
    the other direction is allowed — the cascade stops early)."""

    @pytest.mark.parametrize("sql,rows", [
        ("SELECT title FROM movie WHERE year < 1995", [["Forrest Gump"]]),
        ("SELECT title FROM movie WHERE year > 2000", [["Gravity"]]),
        ("SELECT name FROM actor WHERE birth_year < 1960",
         [["Tom Hanks"], ["Nobody"]]),
    ])
    def test_cascade_probes_are_predicted(self, sql, rows):
        db = build_movie_db()
        verifier = make_verifier(db, mode="plan", rows=rows)
        query = parse_sql(sql, db.schema)
        predicted = {probe_plan_key(*canonicalize_probe(raw))
                     for raw in verifier.pending_probe_sql(query)}
        verifier.verify(query)
        issued = set(verifier.probe_cache.export()[0])
        assert issued <= predicted

    def test_prefilter_mirrors_cheap_stage_rejections(self):
        """A query the probe-free stages reject yields no pending
        probes — the prefetch must not pay for doomed candidates."""
        db = build_movie_db()
        tsq = TableSketchQuery.build(types=["number"], rows=[[1994]])
        verifier = Verifier(db, tsq=tsq,
                            config=VerifierConfig(probe_planner="batch"))
        # Projects text but the TSQ demands a number column: rejected
        # by VerifyColumnTypes before any probe would run.
        query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                          db.schema)
        assert verifier.pending_probe_sql(query) == []
