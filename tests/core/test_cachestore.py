"""Disk-backed probe-cache store: keying, failure modes, concurrency.

The contract under test (see ``repro.core.search.cachestore``): a store
entry is only ever reused for byte-identical database contents (stale
hashes invalidate), a broken store file degrades to a cold start with a
logged warning (never a crash, never a poisoned cache), concurrent
writers merge instead of clobbering each other, and — new with the
SQLite backing — saves are incremental upserts instead of whole-file
rewrites.
"""

from __future__ import annotations

import logging
import sqlite3

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.search.cachestore import PersistentProbeCache
from repro.core.verifier import SharedProbeCache, Verifier
from repro.core.tsq import TableSketchQuery
from repro.db.database import Database
from repro.sqlir.ast import ColumnRef

from tests.conftest import build_movie_db, build_movie_schema


def populated_cache(db) -> SharedProbeCache:
    """A cache with real probe traffic from a small verification run."""
    cache = SharedProbeCache()
    tsq = TableSketchQuery.build(types=["text"], rows=[["Forrest Gump"]])
    verifier = Verifier(db, tsq=tsq, probe_cache=cache)
    from repro.sqlir.parser import parse_sql

    verifier.verify(parse_sql(
        "SELECT title FROM movie WHERE year < 1995", db.schema))
    assert len(cache) > 0
    return cache


class TestContentHash:
    def test_stable_within_a_connection(self, movie_db):
        assert movie_db.content_hash() == movie_db.content_hash()

    def test_identical_contents_hash_identically(self, movie_db):
        assert build_movie_db().content_hash() == movie_db.content_hash()

    def test_snapshot_roundtrip_preserves_hash(self, movie_db):
        if not Database.supports_snapshots():
            pytest.skip("sqlite build cannot snapshot databases")
        clone = Database.from_snapshot(movie_db.schema, movie_db.snapshot())
        assert clone.content_hash() == movie_db.content_hash()

    def test_insert_invalidates_hash(self):
        db = build_movie_db()
        before = db.content_hash()
        db.insert_rows("movie", [(999, "New Movie", 2024, 1)])
        assert db.content_hash() != before

    def test_mutating_execute_invalidates_hash(self):
        """The hash keys persisted probe caches, so any write path —
        even UPDATE/DELETE routed through execute() — must drop the
        memo, or a stale store would pass validation."""
        db = build_movie_db()
        before = db.content_hash()
        db.execute("UPDATE movie SET year = 1900 WHERE mid = 1")
        assert db.content_hash() != before
        after = db.content_hash()
        db.execute("SELECT * FROM movie")  # reads keep the memo
        assert db.content_hash() == after

    def test_row_order_does_not_matter(self):
        a = Database.create(build_movie_db().schema)
        b = Database.create(build_movie_db().schema)
        rows = [(1, "Tom Hanks", "male", 1956),
                (2, "Sandra Bullock", "female", 1964)]
        a.insert_rows("actor", rows)
        b.insert_rows("actor", list(reversed(rows)))
        assert a.content_hash() == b.content_hash()

    def test_hashing_does_not_touch_stats(self):
        db = build_movie_db()
        before = db.stats.snapshot()
        db.content_hash()
        delta = db.stats.delta_since(before)
        assert delta.statements == 0


#: Arbitrary small ``movie`` row payloads (pk assigned positionally, so
#: every generated table is valid and every row distinct).
_ROW_PAYLOADS = st.lists(
    st.tuples(st.text(alphabet="abcXYZ '%_", max_size=8),
              st.integers(min_value=1900, max_value=2030),
              st.integers(min_value=0, max_value=999)),
    min_size=1, max_size=6)


def _movie_rows(payloads):
    return [(index + 1, title, year, revenue)
            for index, (title, year, revenue) in enumerate(payloads)]


def _db_with(rows):
    db = Database.create(build_movie_schema())
    db.insert_rows("movie", rows)
    return db


class TestContentHashProperties:
    """Property-style contract: the hash keys persisted probe caches,
    so it must see exactly the row *set* — any insertion-order
    permutation hashes identically, any single-cell change differently.
    """

    @settings(max_examples=25, deadline=None)
    @given(payloads=_ROW_PAYLOADS,
           rnd=st.randoms(use_true_random=False))
    def test_any_insert_order_permutation_hashes_identically(self,
                                                             payloads,
                                                             rnd):
        rows = _movie_rows(payloads)
        shuffled = list(rows)
        rnd.shuffle(shuffled)
        assert _db_with(rows).content_hash() == \
            _db_with(shuffled).content_hash()

    @settings(max_examples=25, deadline=None)
    @given(payloads=_ROW_PAYLOADS, data=st.data())
    def test_batch_boundaries_do_not_matter(self, payloads, data):
        """The same rows inserted in one call or split across several
        insert_rows calls are the same contents."""
        rows = _movie_rows(payloads)
        split = data.draw(st.integers(min_value=0,
                                      max_value=len(rows)))
        chunked = Database.create(build_movie_schema())
        chunked.insert_rows("movie", rows[:split])
        chunked.insert_rows("movie", rows[split:])
        assert chunked.content_hash() == _db_with(rows).content_hash()

    @settings(max_examples=25, deadline=None)
    @given(payloads=_ROW_PAYLOADS, data=st.data())
    def test_any_single_cell_mutation_changes_the_hash(self, payloads,
                                                       data):
        rows = _movie_rows(payloads)
        row_index = data.draw(st.integers(min_value=0,
                                          max_value=len(rows) - 1))
        column_index = data.draw(st.integers(min_value=0, max_value=3))
        mutated_row = list(rows[row_index])
        if column_index == 0:
            mutated_row[0] = len(rows) + 1       # a fresh, unused pk
        elif column_index == 1:
            mutated_row[1] = mutated_row[1] + "x"
        else:
            mutated_row[column_index] = mutated_row[column_index] + 1
        mutated = list(rows)
        mutated[row_index] = tuple(mutated_row)
        assert _db_with(rows).content_hash() != \
            _db_with(mutated).content_hash()


class TestRoundTrip:
    def test_save_then_load(self, tmp_path, movie_db):
        from repro.sqlir.canon import canonicalize_probe, probe_plan_key

        store = PersistentProbeCache(tmp_path)
        cache = populated_cache(movie_db)
        path = store.save(movie_db, cache)
        assert path is not None and path.exists()
        probes, minmax = cache.export()[:2]
        loaded = store.load(movie_db)
        assert loaded is not None
        # The store is dual-keyed: every cached entry round-trips, and
        # raw-SQL keys additionally persist under their canonical twin
        # (same outcome), so a planner-mode run warm-starts from an
        # off-mode store.
        for key, outcome in probes.items():
            assert loaded[0][key] == outcome
        extras = set(loaded[0]) - set(probes)
        assert extras == {probe_plan_key(*canonicalize_probe(key))
                          for key in probes if "\x1f\x1f" not in key}
        for key in extras:
            raw = [k for k in probes if "\x1f\x1f" not in k
                   and probe_plan_key(*canonicalize_probe(k)) == key]
            assert {probes[k] for k in raw} == {loaded[0][key]}
        assert loaded[1] == minmax

    def test_warm_cache_counts_warm_hits(self, tmp_path, movie_db):
        store = PersistentProbeCache(tmp_path)
        store.save(movie_db, populated_cache(movie_db))
        warm, loaded = store.warm_cache(movie_db)
        assert loaded == len(warm) > 0
        # Re-running the same verification is served from warm entries.
        tsq = TableSketchQuery.build(types=["text"],
                                     rows=[["Forrest Gump"]])
        verifier = Verifier(movie_db, tsq=tsq, probe_cache=warm)
        from repro.sqlir.parser import parse_sql

        verifier.verify(parse_sql(
            "SELECT title FROM movie WHERE year < 1995", movie_db.schema))
        assert warm.warm_start_hits > 0
        assert warm.misses == 0

    def test_missing_store_is_silent_cold_start(self, tmp_path, movie_db,
                                                caplog):
        store = PersistentProbeCache(tmp_path / "never-written")
        with caplog.at_level(logging.WARNING):
            cache, loaded = store.warm_cache(movie_db)
        assert loaded == 0 and len(cache) == 0
        assert not caplog.records  # absence is normal, not a warning

    def test_minmax_values_round_trip_typed(self, tmp_path, movie_db):
        """Bounds keep their Python types (int/float/str/None) across
        the store — they are JSON-encoded inside the SQLite rows."""
        store = PersistentProbeCache(tmp_path)
        cache = SharedProbeCache()
        ref = ColumnRef(table="movie", column="year")
        text_ref = ColumnRef(table="movie", column="title")
        empty_ref = ColumnRef(table="actor", column="gender")
        cache.seed({}, {ref: (1970, 2020.5),
                        text_ref: ("Alpha", "Zulu"),
                        empty_ref: (None, None)})
        store.save(movie_db, cache)
        loaded = store.load(movie_db)
        assert loaded is not None
        assert loaded[1][ref] == (1970, 2020.5)
        assert loaded[1][text_ref] == ("Alpha", "Zulu")
        assert loaded[1][empty_ref] == (None, None)

    def test_canonical_planner_keys_round_trip(self, tmp_path, movie_db):
        """The store composes with the probe planner: canonical
        ``(signature, params)`` keys (which embed control-character
        separators) persist and warm-start byte-identically."""
        from repro.sqlir.canon import canonicalize_probe, probe_plan_key

        key = probe_plan_key(*canonicalize_probe(
            "SELECT 1 FROM movie WHERE year = 1994 LIMIT 1"))
        store = PersistentProbeCache(tmp_path)
        cache = SharedProbeCache()
        cache.seed({key: True}, {})
        store.save(movie_db, cache)
        loaded = store.load(movie_db)
        assert loaded is not None
        assert loaded[0] == {key: True}


class TestStaleHashInvalidation:
    def test_changed_contents_miss_the_store(self, tmp_path):
        db = build_movie_db()
        store = PersistentProbeCache(tmp_path)
        store.save(db, populated_cache(db))
        db.insert_rows("movie", [(998, "Late Arrival", 2025, 3)])
        # New contents → new hash → the old file is simply not found.
        assert store.load(db) is None

    def test_tampered_recorded_hash_invalidates(self, tmp_path, movie_db,
                                                caplog):
        """Even if a file lands under the right name (copied, renamed),
        a mismatched recorded hash is rejected with a warning."""
        store = PersistentProbeCache(tmp_path)
        path = store.save(movie_db, populated_cache(movie_db))
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE meta SET value = ? WHERE key = 'content_hash'",
                ("0" * 64,))
        with caplog.at_level(logging.WARNING):
            assert store.load(movie_db) is None
        assert "stale hash" in caplog.text


class TestCorruptionSafety:
    @pytest.mark.parametrize("content", [
        "",                       # empty file (no SQLite header)
        "not a database at all",  # garbage bytes
        "SQLite format 3\x00",    # truncated header only
    ])
    def test_bad_store_falls_back_cold_with_warning(self, tmp_path,
                                                    movie_db, caplog,
                                                    content):
        store = PersistentProbeCache(tmp_path)
        store.cache_dir.mkdir(parents=True, exist_ok=True)
        store.path_for(movie_db).write_text(content)
        with caplog.at_level(logging.WARNING):
            cache, loaded = store.warm_cache(movie_db)  # must not raise
        assert loaded == 0 and len(cache) == 0
        assert caplog.records, "corruption must be visible, not silent"

    def test_valid_sqlite_with_missing_tables_is_cold(self, tmp_path,
                                                      movie_db, caplog):
        store = PersistentProbeCache(tmp_path)
        store.cache_dir.mkdir(parents=True, exist_ok=True)
        with sqlite3.connect(store.path_for(movie_db)) as connection:
            connection.execute("CREATE TABLE unrelated (x)")
        with caplog.at_level(logging.WARNING):
            assert store.load(movie_db) is None
        assert "malformed" in caplog.text

    def test_future_format_is_cold(self, tmp_path, movie_db, caplog):
        store = PersistentProbeCache(tmp_path)
        path = store.save(movie_db, populated_cache(movie_db))
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE meta SET value = '99' WHERE key = 'format'")
        with caplog.at_level(logging.WARNING):
            assert store.load(movie_db) is None
        assert "format" in caplog.text

    def test_corrupt_store_is_overwritten_by_next_save(self, tmp_path,
                                                       movie_db):
        store = PersistentProbeCache(tmp_path)
        store.cache_dir.mkdir(parents=True, exist_ok=True)
        store.path_for(movie_db).write_text("garbage")
        assert store.save(movie_db, populated_cache(movie_db)) is not None
        assert store.load(movie_db) is not None

    def test_unwritable_directory_warns_not_crashes(self, tmp_path,
                                                    movie_db, caplog):
        blocker = tmp_path / "blocked"
        blocker.write_text("a file where the cache dir should be")
        store = PersistentProbeCache(blocker)
        with caplog.at_level(logging.WARNING):
            assert store.save(movie_db, populated_cache(movie_db)) is None
        assert "could not persist" in caplog.text


class TestConcurrentWriters:
    def test_second_writer_merges_first_writers_entries(self, tmp_path,
                                                        movie_db):
        """Two runs saving different entry sets end with the union on
        disk — neither clobbers the other."""
        store = PersistentProbeCache(tmp_path)
        first = SharedProbeCache()
        first.seed({"SELECT 1 FROM movie WHERE year = 1994 LIMIT 1": True},
                   {})
        second = SharedProbeCache()
        second.seed({"SELECT 1 FROM movie WHERE year = 2013 LIMIT 1": True},
                    {ColumnRef(table="movie", column="year"): (1970, 2020)})
        store.save(movie_db, first)
        store.save(movie_db, second)
        loaded = store.load(movie_db)
        assert loaded is not None
        probes, minmax = loaded
        # Each writer's raw key plus its canonical twin (dual-keying).
        assert len(probes) == 4
        assert "SELECT 1 FROM movie WHERE year = 1994 LIMIT 1" in probes
        assert "SELECT 1 FROM movie WHERE year = 2013 LIMIT 1" in probes
        assert len(minmax) == 1

    def test_interleaved_writers_keep_a_valid_store(self, tmp_path,
                                                    movie_db):
        """Saves are transactional: whatever interleaving happens, the
        file on disk is always a complete, readable store."""
        store = PersistentProbeCache(tmp_path)
        for i in range(8):
            cache = SharedProbeCache()
            cache.seed({f"SELECT 1 FROM movie WHERE mid = {i} LIMIT 1":
                        bool(i % 2)}, {})
            store.save(movie_db, cache)
            assert store.load(movie_db) is not None
        probes, _ = store.load(movie_db)
        # 8 raw keys, each with its canonical twin (dual-keying).
        assert len(probes) == 16
        assert all(f"SELECT 1 FROM movie WHERE mid = {i} LIMIT 1" in probes
                   for i in range(8))


class TestIncrementalUpsert:
    def test_saves_write_only_the_delta(self, tmp_path, movie_db):
        """The ROADMAP item the SQLite backing closes: a save must not
        rewrite the whole store. Re-saving a superset cache leaves the
        existing rows untouched and inserts exactly the new ones."""
        store = PersistentProbeCache(tmp_path)
        first = SharedProbeCache()
        first.seed({"probe-a": True, "probe-b": False}, {})
        store.save(movie_db, first)
        second = SharedProbeCache()
        # Same keys with *contradictory* outcomes plus one new entry:
        # existing facts win (INSERT OR IGNORE), the new row lands.
        second.seed({"probe-a": False, "probe-b": True, "probe-c": True},
                    {})
        store.save(movie_db, second)
        probes, _ = store.load(movie_db)
        # Raw keys keep the first writer's facts; the literal-free keys'
        # canonical twins (``<sql>\x1f\x1f``, dual-keying) follow suit.
        assert probes == {"probe-a": True, "probe-b": False,
                          "probe-c": True,
                          "probe-a\x1f\x1f": True,
                          "probe-b\x1f\x1f": False,
                          "probe-c\x1f\x1f": True}

    def test_locked_store_fails_the_save_without_deleting_it(
            self, tmp_path, movie_db, caplog, monkeypatch):
        """A lock timeout is not corruption: a save that cannot get the
        write lock must warn and give up — never unlink the (healthy)
        store a concurrent writer is mid-transaction on."""
        store = PersistentProbeCache(tmp_path)
        path = store.save(movie_db, populated_cache(movie_db))
        before = store.load(movie_db)
        assert before is not None and before[0]
        monkeypatch.setattr(PersistentProbeCache, "BUSY_TIMEOUT_MS", 50)
        holder = sqlite3.connect(path)
        try:
            holder.execute("BEGIN EXCLUSIVE")
            fresh = SharedProbeCache()
            fresh.seed({"probe-locked": True}, {})
            with caplog.at_level(logging.WARNING):
                assert store.save(movie_db, fresh) is None
            assert "could not persist" in caplog.text
            assert "recreating" not in caplog.text
        finally:
            holder.rollback()
            holder.close()
        assert path.exists()
        assert store.load(movie_db) == before  # nothing was lost

    def test_corrupt_file_is_recreated_on_save(self, tmp_path, movie_db,
                                               caplog):
        store = PersistentProbeCache(tmp_path)
        store.cache_dir.mkdir(parents=True, exist_ok=True)
        store.path_for(movie_db).write_text("garbage")
        with caplog.at_level(logging.WARNING):
            assert store.save(movie_db,
                              populated_cache(movie_db)) is not None
        assert "recreating" in caplog.text
        assert store.load(movie_db) is not None
