"""Concurrency stress for the shared probe cache's worker protocol.

The process-pool and persistent-pool backends drive
:class:`~repro.core.verifier.SharedProbeCache` from many threads at
once: the primary cache is seeded, exported, journalled, and merged
with worker deltas concurrently. The contract under stress: no entry is
ever dropped, every counter (`hits`/`misses`/`cross_task_hits`/
`warm_start_hits`) folds in exactly once, and the journal hands every
newly inserted entry to exactly one drain — the invariants the
cross-task and warm-start telemetry columns depend on.
"""

from __future__ import annotations

import threading

import pytest

from repro.core.verifier import SharedProbeCache
from repro.sqlir.ast import ColumnRef

WORKERS = 8
OWN_PROBES = 40
SHARED_PROBES = 25
MINMAX_PER_WORKER = 5
MERGES_PER_WORKER = 2


def _own_probes(worker: int):
    return [(f"SELECT 1 FROM t WHERE worker = {worker} AND i = {i} LIMIT 1",
             True) for i in range(OWN_PROBES)]


def _shared_probes():
    return [(f"SELECT 1 FROM t WHERE shared = {i} LIMIT 1", bool(i % 2))
            for i in range(SHARED_PROBES)]


def _minmax(worker: int):
    return [(ColumnRef(table=f"t{worker}", column=f"c{i}"), (0, i))
            for i in range(MINMAX_PER_WORKER)]


class TestConcurrentWorkerProtocol:
    def test_merges_drop_nothing_and_count_exactly_once(self):
        primary = SharedProbeCache()
        primary.begin_task()
        primary.enable_journal()
        barrier = threading.Barrier(WORKERS)
        errors = []

        def worker(worker_id: int) -> None:
            try:
                barrier.wait()
                own = _own_probes(worker_id)
                # Two merges per worker, with an export (a full read of
                # the cache under contention) interleaved — the shape of
                # a persistent pool folding batch deltas back while
                # seeding the next lease.
                primary.merge_remote(hits=3, misses=2, cross_task_hits=1,
                                     warm_start_hits=1,
                                     probes=own[:OWN_PROBES // 2]
                                     + _shared_probes(),
                                     minmax=_minmax(worker_id))
                primary.export()
                primary.merge_remote(hits=2, misses=1, cross_task_hits=1,
                                     warm_start_hits=0,
                                     probes=own[OWN_PROBES // 2:]
                                     + _shared_probes(),
                                     minmax=[])
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(worker_id,))
                   for worker_id in range(WORKERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

        # Counters fold exactly once per merge — never dropped by a
        # racing merge, never double-counted.
        assert primary.hits == WORKERS * 5
        assert primary.misses == WORKERS * 3
        assert primary.cross_task_hits == WORKERS * 2
        assert primary.warm_start_hits == WORKERS * 1

        # Entries: every worker's own probes plus one copy of the
        # shared set (duplicates collapse, nothing is lost).
        probes, minmax, _ = primary.export()
        assert len(probes) == WORKERS * OWN_PROBES + SHARED_PROBES
        assert len(minmax) == WORKERS * MINMAX_PER_WORKER
        # Shared answers kept a consistent value.
        for sql, outcome in _shared_probes():
            assert probes[sql] == outcome

        # The journal saw each unique entry exactly once.
        probe_journal, minmax_journal = primary.drain_journal()
        assert len(probe_journal) == len(probes)
        assert len({sql for sql, _ in probe_journal}) == len(probes)
        assert len(minmax_journal) == len(minmax)

    def test_concurrent_drains_partition_the_journal(self):
        """A drainer thread racing the merges neither loses an entry
        nor sees one twice across drains."""
        primary = SharedProbeCache()
        primary.enable_journal()
        stop = threading.Event()
        drained = []
        drain_lock = threading.Lock()

        def drainer() -> None:
            while not stop.is_set():
                probes, _ = primary.drain_journal()
                with drain_lock:
                    drained.extend(probes)

        def worker(worker_id: int) -> None:
            for sql, outcome in _own_probes(worker_id) + _shared_probes():
                primary.merge_remote(hits=0, misses=0, cross_task_hits=0,
                                     warm_start_hits=0,
                                     probes=[(sql, outcome)], minmax=[])

        drain_thread = threading.Thread(target=drainer)
        drain_thread.start()
        threads = [threading.Thread(target=worker, args=(worker_id,))
                   for worker_id in range(WORKERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        drain_thread.join()
        final_probes, _ = primary.drain_journal()
        drained.extend(final_probes)

        expected = WORKERS * OWN_PROBES + SHARED_PROBES
        assert len(drained) == expected, \
            "journal dropped or duplicated entries under concurrent drains"
        assert len({sql for sql, _ in drained}) == expected

    def test_concurrent_seeding_keeps_warm_markers_exact(self):
        """Warm seeding racing worker merges: warm keys stay warm (and
        only those), so warm-start hits can never be misattributed."""
        primary = SharedProbeCache()
        primary.begin_task()
        warm_probes = {f"SELECT 1 FROM warm WHERE i = {i} LIMIT 1": True
                       for i in range(30)}
        barrier = threading.Barrier(WORKERS + 1)
        errors = []

        def seeder() -> None:
            try:
                barrier.wait()
                primary.seed(dict(warm_probes), {}, warm=True)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def worker(worker_id: int) -> None:
            try:
                barrier.wait()
                primary.merge_remote(hits=0, misses=0, cross_task_hits=0,
                                     warm_start_hits=0,
                                     probes=_own_probes(worker_id),
                                     minmax=[])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=seeder)] + [
            threading.Thread(target=worker, args=(worker_id,))
            for worker_id in range(WORKERS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        probes, _, (warm_keys, _) = primary.export()
        assert warm_keys == frozenset(warm_probes)
        assert len(probes) == WORKERS * OWN_PROBES + len(warm_probes)
