"""Fidelity tests for the paper's worked verification examples (3.3-3.6).

The scenario: a TSQ with sorting flag tau = false and the example tuple
chi_1 = [Tom Hanks, [1950, 1960]], against the partial queries CQ1-CQ5 of
Example 3.3 on the actor/starring/movies schema.
"""

import pytest

from repro.core.tsq import TableSketchQuery
from repro.core.verifier import (
    STAGE_BY_COLUMN,
    STAGE_BY_ROW,
    STAGE_CLAUSES,
    STAGE_COLUMN_TYPES,
    Verifier,
)
from repro.db import Database, make_schema
from repro.sqlir.ast import (
    HOLE,
    AggOp,
    ColumnRef,
    JoinEdge,
    JoinPath,
    OrderItem,
    Query,
    STAR,
    SelectItem,
    Where,
)
from repro.sqlir.types import ColumnType as T


@pytest.fixture(scope="module")
def paper_db():
    schema = make_schema(
        "paper",
        tables={
            "actor": [("aid", T.NUMBER), ("name", T.TEXT),
                      ("birth_yr", T.NUMBER), ("birthplace", T.TEXT),
                      ("debut_yr", T.NUMBER)],
            "movies": [("mid", T.NUMBER), ("name", T.TEXT),
                       ("year", T.NUMBER), ("revenue", T.NUMBER)],
            "starring": [("aid", T.NUMBER), ("mid", T.NUMBER)],
        },
        foreign_keys=[("starring", "aid", "actor", "aid"),
                      ("starring", "mid", "movies", "mid")],
        primary_keys={"actor": "aid", "movies": "mid", "starring": None})
    db = Database.create(schema)
    db.insert_rows("actor", [
        (1, "Tom Hanks", 1956, "Concord", 1980),
        (2, "Meg Ryan", 1961, "Fairfield", 1981),
        (3, "Brad Pitt", 1963, "Shawnee", 1987),
    ])
    db.insert_rows("movies", [
        (1, "Forrest Gump", 1994, 678),
        (2, "Sleepless in Seattle", 1993, 227),
    ])
    db.insert_rows("starring", [(1, 1), (1, 2), (2, 2)])
    return db


@pytest.fixture(scope="module")
def tsq():
    # chi_1 = [Tom Hanks, [1950, 1960]]; tau = false; k = 0.
    return TableSketchQuery.build(
        types=["text", "number"],
        rows=[["Tom Hanks", (1950, 1960)]],
        sorted=False)


def col(table, column):
    return ColumnRef(table=table, column=column)


def _partial(select, join_tables, edges=(), group_by=None,
             order_by=None):
    """A partial query with an unfinished WHERE clause (the paper's
    'WHERE ?')."""
    return Query(
        select=select,
        join_path=JoinPath(tables=join_tables, edges=edges),
        where=Where(logic=HOLE, predicates=(HOLE,)),
        group_by=group_by, having=None, order_by=order_by, limit=HOLE)


CQ1_SELECT = (SelectItem(agg=AggOp.NONE, column=col("actor", "name")),
              SelectItem(agg=AggOp.NONE, column=col("actor", "birth_yr")))
CQ2_SELECT = (SelectItem(agg=AggOp.NONE, column=col("actor", "name")),
              SelectItem(agg=AggOp.NONE,
                         column=col("actor", "birthplace")))
CQ4_SELECT = (SelectItem(agg=AggOp.NONE, column=col("actor", "name")),
              SelectItem(agg=AggOp.MAX, column=col("movies", "revenue")))


class TestExample33VerifyClauses:
    def test_cq5_fails_clause_check(self, paper_db, tsq):
        """CQ5 has ORDER BY although tau is false."""
        cq5 = Query(
            select=(SelectItem(agg=AggOp.NONE, column=col("actor",
                                                          "name")),
                    SelectItem(agg=AggOp.NONE,
                               column=col("actor", "debut_yr"))),
            join_path=JoinPath(tables=("actor",)),
            where=None, group_by=None, having=None,
            order_by=(OrderItem(agg=AggOp.NONE,
                                column=col("actor", "debut_yr"),
                                direction=HOLE),),
            limit=HOLE)
        verifier = Verifier(paper_db, tsq=tsq)
        result = verifier.verify(cq5)
        assert not result.ok
        assert result.failed_stage == STAGE_CLAUSES


class TestExample34VerifyColumnTypes:
    def test_cq2_fails_type_check(self, paper_db, tsq):
        """CQ2 projects [text, text]; the TSQ says [text, number]."""
        cq2 = _partial(CQ2_SELECT, ("actor",))
        verifier = Verifier(paper_db, tsq=tsq)
        result = verifier.verify(cq2)
        assert not result.ok
        assert result.failed_stage == STAGE_COLUMN_TYPES


class TestExample35VerifyByColumn:
    def test_cq4_fails_column_check(self, paper_db, tsq):
        """CV3: no movie revenue lies in [1950, 1960], so the MAX
        projection cannot match the range cell."""
        edges = (JoinEdge("starring", "aid", "actor", "aid"),
                 JoinEdge("starring", "mid", "movies", "mid"))
        cq4 = _partial(CQ4_SELECT, ("actor", "starring", "movies"),
                       edges=edges,
                       group_by=(col("actor", "name"),))
        verifier = Verifier(paper_db, tsq=tsq)
        result = verifier.verify(cq4)
        assert not result.ok
        assert result.failed_stage == STAGE_BY_COLUMN

    def test_cq1_passes_column_check(self, paper_db, tsq):
        """CV1/CV2: 'Tom Hanks' exists in actor.name and a birth year in
        [1950, 1960] exists."""
        cq1 = _partial(CQ1_SELECT, ("actor",))
        verifier = Verifier(paper_db, tsq=tsq)
        assert verifier.verify(cq1).ok


class TestExample36VerifyByRow:
    def test_cq1_passes_row_check(self, paper_db, tsq):
        """RV1: Tom Hanks' birth year 1956 lies in [1950, 1960]."""
        cq1 = _partial(CQ1_SELECT, ("actor",))
        verifier = Verifier(paper_db, tsq=tsq)
        assert verifier.verify(cq1).ok

    def test_row_check_rejects_disjoint_cells(self, paper_db):
        """A tuple whose cells exist per-column but not in one row."""
        tsq = TableSketchQuery.build(
            types=["text", "number"],
            rows=[["Brad Pitt", (1950, 1960)]])  # Pitt was born 1963
        cq1 = _partial(CQ1_SELECT, ("actor",))
        verifier = Verifier(paper_db, tsq=tsq)
        result = verifier.verify(cq1)
        assert not result.ok
        assert result.failed_stage == STAGE_BY_ROW

    def test_cq3_count_checked_at_completion(self, paper_db, tsq):
        """RV2: Tom Hanks starred in 2 movies, not 1950-1960 of them;
        the aggregate cell rejects CQ3 once it is complete."""
        cq3 = Query(
            select=(SelectItem(agg=AggOp.NONE,
                               column=col("actor", "name")),
                    SelectItem(agg=AggOp.COUNT, column=STAR)),
            join_path=JoinPath(
                tables=("actor", "starring"),
                edges=(JoinEdge("starring", "aid", "actor", "aid"),)),
            where=None,
            group_by=(col("actor", "name"),),
            having=None, order_by=None, limit=None)
        verifier = Verifier(paper_db, tsq=tsq)
        result = verifier.verify(cq3)
        assert not result.ok
