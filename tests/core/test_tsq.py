"""Tests for table sketch queries (Definitions 2.3-2.4)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.tsq import (
    EmptyCell,
    ExactCell,
    RangeCell,
    TableSketchQuery,
    cell,
)
from repro.errors import TSQError
from repro.sqlir.types import ColumnType


class TestCells:
    def test_exact_match(self):
        assert ExactCell("Tom Hanks").matches("Tom Hanks")
        assert ExactCell("Tom Hanks").matches("tom hanks")
        assert not ExactCell("Tom Hanks").matches("Meg Ryan")

    def test_exact_numeric_tolerance(self):
        assert ExactCell(1995).matches(1995.0)
        assert ExactCell("1995").matches(1995)

    def test_exact_rejects_null(self):
        assert not ExactCell("x").matches(None)

    def test_empty_matches_anything(self):
        assert EmptyCell().matches("anything")
        assert EmptyCell().matches(None)

    def test_range_match(self):
        r = RangeCell(low=2010, high=2017)
        assert r.matches(2013)
        assert r.matches(2010)
        assert r.matches(2017)
        assert not r.matches(2018)

    def test_range_rejects_text(self):
        assert not RangeCell(low=1, high=2).matches("abc")

    def test_range_accepts_numeric_strings(self):
        assert RangeCell(low=1, high=10).matches("5")

    def test_invalid_range_rejected(self):
        with pytest.raises(TSQError):
            RangeCell(low=10, high=1)

    def test_cell_constructor(self):
        assert isinstance(cell(None), EmptyCell)
        assert isinstance(cell((1, 2)), RangeCell)
        assert isinstance(cell("x"), ExactCell)
        assert isinstance(cell(5), ExactCell)

    def test_cell_constructor_bad_range(self):
        with pytest.raises(TSQError):
            cell(("a", "b"))


class TestBuild:
    def test_build_types(self):
        tsq = TableSketchQuery.build(types=["text", "number"])
        assert tsq.types == (ColumnType.TEXT, ColumnType.NUMBER)

    def test_width_from_tuples(self):
        tsq = TableSketchQuery.build(rows=[["a", 1]])
        assert tsq.width == 2

    def test_width_none_when_unconstrained(self):
        assert TableSketchQuery().width is None

    def test_inconsistent_widths_rejected(self):
        with pytest.raises(TSQError):
            TableSketchQuery.build(types=["text"], rows=[["a", "b"]])

    def test_negative_limit_rejected(self):
        with pytest.raises(TSQError):
            TableSketchQuery(limit=-1)

    def test_is_empty(self):
        assert TableSketchQuery().is_empty
        assert not TableSketchQuery.build(rows=[["a"]]).is_empty
        assert not TableSketchQuery(sorted=True).is_empty


class TestSatisfaction:
    def test_unsorted_match(self):
        tsq = TableSketchQuery.build(rows=[["b"], ["a"]])
        assert tsq.satisfied_by_rows([("a",), ("b",), ("c",)])

    def test_missing_tuple_fails(self):
        tsq = TableSketchQuery.build(rows=[["z"]])
        assert not tsq.satisfied_by_rows([("a",), ("b",)])

    def test_distinctness_required(self):
        """Two identical example tuples need two matching rows."""
        tsq = TableSketchQuery.build(rows=[["a", None], ["a", None]])
        assert not tsq.satisfied_by_rows([("a", 1)])
        assert tsq.satisfied_by_rows([("a", 1), ("a", 2)])

    def test_bipartite_matching_not_greedy(self):
        """A greedy assignment could consume the only row matching the
        second example; maximum matching must recover."""
        tsq = TableSketchQuery.build(rows=[[None, 1], ["only", 1]])
        rows = [("only", 1), ("other", 1)]
        assert tsq.satisfied_by_rows(rows)

    def test_sorted_order_respected(self):
        tsq = TableSketchQuery.build(rows=[["a"], ["b"]], sorted=True)
        assert tsq.satisfied_by_rows([("a",), ("x",), ("b",)])
        assert not tsq.satisfied_by_rows([("b",), ("a",)])

    def test_sorted_single_example_ignores_order(self):
        tsq = TableSketchQuery.build(rows=[["b"]], sorted=True)
        assert tsq.satisfied_by_rows([("a",), ("b",)])

    def test_limit_enforced(self):
        tsq = TableSketchQuery.build(rows=[["a"]], limit=2)
        assert tsq.satisfied_by_rows([("a",), ("b",)])
        assert not tsq.satisfied_by_rows([("a",), ("b",), ("c",)])

    def test_limit_skipped_when_truncated(self):
        tsq = TableSketchQuery.build(rows=[["a"]], limit=2)
        assert tsq.satisfied_by_rows([("a",), ("b",), ("c",)],
                                     truncated=True)

    def test_range_cells_in_tuples(self):
        tsq = TableSketchQuery.build(
            rows=[["Gravity", (2010, 2017)]])
        assert tsq.satisfied_by_rows([("Gravity", 2013)])
        assert not tsq.satisfied_by_rows([("Gravity", 2019)])

    def test_types_match(self):
        tsq = TableSketchQuery.build(types=["text", "number"])
        assert tsq.types_match([ColumnType.TEXT, ColumnType.NUMBER])
        assert not tsq.types_match([ColumnType.NUMBER, ColumnType.TEXT])
        assert TableSketchQuery().types_match([ColumnType.TEXT])


class TestSatisfactionProperties:
    @given(st.lists(st.tuples(st.sampled_from("abc"),
                              st.integers(0, 5)), min_size=1,
                    max_size=12))
    def test_rows_satisfy_their_own_sketch(self, rows):
        """Any subset of result rows taken as exact examples must be
        satisfied by the full result set."""
        examples = rows[: max(1, len(rows) // 2)]
        tsq = TableSketchQuery.build(rows=examples)
        assert tsq.satisfied_by_rows(rows)

    @given(st.lists(st.tuples(st.integers(0, 3)), min_size=1,
                    max_size=10))
    def test_supersets_preserve_satisfaction(self, rows):
        """Satisfaction is monotone in the result set (open world)."""
        tsq = TableSketchQuery.build(rows=[rows[0]])
        assert tsq.satisfied_by_rows(rows)
        assert tsq.satisfied_by_rows(rows + [("extra",)])
