"""Tests for ascending-cost cascading verification (Algorithm 3)."""

import pytest

from repro.core.tsq import TableSketchQuery
from repro.core.verifier import (
    STAGE_BY_COLUMN,
    STAGE_BY_ROW,
    STAGE_CLAUSES,
    STAGE_COLUMN_TYPES,
    STAGE_FULL,
    STAGE_LITERALS,
    STAGE_SEMANTICS,
    Verifier,
    VerifierConfig,
)
from repro.nlq.literals import Literal
from repro.sqlir.ast import HOLE, Where
from repro.sqlir.parser import parse_sql


def make_verifier(db, tsq=None, literals=(), **config):
    return Verifier(db, tsq=tsq, literals=literals,
                    config=VerifierConfig(**config))


def q(sql, db):
    return parse_sql(sql, db.schema)


class TestVerifyClauses:
    def test_order_by_forbidden_when_tau_false(self, movie_db):
        tsq = TableSketchQuery.build(rows=[["Forrest Gump"]], sorted=False)
        verifier = make_verifier(movie_db, tsq)
        result = verifier.verify(
            q("SELECT title FROM movie ORDER BY year", movie_db))
        assert not result.ok
        assert result.failed_stage == STAGE_CLAUSES

    def test_order_by_required_when_tau_true(self, movie_db):
        tsq = TableSketchQuery.build(rows=[["Forrest Gump"]], sorted=True)
        verifier = make_verifier(movie_db, tsq)
        result = verifier.verify(q("SELECT title FROM movie", movie_db))
        assert not result.ok
        assert result.failed_stage == STAGE_CLAUSES

    def test_limit_exceeding_k_fails(self, movie_db):
        tsq = TableSketchQuery.build(rows=[["Forrest Gump"]], sorted=True,
                                     limit=2)
        verifier = make_verifier(movie_db, tsq)
        result = verifier.verify(
            q("SELECT title FROM movie ORDER BY year LIMIT 5", movie_db))
        assert not result.ok
        assert result.failed_stage == STAGE_CLAUSES

    def test_limit_forbidden_when_k_zero(self, movie_db):
        tsq = TableSketchQuery.build(rows=[["Forrest Gump"]], sorted=True)
        verifier = make_verifier(movie_db, tsq)
        result = verifier.verify(
            q("SELECT title FROM movie ORDER BY year LIMIT 5", movie_db))
        assert not result.ok


class TestVerifySemantics:
    def test_semantic_violation_fails(self, movie_db):
        verifier = make_verifier(movie_db)
        result = verifier.verify(
            q("SELECT AVG(title) FROM movie", movie_db))
        assert not result.ok
        assert result.failed_stage == STAGE_SEMANTICS

    def test_semantics_can_be_disabled(self, movie_db):
        verifier = make_verifier(movie_db, check_semantics=False)
        result = verifier.verify(
            q("SELECT AVG(title) FROM movie", movie_db))
        assert result.ok


class TestVerifyColumnTypes:
    def test_wrong_type_fails(self, movie_db):
        tsq = TableSketchQuery.build(types=["number"])
        verifier = make_verifier(movie_db, tsq)
        result = verifier.verify(q("SELECT title FROM movie", movie_db))
        assert not result.ok
        assert result.failed_stage == STAGE_COLUMN_TYPES

    def test_wrong_width_fails(self, movie_db):
        tsq = TableSketchQuery.build(types=["text", "number"])
        verifier = make_verifier(movie_db, tsq)
        result = verifier.verify(q("SELECT title FROM movie", movie_db))
        assert not result.ok
        assert result.failed_stage == STAGE_COLUMN_TYPES

    def test_aggregate_output_type_checked(self, movie_db):
        """COUNT over a text column projects a number."""
        tsq = TableSketchQuery.build(types=["number"])
        verifier = make_verifier(movie_db, tsq)
        assert verifier.verify(
            q("SELECT COUNT(title) FROM movie", movie_db)).ok


class TestVerifyByColumn:
    def test_cell_absent_from_column_fails(self, movie_db):
        tsq = TableSketchQuery.build(rows=[["No Such Movie"]])
        verifier = make_verifier(movie_db, tsq)
        result = verifier.verify(q("SELECT title FROM movie", movie_db))
        assert not result.ok
        assert result.failed_stage in (STAGE_BY_COLUMN, STAGE_BY_ROW,
                                       STAGE_FULL)

    def test_partial_query_pruned_early(self, movie_db):
        """A partial query projecting the wrong column dies before any
        full execution (the essence of GPQE pruning)."""
        tsq = TableSketchQuery.build(rows=[["Forrest Gump"]])
        verifier = make_verifier(movie_db, tsq)
        partial = q("SELECT name FROM actor", movie_db).replace(
            where=Where(logic=HOLE, predicates=(HOLE,)))
        result = verifier.verify(partial)
        assert not result.ok
        assert result.failed_stage == STAGE_BY_COLUMN

    def test_range_cell_probe(self, movie_db):
        tsq = TableSketchQuery.build(rows=[[(1990, 1999)]])
        verifier = make_verifier(movie_db, tsq)
        assert verifier.verify(q("SELECT year FROM movie", movie_db)).ok
        tsq_bad = TableSketchQuery.build(rows=[[(5000, 6000)]])
        verifier_bad = make_verifier(movie_db, tsq_bad)
        assert not verifier_bad.verify(
            q("SELECT year FROM movie", movie_db)).ok

    def test_avg_range_intersection(self, movie_db):
        """AVG cells are checked against the column's [min, max] span."""
        tsq = TableSketchQuery.build(rows=[[(100000, 200000)]])
        verifier = make_verifier(movie_db, tsq)
        result = verifier.verify(
            q("SELECT AVG(revenue) FROM movie", movie_db))
        assert not result.ok

    def test_count_cells_skipped_on_partials(self, movie_db):
        """No conclusion can be drawn for COUNT projections (S 3.4)."""
        tsq = TableSketchQuery.build(rows=[[999999]])
        verifier = make_verifier(movie_db, tsq)
        partial = q("SELECT COUNT(*) FROM movie", movie_db).replace(
            where=Where(logic=HOLE, predicates=(HOLE,)))
        assert verifier.verify(partial).ok


class TestVerifyByRow:
    def test_joint_row_constraint(self, movie_db):
        """Cells exist per column but never in the same row."""
        tsq = TableSketchQuery.build(rows=[["Forrest Gump", 2013]])
        verifier = make_verifier(movie_db, tsq)
        partial = q("SELECT title, year FROM movie", movie_db).replace(
            where=Where(logic=HOLE, predicates=(HOLE,)))
        result = verifier.verify(partial)
        assert not result.ok
        assert result.failed_stage == STAGE_BY_ROW

    def test_retained_and_predicate_prunes(self, movie_db):
        """A complete AND predicate is retained in the row probe."""
        tsq = TableSketchQuery.build(rows=[["Forrest Gump"]])
        verifier = make_verifier(movie_db, tsq)
        partial = q(
            "SELECT title FROM movie WHERE year > 2000", movie_db
        ).replace(where=Where(
            logic=q("SELECT title FROM movie WHERE year > 2000 AND "
                    "revenue > 1", movie_db).where.logic,
            predicates=q("SELECT title FROM movie WHERE year > 2000",
                         movie_db).where.predicates + (HOLE,)))
        result = verifier.verify(partial)
        assert not result.ok

    def test_incomplete_or_clause_not_retained(self, movie_db):
        """Under OR, incomplete predicates must be dropped: the example
        may be produced by the other disjunct."""
        from repro.sqlir.ast import LogicOp

        tsq = TableSketchQuery.build(rows=[["Forrest Gump"]])
        verifier = make_verifier(movie_db, tsq)
        base = q("SELECT title FROM movie WHERE year > 2000", movie_db)
        partial = base.replace(where=Where(
            logic=LogicOp.OR,
            predicates=base.where.predicates + (HOLE,)))
        assert verifier.verify(partial).ok


class TestVerifyLiterals:
    def test_unused_literal_fails_complete_query(self, movie_db):
        verifier = make_verifier(movie_db, literals=[Literal(1995)])
        result = verifier.verify(q("SELECT title FROM movie", movie_db))
        assert not result.ok
        assert result.failed_stage == STAGE_LITERALS

    def test_literal_in_predicate_passes(self, movie_db):
        verifier = make_verifier(movie_db, literals=[Literal(1995)])
        assert verifier.verify(
            q("SELECT title FROM movie WHERE year < 1995", movie_db)).ok

    def test_literal_in_limit_counts(self, movie_db):
        tsq = TableSketchQuery(sorted=True, limit=3)
        verifier = Verifier(movie_db, tsq=tsq, literals=(Literal(3),))
        assert verifier.verify(
            q("SELECT title FROM movie ORDER BY year LIMIT 3",
              movie_db)).ok


class TestFullSatisfaction:
    def test_order_verification(self, movie_db):
        """tau with two ordered examples checks result order."""
        tsq = TableSketchQuery.build(
            rows=[["Forrest Gump"], ["Gravity"]], sorted=True)
        verifier = make_verifier(movie_db, tsq)
        ascending = q("SELECT title FROM movie ORDER BY year ASC",
                      movie_db)
        descending = q("SELECT title FROM movie ORDER BY year DESC",
                       movie_db)
        # Forrest Gump (1994) precedes Gravity (2013) ascending only.
        assert verifier.verify(ascending).ok
        assert not verifier.verify(descending).ok

    def test_empty_tsq_always_satisfied(self, movie_db):
        verifier = make_verifier(movie_db, TableSketchQuery())
        assert verifier.verify(q("SELECT title FROM movie", movie_db)).ok

    def test_aggregate_cells_checked_at_completion(self, movie_db):
        tsq = TableSketchQuery.build(rows=[["Tom Hanks", 999]])
        verifier = make_verifier(movie_db, tsq)
        complete = q(
            "SELECT t1.name, COUNT(*) FROM actor t1 JOIN starring t2 "
            "ON t1.aid = t2.aid GROUP BY t1.name", movie_db)
        result = verifier.verify(complete)
        assert not result.ok
        assert result.failed_stage == STAGE_FULL


class TestNoPQMode:
    def test_partials_skipped(self, movie_db):
        tsq = TableSketchQuery.build(rows=[["No Such Movie"]])
        verifier = make_verifier(movie_db, tsq, verify_partial=False)
        partial = q("SELECT title FROM movie", movie_db).replace(
            where=Where(logic=HOLE, predicates=(HOLE,)))
        assert verifier.verify(partial).ok  # not verified at all

    def test_completes_still_verified(self, movie_db):
        tsq = TableSketchQuery.build(rows=[["No Such Movie"]])
        verifier = make_verifier(movie_db, tsq, verify_partial=False)
        assert not verifier.verify(
            q("SELECT title FROM movie", movie_db)).ok


class TestStats:
    def test_stage_failures_counted(self, movie_db):
        tsq = TableSketchQuery.build(types=["number"])
        verifier = make_verifier(movie_db, tsq)
        verifier.verify(q("SELECT title FROM movie", movie_db))
        assert verifier.stats.get(STAGE_COLUMN_TYPES) == 1
