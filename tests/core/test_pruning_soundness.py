"""Property-based pruning-soundness tests.

GPQE's completeness rests on one invariant: if a complete query satisfies
the TSQ, then no partial query on the construction path towards it may
fail partial verification (otherwise the search would prune the correct
branch). These tests generate random satisfying queries, synthesize TSQs
from their own results, derive partial ancestors by re-opening holes, and
assert the verifier passes every ancestor.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tsq import TableSketchQuery
from repro.core.verifier import Verifier
from repro.sqlir.ast import HOLE, Hole, Where
from tests.conftest import build_movie_db
from tests.sqlir.test_roundtrip_property import queries

DB = build_movie_db()


def ancestors(query):
    """Partial queries on the way to ``query``, holes re-opened in
    reverse pipeline order."""
    steps = [query]
    current = query
    if current.limit is not None:
        current = current.replace(limit=HOLE)
        steps.append(current)
    if current.order_by is not None and not isinstance(current.order_by,
                                                       Hole):
        current = current.replace(order_by=(HOLE,))
        steps.append(current)
        current = current.replace(order_by=HOLE, limit=HOLE)
        steps.append(current)
    if isinstance(current.where, Where):
        opened = Where(logic=current.where.logic,
                       predicates=current.where.predicates[:-1] + (HOLE,))
        current = current.replace(where=opened)
        steps.append(current)
        current = current.replace(where=Where(logic=HOLE, predicates=()))
        steps.append(current)
    current = current.replace(select=(HOLE,) * len(query.select))
    steps.append(current)
    current = current.replace(select=HOLE, join_path=HOLE)
    steps.append(current)
    return steps


class TestPruningSoundness:
    @given(queries())
    @settings(max_examples=60, deadline=None)
    def test_satisfying_query_ancestors_never_pruned(self, query):
        rows = DB.execute_query(query, max_rows=200)
        if not rows:
            return  # nothing to sketch (the paper removed such tasks)
        tsq = TableSketchQuery.build(rows=[list(rows[0])],
                                     sorted=query.order_by is not None,
                                     limit=query.limit or 0)
        verifier = Verifier(DB, tsq=tsq)
        if not verifier.verify(query).ok:
            # The sketch itself may be unsatisfiable for LIMIT queries
            # whose example is outside the top-k; skip those.
            return
        for partial in ancestors(query):
            result = verifier.verify(partial, treat_as_partial=True)
            assert result.ok, (partial, result.failed_stage,
                               result.detail)

    @given(queries())
    @settings(max_examples=40, deadline=None)
    def test_empty_tsq_never_prunes(self, query):
        """With no TSQ, only semantic rules may reject queries."""
        verifier = Verifier(DB, tsq=TableSketchQuery())
        result = verifier.verify(query)
        if not result.ok:
            assert result.failed_stage == "semantics"
