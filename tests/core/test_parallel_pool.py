"""Verification pool lifecycle, validation, degrade, and cache sharing.

The PR 1 thread pool leaked SQLite connections and dropped fork stats
when an exception aborted an enumeration before ``close()`` ran, and
silently clamped invalid worker counts. These tests lock in the fixed
contract for both backends: validated worker counts, idempotent and
exception-safe ``close()``, context-manager support, visible degrade
when snapshots are unsupported, and cross-task probe-cache reuse.
"""

from __future__ import annotations

import logging

import pytest

from repro.core.enumerator import Enumerator, EnumeratorConfig
from repro.core.search.parallel import (
    ProcessVerificationPool,
    VerificationPool,
    make_verification_pool,
)
from repro.core.tsq import TableSketchQuery
from repro.core.verifier import SharedProbeCache, Verifier
from repro.db.database import Database
from repro.errors import ExecutionError
from repro.nlq.literals import NLQuery
from repro.sqlir.parser import parse_sql

needs_snapshots = pytest.mark.skipif(
    not Database.supports_snapshots(),
    reason="sqlite build cannot serialize databases")


@pytest.fixture
def verifier(movie_db):
    tsq = TableSketchQuery.build(types=["text"], rows=[["Forrest Gump"]])
    return Verifier(movie_db, tsq=tsq)


def make_jobs(movie_db, count=4):
    query = parse_sql("SELECT title FROM movie WHERE year < 1995",
                      movie_db.schema)
    return [(query, False)] * count


class TestWorkerValidation:
    """Invalid worker counts error out instead of silently running
    inline (the old pools clamped with max(1, workers))."""

    @pytest.mark.parametrize("workers", [0, -3])
    @pytest.mark.parametrize("pool_cls", [VerificationPool,
                                          ProcessVerificationPool])
    def test_pool_rejects_nonpositive_workers(self, verifier, pool_cls,
                                              workers):
        with pytest.raises(ValueError, match="positive integer"):
            pool_cls(verifier, workers=workers)

    @pytest.mark.parametrize("workers", [0, -3])
    def test_config_rejects_nonpositive_workers(self, workers):
        with pytest.raises(ValueError, match="positive integer"):
            EnumeratorConfig(workers=workers)

    def test_config_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="verify_backend"):
            EnumeratorConfig(verify_backend="fibers")

    def test_config_rejects_inline_with_workers(self):
        with pytest.raises(ValueError, match="inline"):
            EnumeratorConfig(verify_backend="inline", workers=4)

    def test_factory_rejects_inline_with_workers(self, verifier):
        with pytest.raises(ValueError, match="inline"):
            make_verification_pool(verifier, backend="inline", workers=2)

    def test_factory_rejects_unknown_backend(self, verifier):
        with pytest.raises(ValueError, match="unknown verify_backend"):
            make_verification_pool(verifier, backend="greenlets")


class TestLifecycle:
    @needs_snapshots
    def test_close_is_idempotent(self, movie_db, verifier):
        pool = VerificationPool(verifier, workers=2)
        pool.run(make_jobs(movie_db))
        pool.close()
        pool.close()  # second close must be a no-op, not an error

    @needs_snapshots
    def test_close_folds_fork_stats_once(self, movie_db):
        tsq = TableSketchQuery.build(types=["text"],
                                     rows=[["Forrest Gump"]])
        db = Database.from_snapshot(movie_db.schema, movie_db.snapshot())
        verifier = Verifier(db, tsq=tsq)
        pool = VerificationPool(verifier, workers=2)
        pool.run(make_jobs(db))
        before = db.stats.statements
        pool.close()
        folded = db.stats.statements
        assert folded >= before  # fork counters arrived
        pool.close()
        assert db.stats.statements == folded  # and only once

    @needs_snapshots
    @pytest.mark.parametrize("pool_cls", [VerificationPool,
                                          ProcessVerificationPool])
    def test_context_manager_closes(self, movie_db, verifier, pool_cls):
        with pool_cls(verifier, workers=2) as pool:
            results = pool.run(make_jobs(movie_db))
            assert all(r.ok for r in results)
        assert pool._pool is None
        pool.close()  # still idempotent after __exit__

    @needs_snapshots
    def test_engine_closes_pool_on_midrun_exception(self, movie_db,
                                                    monkeypatch):
        """An exception raised while expanding must still tear the pool
        down (fold stats, close fork connections) via the engine's
        try/finally — the old code only closed on clean exhaustion."""
        closes = []
        original_close = VerificationPool.close

        def counting_close(self):
            closes.append(self)
            return original_close(self)

        monkeypatch.setattr(VerificationPool, "close", counting_close)
        nlq = NLQuery.from_text("movies called 'Forrest Gump'")
        enumerator = Enumerator(
            movie_db, model=_exploding_model(), nlq=nlq,
            tsq=TableSketchQuery.build(types=["text"],
                                       rows=[["Forrest Gump"]]),
            config=EnumeratorConfig(workers=2, max_candidates=5))
        with pytest.raises(RuntimeError, match="boom"):
            list(enumerator.enumerate())
        assert closes, "engine did not close the pool after the error"
        assert all(pool._closed for pool in closes)


def _exploding_model():
    from repro.guidance.lexical import LexicalGuidanceModel

    class Exploding(LexicalGuidanceModel):
        def __init__(self):
            super().__init__()
            self.calls = 0

        def clause_presence(self, ctx, clause):
            self.calls += 1
            if self.calls > 1:
                raise RuntimeError("boom")
            return super().clause_presence(ctx, clause)

    return Exploding()


class TestSnapshotDegrade:
    """No silent behaviour change: falling back to inline verification
    logs a warning and is visible in pool state + telemetry."""

    @pytest.mark.parametrize("pool_cls", [VerificationPool,
                                          ProcessVerificationPool])
    def test_degrade_warns_and_flags(self, verifier, monkeypatch, caplog,
                                     pool_cls):
        def broken_snapshot(self):
            raise ExecutionError("no serialize support")

        monkeypatch.setattr(Database, "snapshot", broken_snapshot)
        with caplog.at_level(logging.WARNING,
                             logger="repro.core.search.parallel"):
            pool = pool_cls(verifier, workers=4)
        assert pool.degraded
        assert pool.workers == 1
        assert "degraded to inline" in caplog.text
        pool.close()

    def test_degrade_surfaces_in_telemetry(self, movie_db, monkeypatch):
        def broken_snapshot(self):
            raise ExecutionError("no serialize support")

        monkeypatch.setattr(Database, "snapshot", broken_snapshot)
        nlq = NLQuery.from_text("movies called 'Forrest Gump'")
        enumerator = Enumerator(
            movie_db, model=_lexical(), nlq=nlq,
            tsq=TableSketchQuery.build(types=["text"],
                                       rows=[["Forrest Gump"]]),
            config=EnumeratorConfig(workers=4, max_candidates=3))
        list(enumerator.enumerate())
        telemetry = enumerator.telemetry
        assert telemetry.snapshot_degraded
        assert telemetry.workers == 1

    @needs_snapshots
    def test_process_pool_degrades_midrun_on_broken_workers(self, movie_db,
                                                            verifier,
                                                            caplog):
        """A worker crash mid-search degrades to inline for the rest of
        the run instead of aborting, and reports the effective state."""
        pool = ProcessVerificationPool(verifier, workers=2)
        assert not pool.degraded

        def broken_map(fn, chunks):
            raise RuntimeError("worker died")

        pool._pool.map = broken_map
        with caplog.at_level(logging.WARNING,
                             logger="repro.core.search.parallel"):
            results = pool.run(make_jobs(movie_db))
        assert all(r.ok for r in results)  # inline fallback still answers
        assert pool.degraded
        assert pool.workers == 1
        assert "degraded to inline" in caplog.text
        pool.close()

    @needs_snapshots
    def test_process_pool_degrades_on_unpicklable_state(self, movie_db,
                                                        caplog):
        tsq = TableSketchQuery.build(types=["text"],
                                     rows=[["Forrest Gump"]])
        from repro.core.semantics import Rule, RuleSet

        unpicklable = RuleSet(rules=(
            Rule(name="local", description="unpicklable closure",
                 check=lambda query, schema: None),))
        verifier = Verifier(movie_db, tsq=tsq, rules=unpicklable)
        with caplog.at_level(logging.WARNING,
                             logger="repro.core.search.parallel"):
            pool = ProcessVerificationPool(verifier, workers=2)
        assert pool.degraded
        assert "not picklable" in pool.degrade_reason
        results = pool.run(make_jobs(movie_db))  # inline still works
        assert all(r.ok for r in results)
        pool.close()


def _lexical():
    from repro.guidance.lexical import LexicalGuidanceModel

    return LexicalGuidanceModel()


class TestProcessPoolResults:
    @needs_snapshots
    def test_results_align_and_counters_fold(self, movie_db):
        tsq = TableSketchQuery.build(types=["text"],
                                     rows=[["Forrest Gump"]])
        verifier = Verifier(movie_db, tsq=tsq)
        good = parse_sql("SELECT title FROM movie WHERE year < 1995",
                         movie_db.schema)
        jobs = make_jobs(movie_db, count=6)
        with ProcessVerificationPool(verifier, workers=2) as pool:
            results = pool.run(jobs)
            assert len(results) == len(jobs)
            inline = verifier.verify(good, record=False)
            assert all(r.ok == inline.ok for r in results)
            # Worker probe traffic is folded into the primary cache.
            cache = verifier.probe_cache
            assert cache.hits + cache.misses > 0
            assert len(cache) > 0


class TestCrossTaskCacheReuse:
    """One SharedProbeCache shared across sequential enumerations on the
    same database reuses probe answers and stays correct."""

    def run(self, db, cache, backend="threads", workers=1):
        nlq = NLQuery.from_text("movies called 'Forrest Gump'")
        tsq = TableSketchQuery.build(types=["text"],
                                     rows=[["Forrest Gump"]])
        enumerator = Enumerator(
            db, model=_lexical(), nlq=nlq, tsq=tsq,
            config=EnumeratorConfig(max_candidates=10, workers=workers,
                                    verify_backend=backend),
            probe_cache=cache)
        stream = [(c.confidence, c.index, str(c.query))
                  for c in enumerator.enumerate()]
        return stream, enumerator.telemetry

    def test_second_enumeration_reuses_probes(self, movie_db):
        cache = SharedProbeCache()
        first, t1 = self.run(movie_db, cache)
        second, t2 = self.run(movie_db, cache)
        assert first == second  # warm cache must not change the stream
        assert t1.cross_task_probe_hits == 0
        assert t2.cross_task_probe_hits > 0
        assert t2.probe_misses < t1.probe_misses

    def test_shared_equals_unshared_stream(self, movie_db):
        cold, _ = self.run(movie_db, None)
        cache = SharedProbeCache()
        self.run(movie_db, cache)
        warm, telemetry = self.run(movie_db, cache)
        assert warm == cold
        assert telemetry.cross_task_probe_hits > 0

    @needs_snapshots
    def test_process_workers_warm_start_from_shared_cache(self, movie_db):
        cache = SharedProbeCache()
        self.run(movie_db, cache)  # task 1 fills the cache (inline)
        _, telemetry = self.run(movie_db, cache, backend="processes",
                                workers=2)
        assert not telemetry.snapshot_degraded
        assert telemetry.cross_task_probe_hits > 0

    def test_per_run_telemetry_is_a_delta(self, movie_db):
        cache = SharedProbeCache()
        _, t1 = self.run(movie_db, cache)
        _, t2 = self.run(movie_db, cache)
        # Totals on the shared cache keep growing, but each run's
        # telemetry only counts its own traffic: the two deltas add up
        # to the cache's totals.
        assert t1.probe_hits + t2.probe_hits == cache.hits
        assert t1.probe_misses + t2.probe_misses == cache.misses
