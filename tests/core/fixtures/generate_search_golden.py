"""Regenerate the search-equivalence golden fixture.

The fixture pins the exact candidate stream (canonical SQL signature,
confidence, emission index and expansion count at emission) produced by
the seed best-first enumerator on a deterministic set of MAS and
synthetic-Spider tasks. ``tests/core/test_search_equivalence.py``
asserts the search-engine subsystem reproduces it bit-for-bit.

Run from the repository root::

    PYTHONPATH=src:. python tests/core/fixtures/generate_search_golden.py

Only regenerate when an intentional behaviour change is being made; the
whole point of the fixture is to catch unintentional ones.
"""

from __future__ import annotations

import json
import os

from repro.core.enumerator import Enumerator, EnumeratorConfig
from repro.core.tsq import TableSketchQuery
from repro.datasets import (
    DETAIL_FULL,
    SpiderCorpusConfig,
    build_mas_database,
    generate_corpus,
    nli_study_tasks,
    synthesize_tsq,
)
from repro.guidance.lexical import LexicalGuidanceModel
from repro.guidance.oracle import CalibratedOracleModel
from repro.sqlir.canon import signature

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURE = os.path.join(HERE, "search_golden.json")


def stable_repr(obj) -> str:
    """A deterministic repr: frozensets render sorted.

    ``repr(frozenset)`` order depends on the process hash seed, so raw
    reprs of signatures are not comparable across runs.
    """
    if isinstance(obj, (frozenset, set)):
        return "{" + ", ".join(sorted(stable_repr(e) for e in obj)) + "}"
    if isinstance(obj, tuple):
        inner = ", ".join(stable_repr(e) for e in obj)
        return f"({inner},)" if len(obj) == 1 else f"({inner})"
    return repr(obj)

#: Keep each task fast and timeout-free so the stream is deterministic
#: across machines: bound by expansions/candidates only.
CONFIG = dict(max_candidates=10, max_expansions=2500, time_budget=None)


def fixture_tasks():
    """Yield (name, db, model, nlq, tsq, gold, task_id) fixtures."""
    corpus = generate_corpus("dev", SpiderCorpusConfig(
        num_databases=2, tasks_per_database=3, seed=7))
    oracle = CalibratedOracleModel(seed=0)
    for task in list(corpus)[:4]:
        db = corpus.database_for(task)
        tsq = synthesize_tsq(task, db, detail=DETAIL_FULL, seed=0)
        yield (f"spider:{task.task_id}", db, oracle, task.nlq, tsq,
               task.gold, task.task_id)

    mas = build_mas_database(seed=0)
    lexical = LexicalGuidanceModel()
    for task in list(nli_study_tasks(mas))[:2]:
        tsq = synthesize_tsq(task, mas, detail=DETAIL_FULL, seed=0)
        yield (f"mas:{task.task_id}", mas, lexical, task.nlq, tsq,
               None, task.task_id)


def run_task(db, model, nlq, tsq, gold, task_id):
    config = EnumeratorConfig(**CONFIG)
    enumerator = Enumerator(db, model, nlq, tsq=tsq, config=config,
                            gold=gold, task_id=task_id)
    stream = []
    for candidate in enumerator.enumerate():
        stream.append({
            "signature": stable_repr(signature(candidate.query)),
            "confidence": candidate.confidence,
            "index": candidate.index,
            "expansions": candidate.expansions,
        })
    return {"candidates": stream, "total_expansions": enumerator.expansions}


def main() -> None:
    golden = {"config": CONFIG, "tasks": {}}
    for name, db, model, nlq, tsq, gold, task_id in fixture_tasks():
        golden["tasks"][name] = run_task(db, model, nlq, tsq, gold, task_id)
        print(f"{name}: {len(golden['tasks'][name]['candidates'])} candidates,"
              f" {golden['tasks'][name]['total_expansions']} expansions")
    with open(FIXTURE, "w", encoding="utf-8") as handle:
        json.dump(golden, handle, indent=1, sort_keys=True)
    print(f"wrote {FIXTURE}")


if __name__ == "__main__":
    main()
