"""Differential fuzzing of the search matrix.

The equivalence suite pins a handful of golden tasks; this suite
samples the configuration matrix on *fresh* synthetic tasks.  The
property under test: for any task, the candidate stream of a
(backend, probe-planner, guidance-batch) variant is a pure function of
``(engine, cost_order)`` alone — every knob combination must answer
bit-for-bit like the inline seed run at the same engine and cost-order
point, and record the same verifier stats.  ``cost_order`` is part of
the baseline key, not a variant knob, because cost-order modes hand
the *beam* frontiers a cost key that deliberately reweights
truncation (see ``make_frontier``); only best-first carries the
stronger documented contract that ``order`` preserves the answer set,
which ``test_order_preserves_best_first_answers`` checks separately.

Tier-1 runs a small, fully deterministic profile (``derandomize=True``
so the sampled points never shift under ``-x``).  The nightly CI job
widens the sweep with ``REPRO_FUZZ_DEEP=1``.
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.enumerator import Enumerator, EnumeratorConfig
from repro.datasets import (
    DETAIL_FULL,
    SpiderCorpusConfig,
    generate_corpus,
    synthesize_tsq,
)
from repro.guidance.oracle import CalibratedOracleModel
from repro.sqlir.canon import signature

from tests.core.fixtures.generate_search_golden import stable_repr

_DEEP = os.environ.get("REPRO_FUZZ_DEEP") == "1"
FUZZ = settings(max_examples=64 if _DEEP else 10,
                deadline=None,
                derandomize=True,
                suppress_health_check=(HealthCheck.too_slow,))

#: Corpus seeds — each generates one fresh synthetic-Spider task.
CORPUS_SEEDS = (11, 23, 37) + ((41, 53, 67, 79, 97) if _DEEP else ())
ENGINES = ("best-first", "beam")
#: (workers, verify_backend) variant points; the inline seed execution
#: mode is the baseline every point is compared against.
BACKENDS = ((1, "threads"), (2, "threads"), (4, "threads"),
            (2, "processes"))
PLANNERS = ("off", "plan", "batch", "fuse")

#: Keep every run fast and timeout-free so streams are deterministic
#: across machines: bounded by expansions/candidates only.
BUDGETS = dict(beam_width=8, max_candidates=8, max_expansions=1500,
               time_budget=None)

_TASKS = {}
_BASELINES = {}


def fuzz_task(seed):
    """One synthetic task per corpus seed, cached for the module."""
    if seed not in _TASKS:
        corpus = generate_corpus("dev", SpiderCorpusConfig(
            num_databases=1, tasks_per_database=1, seed=seed))
        task = next(iter(corpus))
        db = corpus.database_for(task)
        tsq = synthesize_tsq(task, db, detail=DETAIL_FULL, seed=0)
        _TASKS[seed] = (db, task, tsq)
    return _TASKS[seed]


def run_point(seed, engine, workers=1, verify_backend="inline",
              **overrides):
    db, task, tsq = fuzz_task(seed)
    config = EnumeratorConfig(engine=engine, workers=workers,
                              verify_backend=verify_backend,
                              **BUDGETS, **overrides)
    enumerator = Enumerator(db, CalibratedOracleModel(seed=0), task.nlq,
                            tsq=tsq, config=config, gold=task.gold,
                            task_id=task.task_id)
    stream = [(c.index, c.confidence, c.expansions,
               stable_repr(signature(c.query)))
              for c in enumerator.enumerate()]
    return stream, enumerator


def baseline(seed, engine, cost_order):
    """The inline knobs-off run this point must reproduce bit-for-bit.

    ``cost_order`` keys the baseline because it feeds the beam
    frontiers a truncation cost key — a deliberate stream change, not
    an execution detail like the backend or planner knobs.
    """
    key = (seed, engine, cost_order)
    if key not in _BASELINES:
        stream, enumerator = run_point(seed, engine,
                                       cost_order=cost_order)
        _BASELINES[key] = (stream, enumerator.verifier.stats,
                           enumerator.expansions)
    return _BASELINES[key]


matrix_points = st.tuples(
    st.sampled_from(CORPUS_SEEDS),
    st.sampled_from(ENGINES),
    st.sampled_from(BACKENDS),
    st.sampled_from(PLANNERS),
    st.sampled_from(("off", "order")),
    st.booleans(),  # guidance_batch
)


@FUZZ
@given(point=matrix_points)
def test_matrix_point_matches_inline_seed_run(point):
    seed, engine, (workers, backend), planner, cost_order, batch = point
    expected_stream, expected_stats, expected_expansions = \
        baseline(seed, engine, cost_order)
    stream, enumerator = run_point(seed, engine, workers=workers,
                                   verify_backend=backend,
                                   probe_planner=planner,
                                   cost_order=cost_order,
                                   guidance_batch=batch)
    label = (f"seed={seed} engine={engine} workers={workers} "
             f"backend={backend} planner={planner} "
             f"cost_order={cost_order} guidance_batch={batch}")

    assert stream == expected_stream, f"stream diverged: {label}"
    assert enumerator.expansions == expected_expansions, \
        f"expansion count diverged: {label}"
    assert enumerator.verifier.stats == expected_stats, \
        f"verifier stats diverged: {label}"

    # Planner modes must hold the stream on the fast path alone: a
    # silent degrade on a random task is a bug even when the fallback
    # preserves the answers.
    telemetry = enumerator.telemetry
    assert telemetry.probe_fuse_fallbacks == 0, label
    assert telemetry.probe_batch_fallbacks == 0, label
    if planner != "fuse":
        assert telemetry.probe_fused_groups == 0, label
    if planner in ("off", "plan"):
        assert telemetry.probe_batch_stmts == 0, label
    if planner == "off":
        assert telemetry.probe_compiles == 0, label


@FUZZ
@given(seed=st.sampled_from(CORPUS_SEEDS))
def test_order_preserves_best_first_answers(seed):
    """Best-first carries the stronger ``order`` contract: the frontier
    ignores the cost key, so cheapest-first dispatch may reorder
    statement execution but never change the emitted answer set."""
    off_stream, _, _ = baseline(seed, "best-first", "off")
    order_stream, _, _ = baseline(seed, "best-first", "order")
    assert {sig for *_, sig in order_stream} == \
        {sig for *_, sig in off_stream}, f"seed={seed}"


@FUZZ
@given(seed=st.sampled_from(CORPUS_SEEDS),
       planner=st.sampled_from(PLANNERS))
def test_order_never_executes_more_probes(seed, planner):
    """The cost-order execution contract, fuzzed: with single-flight
    dedup on, a cost-ordered parallel round never executes more probes
    than the plain parallel run, under every planner mode."""
    _, off = run_point(seed, "best-first", workers=4,
                       verify_backend="threads", probe_planner=planner)
    _, ordered = run_point(seed, "best-first", workers=4,
                           verify_backend="threads",
                           probe_planner=planner, cost_order="order")
    assert ordered.telemetry.probe_misses <= off.telemetry.probe_misses, \
        f"seed={seed} planner={planner}"
    assert ordered.telemetry.probe_timeouts == 0
