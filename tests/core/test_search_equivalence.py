"""Seeded regression: the search engine reproduces the seed enumerator.

``tests/core/fixtures/search_golden.json`` pins the exact candidate
stream (canonical signature, confidence, emission index, expansions at
emission) the seed best-first enumerator produced on bundled MAS and
synthetic-Spider fixtures. The engine must reproduce it bit for bit
with ``engine="best-first"`` for every worker count — speculative
batching, the shared probe cache, and batched guidance must all be
invisible in the output.

Regenerate the fixture (only for intentional behaviour changes) with::

    PYTHONPATH=src:. python tests/core/fixtures/generate_search_golden.py
"""

from __future__ import annotations

import json

import pytest

from repro.core.enumerator import Enumerator, EnumeratorConfig
from repro.sqlir.canon import signature

from tests.core.fixtures.generate_search_golden import (
    CONFIG,
    FIXTURE,
    fixture_tasks,
    stable_repr,
)


@pytest.fixture(scope="module")
def golden():
    with open(FIXTURE, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def tasks():
    return {name: (db, model, nlq, tsq, gold, task_id)
            for name, db, model, nlq, tsq, gold, task_id in fixture_tasks()}


def run_engine(task, workers: int, engine: str = "best-first",
               verify_backend: str = "threads", pool_manager=None,
               probe_cache=None, **overrides):
    db, model, nlq, tsq, gold, task_id = task
    settings = dict(CONFIG)
    settings.update(overrides)
    config = EnumeratorConfig(engine=engine, workers=workers,
                              verify_backend=verify_backend, **settings)
    enumerator = Enumerator(db, model, nlq, tsq=tsq, config=config,
                            gold=gold, task_id=task_id,
                            pool_manager=pool_manager,
                            probe_cache=probe_cache)
    candidates = list(enumerator.enumerate())
    stream = [{
        "signature": stable_repr(signature(candidate.query)),
        "confidence": candidate.confidence,
        "index": candidate.index,
        "expansions": candidate.expansions,
    } for candidate in candidates]
    return stream, enumerator, candidates


class TestBestFirstMatchesSeed:
    """`--engine best-first` is bit-for-bit identical to the seed."""

    @pytest.mark.parametrize("workers,backend", [
        (1, "threads"), (4, "threads"), (1, "inline"), (4, "processes"),
    ])
    def test_candidate_stream_matches_golden(self, golden, tasks, workers,
                                             backend):
        assert golden["tasks"], "fixture must not be empty"
        for name, expected in golden["tasks"].items():
            stream, enumerator, _ = run_engine(tasks[name], workers,
                                               verify_backend=backend)
            assert stream == expected["candidates"], \
                f"{name} diverged from the seed enumerator " \
                f"(workers={workers}, backend={backend})"
            assert enumerator.expansions == expected["total_expansions"], \
                f"{name} expansion count diverged (workers={workers}, " \
                f"backend={backend})"

    def test_fixture_covers_both_datasets(self, golden):
        names = list(golden["tasks"])
        assert any(name.startswith("spider:") for name in names)
        assert any(name.startswith("mas:") for name in names)

    def test_parallel_run_reports_speculation(self, tasks):
        """workers=4 actually batches (push-backs happen) yet the stream
        above stayed identical — the speculation is observable only in
        telemetry."""
        name = next(iter(tasks))
        _, enumerator, _ = run_engine(tasks[name], workers=4)
        telemetry = enumerator.telemetry
        assert telemetry.workers == 4
        assert telemetry.engine == "best-first"
        assert telemetry.pushbacks > 0

    def test_telemetry_consistency(self, tasks):
        name = next(iter(tasks))
        stream, enumerator, _ = run_engine(tasks[name], workers=1)
        telemetry = enumerator.telemetry
        assert telemetry.emitted == len(stream)
        assert telemetry.expansions == enumerator.expansions
        assert telemetry.wall_time > 0.0
        prunes = sum(telemetry.prunes_by_stage.values())
        assert prunes == telemetry.pruned_partial + telemetry.pruned_complete

    @pytest.mark.parametrize("backend", ["threads", "processes"])
    def test_verifier_stats_match_serial(self, tasks, backend):
        """Speculative verification must not leak into verifier stats:
        only consumed outcomes are recorded, so stats match workers=1."""
        name = "spider:library_dev_0-t2"
        _, serial, _ = run_engine(tasks[name], workers=1)
        _, parallel, _ = run_engine(tasks[name], workers=4,
                                    verify_backend=backend)
        assert parallel.verifier.stats == serial.verifier.stats

    def test_process_backend_did_not_degrade(self, tasks):
        """The equivalence runs above only prove something if the
        process pool actually ran (no silent inline fallback)."""
        from repro.db.database import Database

        if not Database.supports_snapshots():
            pytest.skip("sqlite build cannot snapshot databases")
        name = next(iter(tasks))
        _, enumerator, _ = run_engine(tasks[name], workers=4,
                                      verify_backend="processes")
        telemetry = enumerator.telemetry
        assert telemetry.verify_backend == "processes"
        assert not telemetry.snapshot_degraded
        assert telemetry.workers == 4


class TestPersistentPoolEquivalence:
    """The persistence layer must be invisible in the output: warm
    leased pools and disk-loaded probe caches change wall time and
    telemetry only, never the candidate stream."""

    @pytest.fixture()
    def snapshots_or_skip(self):
        from repro.db.database import Database

        if not Database.supports_snapshots():
            pytest.skip("sqlite build cannot snapshot databases")

    def test_persistent_pool_matches_golden_across_tasks(
            self, golden, tasks, snapshots_or_skip):
        """Every fixture task through ONE shared PoolManager (per-db
        warm pools, shared probe caches) reproduces the golden stream,
        with zero extra worker spawns after each database's first."""
        from repro.core.search.parallel import PoolManager
        from repro.core.verifier import SharedProbeCache

        with PoolManager() as manager:
            caches = {}
            for name, expected in golden["tasks"].items():
                db = tasks[name][0]
                cache = caches.setdefault(id(db), SharedProbeCache())
                stream, enumerator, _ = run_engine(
                    tasks[name], workers=4, verify_backend="processes",
                    pool_manager=manager, probe_cache=cache)
                assert stream == expected["candidates"], \
                    f"{name} diverged under the persistent pool"
                assert enumerator.expansions == \
                    expected["total_expansions"]
                assert not enumerator.telemetry.snapshot_degraded
            stats = manager.stats
            assert stats["worker_spawns"] == stats["pools"] == len(caches)
            assert stats["persistent_leases"] == len(golden["tasks"])

    def test_warm_thread_pool_matches_golden_across_tasks(
            self, golden, tasks, snapshots_or_skip):
        """The warm ``threads`` variant (``warm_threads=True``) is
        equally invisible: every task through one shared manager
        reproduces the golden stream, spawning each database's executor
        once and reusing it for every later lease."""
        from repro.core.search.parallel import PoolManager
        from repro.core.verifier import SharedProbeCache

        with PoolManager(warm_threads=True) as manager:
            caches = {}
            reused_rounds = 0
            for name, expected in golden["tasks"].items():
                db = tasks[name][0]
                cache = caches.setdefault(id(db), SharedProbeCache())
                stream, enumerator, _ = run_engine(
                    tasks[name], workers=4, verify_backend="threads",
                    pool_manager=manager, probe_cache=cache)
                assert stream == expected["candidates"], \
                    f"{name} diverged under the warm thread pool"
                assert enumerator.expansions == \
                    expected["total_expansions"]
                assert not enumerator.telemetry.snapshot_degraded
                reused_rounds += enumerator.telemetry.pool_reused
            stats = manager.stats
            assert stats["worker_spawns"] == stats["pools"] == len(caches)
            assert stats["persistent_leases"] == len(golden["tasks"])
            # every lease after each database's first found warm threads
            assert reused_rounds == len(golden["tasks"]) - len(caches)

    def test_warm_cache_matches_golden_with_warm_hits(self, golden, tasks,
                                                      tmp_path):
        """A run warm-started from the disk store is bit-for-bit the
        golden stream — and actually served probes from disk entries."""
        from repro.core.search.cachestore import PersistentProbeCache

        store = PersistentProbeCache(tmp_path)
        name = next(iter(golden["tasks"]))
        db = tasks[name][0]
        cold_cache, loaded = store.warm_cache(db)
        assert loaded == 0  # nothing persisted yet
        run_engine(tasks[name], workers=1, probe_cache=cold_cache)
        store.save(db, cold_cache)

        warm_cache, loaded = store.warm_cache(db)
        assert loaded > 0
        stream, enumerator, _ = run_engine(tasks[name], workers=1,
                                           probe_cache=warm_cache)
        assert stream == golden["tasks"][name]["candidates"]
        telemetry = enumerator.telemetry
        assert telemetry.warm_start_probe_hits > 0
        assert telemetry.probe_misses == 0  # fully served from disk

    def test_warm_cache_with_persistent_pool_matches_golden(
            self, golden, tasks, tmp_path, snapshots_or_skip):
        """The full PR-3 stack at once — disk warm start + warm leased
        workers — still reproduces the golden stream, and the warm hits
        flow back from the worker processes."""
        from repro.core.search.cachestore import PersistentProbeCache
        from repro.core.search.parallel import PoolManager

        store = PersistentProbeCache(tmp_path)
        name = next(iter(golden["tasks"]))
        db = tasks[name][0]
        cold_cache, _ = store.warm_cache(db)
        run_engine(tasks[name], workers=1, probe_cache=cold_cache)
        store.save(db, cold_cache)

        warm_cache, loaded = store.warm_cache(db)
        assert loaded > 0
        with PoolManager() as manager:
            stream, enumerator, _ = run_engine(
                tasks[name], workers=4, verify_backend="processes",
                pool_manager=manager, probe_cache=warm_cache)
        assert stream == golden["tasks"][name]["candidates"]
        assert enumerator.telemetry.warm_start_probe_hits > 0
        assert not enumerator.telemetry.snapshot_degraded


class TestDecisionDispatch:
    """The reified decision is memoised on the search state: the
    engine's double dispatch (decision_request speculatively,
    expand_with at consume time, again after push-backs) resolves
    _next_decision at most once per state — with an unchanged stream."""

    def test_next_decision_runs_at_most_once_per_state(self, golden,
                                                       tasks,
                                                       monkeypatch):
        from repro.core.enumerator import Enumerator as EnumeratorClass

        calls = []  # strong refs, so id() cannot be reused by the GC
        original = EnumeratorClass._next_decision

        def counting(self, query):
            calls.append(query)
            return original(self, query)

        monkeypatch.setattr(EnumeratorClass, "_next_decision", counting)
        name = next(iter(golden["tasks"]))
        stream, _, _ = run_engine(tasks[name], workers=4)
        assert stream == golden["tasks"][name]["candidates"]
        assert calls, "no decisions were dispatched at all"
        assert len(calls) == len({id(q) for q in calls}), \
            "_next_decision recomputed for an already-resolved state"

    def test_request_reified_at_most_once_per_state(self, golden, tasks,
                                                    monkeypatch):
        """The GuidanceRequest (which carries the decision's candidate
        list) memoises on SearchState.request: even with push-backs
        re-dispatching states, each state's handler builds its request
        — and therefore its candidates — at most once."""
        from repro.core.enumerator import Enumerator as EnumeratorClass

        reified = []  # strong refs, so id() cannot be reused by the GC
        kinds = [attr[len("_expand_"):] for attr in dir(EnumeratorClass)
                 if attr.startswith("_expand_")]
        assert "col" in kinds and "join" in kinds
        for kind in kinds:
            original = getattr(EnumeratorClass, f"_expand_{kind}")

            def counting(self, ctx, state, *args, __original=original,
                         **kwargs):
                if kwargs.get("request_only"):
                    reified.append(state)
                return __original(self, ctx, state, *args, **kwargs)

            monkeypatch.setattr(EnumeratorClass, f"_expand_{kind}",
                                counting)
        name = next(iter(golden["tasks"]))
        stream, enumerator, _ = run_engine(tasks[name], workers=4)
        assert stream == golden["tasks"][name]["candidates"]
        # Push-backs re-dispatch states, so the memo was actually
        # exercised — without it the assertion below would fail.
        assert enumerator.telemetry.pushbacks > 0
        assert reified, "no requests were reified at all"
        assert len(reified) == len({id(s) for s in reified}), \
            "a state's GuidanceRequest (and candidate list) was " \
            "reified more than once"


class TestGuidanceBatchingEquivalence:
    """``--guidance-batch`` must be invisible in the output: request
    dedup, the distribution cache, and the server backend's degrade
    path change telemetry and wall time only, never the candidate
    stream (the models are deterministic per request, so a cached
    distribution is identical to a recomputed one)."""

    @pytest.mark.parametrize("workers,backend", [
        (1, "threads"), (4, "threads"), (1, "inline"), (4, "processes"),
    ])
    def test_batched_stream_matches_golden(self, golden, tasks, workers,
                                           backend):
        for name, expected in golden["tasks"].items():
            stream, enumerator, _ = run_engine(tasks[name], workers,
                                               verify_backend=backend,
                                               guidance_batch=True)
            assert stream == expected["candidates"], \
                f"{name} diverged under --guidance-batch " \
                f"(workers={workers}, backend={backend})"
            assert enumerator.expansions == expected["total_expansions"]
            assert enumerator.telemetry.guidance_batched

    def test_batching_amortisation_is_visible_in_telemetry(self, tasks):
        """workers=4 batches multiple decisions per round, so the
        wrapper issues strictly fewer model invocations than requests —
        the same stream, measurably fewer calls."""
        name = next(iter(tasks))
        _, enumerator, _ = run_engine(tasks[name], workers=4,
                                      guidance_batch=True)
        telemetry = enumerator.telemetry
        assert telemetry.guide_requests > 0
        assert telemetry.guide_batch_calls < telemetry.guide_requests
        assert telemetry.guide_calls + telemetry.guide_hits == \
            telemetry.guide_requests

    def test_shared_wrapper_amortises_across_enumerations(self, golden,
                                                          tasks):
        """A wrapper shared across enumerations (what the eval harness
        does) serves the second identical run entirely from its cache —
        zero model calls — while both streams stay golden."""
        from repro.guidance.batched import BatchingGuidanceModel

        name = next(iter(golden["tasks"]))
        db, model, nlq, tsq, gold, task_id = tasks[name]
        shared = BatchingGuidanceModel(model, cache_size=1 << 16)
        task = (db, shared, nlq, tsq, gold, task_id)
        first, _, _ = run_engine(task, workers=1, guidance_batch=True)
        second, enumerator, _ = run_engine(task, workers=1,
                                           guidance_batch=True)
        assert first == second == golden["tasks"][name]["candidates"]
        telemetry = enumerator.telemetry
        assert telemetry.guide_hits == telemetry.guide_requests > 0
        assert telemetry.guide_calls == 0

    def test_dead_server_degrades_to_the_golden_stream(self, golden,
                                                       tasks, caplog):
        """Server failure must be visible (warning + telemetry flag)
        and harmless: the fallback is the local model, so the stream is
        bit-for-bit the golden one."""
        import logging

        name = next(iter(golden["tasks"]))
        with caplog.at_level(logging.WARNING, "repro.guidance.batched"):
            stream, enumerator, _ = run_engine(
                tasks[name], workers=1, guidance_server="127.0.0.1:1")
        assert stream == golden["tasks"][name]["candidates"]
        assert enumerator.telemetry.guidance_degraded
        assert enumerator.telemetry.guidance_batched
        assert "degrading to the local" in caplog.text


class TestProbePlannerEquivalence:
    """``--probe-planner`` must be invisible in the output: compiling
    probes to shared parameterised plans and fusing rounds into
    multi-probe statements change statement counts and telemetry only —
    probe answers are facts of the database, so the candidate stream
    and the verifier's stage stats stay bit-for-bit identical."""

    @pytest.mark.parametrize("planner", ["plan", "batch", "fuse"])
    @pytest.mark.parametrize("workers,backend", [
        (1, "inline"), (4, "threads"), (4, "processes"),
    ])
    def test_planner_stream_matches_golden(self, golden, tasks, planner,
                                           workers, backend):
        for name, expected in golden["tasks"].items():
            stream, enumerator, _ = run_engine(tasks[name], workers,
                                               verify_backend=backend,
                                               probe_planner=planner)
            assert stream == expected["candidates"], \
                f"{name} diverged under --probe-planner {planner} " \
                f"(workers={workers}, backend={backend})"
            assert enumerator.expansions == expected["total_expansions"]
            assert enumerator.telemetry.probe_planner == planner

    @pytest.mark.parametrize("planner", ["plan", "batch", "fuse"])
    def test_planner_verifier_stats_match_serial(self, tasks, planner):
        """Stage pass/fail counts are part of the contract: the planner
        must not change any verification outcome."""
        name = "spider:library_dev_0-t2"
        _, plain, _ = run_engine(tasks[name], workers=1)
        _, planned, _ = run_engine(tasks[name], workers=4,
                                   probe_planner=planner)
        assert planned.verifier.stats == plain.verifier.stats

    def test_plan_reuse_is_visible_in_telemetry(self, tasks):
        """The planner must actually amortise: probes structurally
        identical to an earlier one are served by a compiled plan, so
        plan hits dominate compiles on any real task."""
        name = next(iter(tasks))
        _, enumerator, _ = run_engine(tasks[name], workers=1,
                                      probe_planner="plan")
        telemetry = enumerator.telemetry
        assert telemetry.probe_compiles > 0
        assert telemetry.probe_plan_hits > telemetry.probe_compiles

    def test_batch_mode_fuses_statements(self, tasks):
        """``batch`` actually executes fused multi-probe statements,
        and they show up in the per-kind statement counters."""
        name = next(iter(tasks))
        db = tasks[name][0]
        before = db.stats.snapshot()
        _, enumerator, _ = run_engine(tasks[name], workers=4,
                                      probe_planner="batch")
        delta = db.stats.delta_since(before)
        assert enumerator.telemetry.probe_batch_stmts > 0
        assert delta.per_kind.get("probe_batch", 0) > 0

    def test_batch_issues_fewer_statements_than_off(self, tasks):
        """The point of the tentpole: a batched round executes fewer
        probe-path statements than one-probe-per-round-trip."""
        name = next(iter(tasks))
        db = tasks[name][0]
        before = db.stats.snapshot()
        run_engine(tasks[name], workers=4)
        off_delta = db.stats.delta_since(before)
        before = db.stats.snapshot()
        run_engine(tasks[name], workers=4, probe_planner="batch")
        batch_delta = db.stats.delta_since(before)
        off_probe_stmts = off_delta.per_kind.get("probe", 0)
        batch_probe_stmts = batch_delta.per_kind.get("probe", 0) \
            + batch_delta.per_kind.get("probe_batch", 0)
        assert batch_probe_stmts < off_probe_stmts

    def test_planner_composes_with_shared_cache_and_pool(
            self, golden, tasks, tmp_path):
        """The full stack — planner batch mode, canonical cache keys
        persisted to disk, warm restart — still reproduces the golden
        stream, and the second run warm-starts from canonical keys."""
        from repro.core.search.cachestore import PersistentProbeCache

        store = PersistentProbeCache(tmp_path)
        name = next(iter(golden["tasks"]))
        db = tasks[name][0]
        cold_cache, loaded = store.warm_cache(db)
        assert loaded == 0
        first, _, _ = run_engine(tasks[name], workers=1,
                                 probe_planner="batch",
                                 probe_cache=cold_cache)
        store.save(db, cold_cache)

        warm_cache, loaded = store.warm_cache(db)
        assert loaded > 0
        second, enumerator, _ = run_engine(tasks[name], workers=1,
                                           probe_planner="batch",
                                           probe_cache=warm_cache)
        assert first == second == golden["tasks"][name]["candidates"]
        assert enumerator.telemetry.warm_start_probe_hits > 0
        # Fully warm: the prefetch finds every probe cached, so no
        # fused statements (and no probe misses) are paid at all.
        assert enumerator.telemetry.probe_misses == 0
        assert enumerator.telemetry.probe_batch_stmts == 0


class TestFuseEquivalence:
    """``--probe-planner fuse`` must be invisible in the output: the
    grouped single-scan statements and the staged (column-first)
    prefetch change statement counts and telemetry only — the candidate
    stream stays bit-for-bit golden across backends and warm starts.
    The stream matrix itself runs in TestProbePlannerEquivalence
    (``planner="fuse"`` across inline/threads/processes); these tests
    pin what the matrix cannot: the fused groups actually execute, the
    new statement kind shows up, and the mode composes with the rest of
    the stack."""

    def test_fuse_executes_grouped_scans(self, golden, tasks):
        """``fuse`` actually executes grouped single-scan statements:
        the FuseGrp telemetry is nonzero, the new ``probe_fuse``
        statement kind shows up in the per-kind counters, nothing
        degraded — and the stream stayed golden."""
        name = next(iter(golden["tasks"]))
        db = tasks[name][0]
        before = db.stats.snapshot()
        stream, enumerator, _ = run_engine(tasks[name], workers=4,
                                           probe_planner="fuse")
        delta = db.stats.delta_since(before)
        assert stream == golden["tasks"][name]["candidates"]
        assert enumerator.telemetry.probe_fused_groups > 0
        assert enumerator.telemetry.probe_fuse_fallbacks == 0
        assert enumerator.telemetry.probe_batch_fallbacks == 0
        assert delta.per_kind.get("probe_fuse", 0) > 0

    def test_fuse_issues_fewer_statements_than_batch(self, tasks):
        """The point of the tentpole: one scan per group beats one
        UNION ALL arm per probe — strictly fewer probe-path statements
        than ``batch`` on the same task."""
        name = next(iter(tasks))
        db = tasks[name][0]
        before = db.stats.snapshot()
        run_engine(tasks[name], workers=4, probe_planner="batch")
        batch_delta = db.stats.delta_since(before)
        before = db.stats.snapshot()
        run_engine(tasks[name], workers=4, probe_planner="fuse")
        fuse_delta = db.stats.delta_since(before)

        def probe_stmts(delta):
            return sum(delta.per_kind.get(kind, 0)
                       for kind in ("probe", "probe_batch", "probe_fuse"))

        assert probe_stmts(fuse_delta) < probe_stmts(batch_delta)

    def test_fuse_warm_start_matches_golden(self, golden, tasks,
                                            tmp_path):
        """fuse -> save -> fuse warm restart: the canonical keys the
        fused scans scatter persist like executed ones, so the second
        run warm-starts fully (no misses, no fused scans paid) and
        stays golden."""
        from repro.core.search.cachestore import PersistentProbeCache

        store = PersistentProbeCache(tmp_path)
        name = next(iter(golden["tasks"]))
        db = tasks[name][0]
        cold_cache, loaded = store.warm_cache(db)
        assert loaded == 0
        first, _, _ = run_engine(tasks[name], workers=1,
                                 probe_planner="fuse",
                                 probe_cache=cold_cache)
        store.save(db, cold_cache)

        warm_cache, loaded = store.warm_cache(db)
        assert loaded > 0
        second, enumerator, _ = run_engine(tasks[name], workers=1,
                                           probe_planner="fuse",
                                           probe_cache=warm_cache)
        assert first == second == golden["tasks"][name]["candidates"]
        assert enumerator.telemetry.warm_start_probe_hits > 0
        assert enumerator.telemetry.probe_misses == 0
        assert enumerator.telemetry.probe_fused_groups == 0

    def test_fuse_with_persistent_pool_matches_golden(self, golden,
                                                      tasks):
        """fuse × warm leased process pools: worker planners rebuild in
        fuse mode, their 7-slot counter deltas fold back over the batch
        protocol, and every task's stream stays golden."""
        from repro.core.search.parallel import PoolManager
        from repro.core.verifier import SharedProbeCache
        from repro.db.database import Database

        if not Database.supports_snapshots():
            pytest.skip("sqlite build cannot snapshot databases")
        with PoolManager() as manager:
            caches = {}
            fused_groups = 0
            for name, expected in golden["tasks"].items():
                db = tasks[name][0]
                cache = caches.setdefault(id(db), SharedProbeCache())
                stream, enumerator, _ = run_engine(
                    tasks[name], workers=4, verify_backend="processes",
                    pool_manager=manager, probe_cache=cache,
                    probe_planner="fuse")
                assert stream == expected["candidates"], \
                    f"{name} diverged under fuse + persistent pool"
                assert not enumerator.telemetry.snapshot_degraded
                assert enumerator.telemetry.probe_fuse_fallbacks == 0
                fused_groups += enumerator.telemetry.probe_fused_groups
        assert fused_groups > 0

    def test_fuse_composes_with_cost_order(self, golden, tasks):
        """fuse × ``--cost-order order``: the group-cost ordering is a
        reordering of fact lookups, so the answer set is exactly the
        golden one and no group degrades."""
        name = next(iter(golden["tasks"]))
        stream, enumerator, _ = run_engine(tasks[name], workers=4,
                                           probe_planner="fuse",
                                           cost_order="order")
        assert {c["signature"] for c in stream} == \
            {c["signature"]
             for c in golden["tasks"][name]["candidates"]}
        assert enumerator.telemetry.probe_fuse_fallbacks == 0

    def test_fuse_verifier_stats_match_serial_off(self, tasks):
        """Stage pass/fail counts are part of the contract: the staged
        prefetch (including its peek-based row-probe pruning) must not
        change any verification outcome."""
        name = "spider:library_dev_0-t2"
        _, plain, _ = run_engine(tasks[name], workers=1)
        _, fused, _ = run_engine(tasks[name], workers=4,
                                 verify_backend="processes",
                                 probe_planner="fuse")
        assert fused.verifier.stats == plain.verifier.stats


class TestCostOrderEquivalence:
    """``--cost-order`` ships with a tiered stream contract: ``off``
    (the default) is pinned bit-for-bit by the golden fixture across
    backend combinations, ``order`` must preserve the final answer set
    exactly while never executing more probes, and ``abort`` is the
    only mode allowed to change answers (gated by the harness's
    ``run_cost_order_audit`` accuracy-delta report, not by this
    suite)."""

    @pytest.mark.parametrize("workers,backend,overrides", [
        (1, "threads", {}),
        (4, "threads", {}),
        (4, "processes", {}),
        (4, "threads", {"probe_planner": "batch"}),
    ])
    def test_off_stream_matches_golden(self, golden, tasks, workers,
                                       backend, overrides):
        for name, expected in golden["tasks"].items():
            stream, enumerator, _ = run_engine(tasks[name], workers,
                                               verify_backend=backend,
                                               cost_order="off",
                                               **overrides)
            assert stream == expected["candidates"], \
                f"{name} diverged with explicit cost_order='off' " \
                f"(workers={workers}, backend={backend}, {overrides})"
            assert enumerator.expansions == expected["total_expansions"]
            assert enumerator.telemetry.cost_order == "off"
            assert enumerator.telemetry.cost_ordered == 0
            assert enumerator.telemetry.cost_aborts == 0

    def test_off_with_warm_start_matches_golden(self, golden, tasks,
                                                tmp_path):
        from repro.core.search.cachestore import PersistentProbeCache

        store = PersistentProbeCache(tmp_path)
        name = next(iter(golden["tasks"]))
        db = tasks[name][0]
        cold_cache, _ = store.warm_cache(db)
        run_engine(tasks[name], workers=1, cost_order="off",
                   probe_cache=cold_cache)
        store.save(db, cold_cache)

        warm_cache, loaded = store.warm_cache(db)
        assert loaded > 0
        stream, enumerator, _ = run_engine(tasks[name], workers=1,
                                           cost_order="off",
                                           probe_cache=warm_cache)
        assert stream == golden["tasks"][name]["candidates"]
        assert enumerator.telemetry.warm_start_probe_hits > 0

    @pytest.mark.parametrize("workers,backend", [
        (1, "threads"), (4, "threads"), (4, "processes"),
    ])
    def test_order_preserves_answer_set(self, golden, tasks, workers,
                                        backend):
        """The ``order`` contract: cheapest-first dispatch reorders
        statement execution only — probe answers are facts, so the
        emitted answer set is exactly the golden one."""
        for name, expected in golden["tasks"].items():
            stream, enumerator, _ = run_engine(tasks[name], workers,
                                               verify_backend=backend,
                                               cost_order="order")
            assert {c["signature"] for c in stream} == \
                {c["signature"] for c in expected["candidates"]}, \
                f"{name} answer set changed under --cost-order order " \
                f"(workers={workers}, backend={backend})"
            assert enumerator.telemetry.cost_order == "order"
            if workers > 1:
                assert enumerator.telemetry.cost_ordered > 0

    def test_order_never_executes_more_probes(self, tasks):
        """The other half of the ``order`` contract: with single-flight
        dedup on, a cost-ordered parallel round can never execute more
        probes than the plain parallel run (which may race duplicate
        probes before the first insert lands)."""
        name = "spider:library_dev_0-t2"
        _, off_enum, _ = run_engine(tasks[name], workers=4)
        _, cost_enum, _ = run_engine(tasks[name], workers=4,
                                     cost_order="order")
        assert cost_enum.telemetry.probe_misses \
            <= off_enum.telemetry.probe_misses
        assert cost_enum.telemetry.probe_timeouts == 0

    def test_order_verifier_stats_match_off(self, tasks):
        """Reordering must not change any verification outcome: stage
        pass/fail counts match the plain run exactly."""
        name = "spider:library_dev_0-t2"
        _, plain, _ = run_engine(tasks[name], workers=1)
        _, ordered, _ = run_engine(tasks[name], workers=4,
                                   cost_order="order")
        assert ordered.verifier.stats == plain.verifier.stats


class TestWarmStartSurvivesPlannerFlip:
    """The probe store is dual-keyed (raw SQL + canonical twins), so a
    warm ``--cache-dir`` written under one ``--probe-planner`` mode
    still warm-starts a run under the other — in both directions."""

    def test_off_store_warms_a_planner_run(self, golden, tasks, tmp_path):
        """off (raw keys) -> save -> batch (canonical lookups): the
        save-side canonical twins serve the planner's keyed probes."""
        from repro.core.search.cachestore import PersistentProbeCache

        store = PersistentProbeCache(tmp_path)
        name = next(iter(golden["tasks"]))
        db = tasks[name][0]
        cold_cache, _ = store.warm_cache(db)
        run_engine(tasks[name], workers=1, probe_cache=cold_cache)
        store.save(db, cold_cache)

        warm_cache, loaded = store.warm_cache(db)
        assert loaded > 0
        stream, enumerator, _ = run_engine(tasks[name], workers=1,
                                           probe_planner="batch",
                                           probe_cache=warm_cache)
        assert stream == golden["tasks"][name]["candidates"]
        assert enumerator.telemetry.warm_start_probe_hits > 0

    def test_planner_store_warms_an_off_run(self, golden, tasks,
                                            tmp_path):
        """batch (canonical keys) -> save -> off (raw lookups): the
        cache-side fallback aliases a missing raw key to its canonical
        twin when the store was seeded with canonical entries."""
        from repro.core.search.cachestore import PersistentProbeCache

        store = PersistentProbeCache(tmp_path)
        name = next(iter(golden["tasks"]))
        db = tasks[name][0]
        cold_cache, _ = store.warm_cache(db)
        run_engine(tasks[name], workers=1, probe_planner="batch",
                   probe_cache=cold_cache)
        store.save(db, cold_cache)

        warm_cache, loaded = store.warm_cache(db)
        assert loaded > 0
        stream, enumerator, _ = run_engine(tasks[name], workers=1,
                                           probe_cache=warm_cache)
        assert stream == golden["tasks"][name]["candidates"]
        assert enumerator.telemetry.warm_start_probe_hits > 0


class TestBeamEngines:
    """Beam engines trade completeness for bounded frontiers but stay
    sound: everything they emit also passes the full verifier."""

    @pytest.mark.parametrize("engine", ["beam", "diverse-beam"])
    def test_beam_emits_verified_candidates(self, tasks, engine):
        name = "spider:library_dev_0-t0"
        stream, enumerator, candidates = run_engine(
            tasks[name], workers=1, engine=engine, beam_width=8)
        assert stream, f"{engine} emitted nothing"
        assert enumerator.telemetry.engine == engine
        # Soundness: every emitted candidate passes a fresh verification.
        for candidate in candidates:
            assert enumerator.verifier.verify(candidate.query).ok

    @pytest.mark.parametrize("engine", ["beam", "diverse-beam"])
    def test_beam_subset_of_best_first(self, golden, tasks, engine):
        """A beam never invents candidates: its emissions are a subset
        of the exhaustive best-first stream's signatures (both searches
        are bounded by the same expansion budget here, so the beam —
        which only discards states — cannot add new completions)."""
        name = "mas:A1"
        beam_stream, _, _ = run_engine(tasks[name], workers=1,
                                       engine=engine, beam_width=6)
        exhaustive = {c["signature"]
                      for c in golden["tasks"][name]["candidates"]}
        beam_signatures = {c["signature"] for c in beam_stream}
        # With a small beam some candidates are lost, none are invented
        # beyond what a (larger-budget) exhaustive enumeration yields;
        # check against the golden top plus a fresh unbounded run.
        if not beam_signatures <= exhaustive:
            full_stream, _, _ = run_engine(tasks[name], workers=1,
                                           max_candidates=200,
                                           max_expansions=20_000)
            exhaustive |= {c["signature"] for c in full_stream}
        assert beam_signatures <= exhaustive

    def test_beam_truncation_reported(self, tasks):
        name = "mas:A2"
        _, enumerator, _ = run_engine(tasks[name], workers=1,
                                      engine="beam", beam_width=4)
        assert enumerator.telemetry.beam_dropped > 0



class TestBoundedCacheEquivalence:
    """``--probe-cache-entries`` changes memory, never answers: a
    tightly bounded cache emits the golden stream with the same prune
    profile across backends and planner modes — eviction may only cost
    re-probes (visible in hit/miss counters), never a candidate."""

    @pytest.mark.parametrize("workers,backend", [
        (1, "threads"), (4, "threads"), (4, "processes"),
    ])
    def test_bounded_stream_matches_golden(self, golden, tasks, workers,
                                           backend):
        from repro.core.verifier import SharedProbeCache

        for name, expected in golden["tasks"].items():
            cache = SharedProbeCache(max_entries=12)
            stream, enumerator, _ = run_engine(
                tasks[name], workers, verify_backend=backend,
                probe_cache=cache)
            assert stream == expected["candidates"], \
                f"{name} diverged under a bounded probe cache " \
                f"(workers={workers}, backend={backend})"
            assert enumerator.expansions == expected["total_expansions"]
            assert len(cache) <= 12

    @pytest.mark.parametrize("planner", ["batch", "fuse"])
    def test_bounded_planner_modes_match_golden(self, golden, tasks,
                                                planner):
        from repro.core.verifier import SharedProbeCache

        name = "spider:library_dev_0-t1"
        cache = SharedProbeCache(max_entries=12)
        stream, _, _ = run_engine(tasks[name], workers=1,
                                  probe_planner=planner,
                                  probe_cache=cache)
        assert stream == golden["tasks"][name]["candidates"]
        assert len(cache) <= 12

    def test_eviction_changes_counters_not_prunes(self, tasks):
        """The bound really engages — and still the search makes
        exactly the same pruning decisions as the unbounded run."""
        from repro.core.verifier import SharedProbeCache

        name = "spider:library_dev_0-t1"  # 39 distinct probe entries
        _, unbounded, _ = run_engine(tasks[name], workers=1)
        cache = SharedProbeCache(max_entries=8)
        _, bounded, _ = run_engine(tasks[name], workers=1,
                                   probe_cache=cache)
        assert bounded.telemetry.probe_cache_evictions > 0
        assert bounded.telemetry.probe_cache_entries <= 8
        assert bounded.telemetry.prunes_by_stage == \
            unbounded.telemetry.prunes_by_stage
        # re-probes surface as extra misses, the documented trade
        assert cache.misses >= unbounded.verifier.probe_cache.misses

    def test_config_knob_builds_a_bounded_cache(self, golden, tasks):
        """``EnumeratorConfig.probe_cache_entries`` (the CLI's
        ``--probe-cache-entries``) bounds the enumerator-owned cache."""
        name = "spider:library_dev_0-t1"
        stream, enumerator, _ = run_engine(tasks[name], workers=1,
                                           probe_cache_entries=8)
        assert stream == golden["tasks"][name]["candidates"]
        assert enumerator.telemetry.probe_cache_entries <= 8
        assert enumerator.telemetry.probe_cache_evictions > 0

    def test_bounded_warm_start_after_eviction(self, golden, tasks,
                                               tmp_path):
        """The tentpole contract end to end: a bounded cache evicts,
        eviction flushes to the store, and the next bounded session
        still warm-starts from disk — with an identical stream."""
        from repro.core.search.cachestore import PersistentProbeCache

        store = PersistentProbeCache(tmp_path)
        name = "spider:library_dev_0-t1"
        db = tasks[name][0]
        cache, loaded = store.warm_cache(db, max_entries=24)
        assert loaded == 0  # cold start
        stream, _, _ = run_engine(tasks[name], workers=1,
                                  probe_cache=cache)
        assert stream == golden["tasks"][name]["candidates"]
        assert cache.evictions > 0
        store.save(db, cache)

        warm, loaded = store.warm_cache(db, max_entries=24)
        assert 0 < loaded
        assert len(warm) <= 24
        stream, enumerator, _ = run_engine(tasks[name], workers=1,
                                           probe_cache=warm)
        assert stream == golden["tasks"][name]["candidates"]
        assert enumerator.telemetry.warm_start_probe_hits > 0
        assert warm.evictions > 0  # the bound stayed engaged
