"""Documentation drift guards.

The top-level README documents the CLI flag matrix by hand; these tests
pin it to ``repro.cli.build_parser()`` so the two cannot drift apart: a
flag added to the CLI must be documented, and a flag documented in the
README must exist (catching typos and removals). CI runs this alongside
a literal ``python -m repro.cli --help`` smoke.
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

import pytest

from repro.cli import build_parser

README = Path(__file__).resolve().parent.parent / "README.md"

#: Long flags the README may mention that are not defined by our parser
#: (argparse adds --help implicitly; --port/--database belong to
#: examples/synthesis_service.py, quoted in the Serving section).
ALLOWED_FOREIGN_FLAGS = {"--help", "--port", "--database"}


def cli_surface():
    """(subcommand -> set of long flags) straight from the parser."""
    parser = build_parser()
    subparsers = next(action for action in parser._actions
                      if isinstance(action, argparse._SubParsersAction))
    surface = {}
    for name, sub in subparsers.choices.items():
        flags = set()
        for action in sub._actions:
            flags.update(opt for opt in action.option_strings
                         if opt.startswith("--"))
        flags.discard("--help")
        surface[name] = flags
    return surface


@pytest.fixture(scope="module")
def readme_text():
    assert README.exists(), "top-level README.md is missing"
    return README.read_text(encoding="utf-8")


def test_every_cli_flag_is_documented(readme_text):
    missing = []
    for command, flags in cli_surface().items():
        for flag in sorted(flags):
            if flag not in readme_text:
                missing.append(f"{command} {flag}")
    assert not missing, \
        f"CLI flags absent from README.md: {missing} — update the flag " \
        f"matrix (and run python -m repro.cli --help to see them)"


def test_every_cli_subcommand_is_documented(readme_text):
    missing = [name for name in cli_surface()
               if not re.search(rf"\b{re.escape(name)}\b", readme_text)]
    assert not missing, f"CLI subcommands absent from README.md: {missing}"


def test_readme_mentions_no_unknown_flags(readme_text):
    known = set().union(*cli_surface().values()) | ALLOWED_FOREIGN_FLAGS
    mentioned = set(re.findall(r"--[a-z][a-z0-9-]*", readme_text))
    unknown = sorted(mentioned - known)
    assert not unknown, \
        f"README.md documents flags the CLI does not define: {unknown}"


def test_help_renders_for_every_subcommand(capsys):
    """The literal drift-guard command CI runs must keep working."""
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["--help"])
    assert excinfo.value.code == 0
    assert "duoquest" in capsys.readouterr().out
