"""Integration tests for the experiment harness."""

import pytest

from repro.datasets import SpiderCorpusConfig, generate_corpus
from repro.eval import (
    SimulationConfig,
    fig10_report,
    fig11_report,
    fig12_report,
    run_ablations,
    run_detail_sweep,
    run_simulation,
    table5_report,
    table6_report,
)


@pytest.fixture(scope="module")
def tiny_corpus():
    return generate_corpus("dev", SpiderCorpusConfig(
        num_databases=3, tasks_per_database=4, seed=2))


@pytest.fixture(scope="module")
def sim_records(tiny_corpus):
    return run_simulation(tiny_corpus,
                          config=SimulationConfig(timeout=4.0))


class TestRunSimulation:
    def test_records_per_system(self, sim_records, tiny_corpus):
        for system in ("Duoquest", "NLI", "PBE"):
            bucket = [r for r in sim_records if r.system == system]
            assert len(bucket) == len(tiny_corpus)

    def test_duoquest_beats_nli_top1(self, sim_records):
        """The headline claim: >2x top-1 accuracy over NLI."""
        from repro.eval.metrics import top_k_accuracy

        duoquest = [r for r in sim_records if r.system == "Duoquest"]
        nli = [r for r in sim_records if r.system == "NLI"]
        _, dq_top1 = top_k_accuracy(duoquest, 1)
        _, nli_top1 = top_k_accuracy(nli, 1)
        assert dq_top1 > nli_top1

    def test_pbe_unsupported_on_hard(self, sim_records):
        hard_pbe = [r for r in sim_records
                    if r.system == "PBE" and r.difficulty == "hard"]
        assert all(not r.supported for r in hard_pbe)

    def test_ranks_well_formed(self, sim_records):
        for r in sim_records:
            if r.rank is not None:
                assert r.rank >= 1
                assert r.time_to_gold is not None

    def test_reports_render(self, sim_records, tiny_corpus):
        fig10 = fig10_report(sim_records, "tiny")
        assert "Duoquest" in fig10 and "PBE" in fig10
        fig11 = fig11_report(sim_records, "tiny")
        assert "easy" in fig11 or "E%" in fig11
        table5 = table5_report([tiny_corpus])
        assert "spider-dev" in table5


class TestDetailSweep:
    def test_detail_ordering(self, tiny_corpus):
        """Table 6's shape: more TSQ detail, no worse top-10 accuracy."""
        from repro.eval.metrics import top_k_accuracy

        records = run_detail_sweep(
            tiny_corpus, details=("full", "minimal"),
            config=SimulationConfig(timeout=4.0))
        full = [r for r in records if r.detail == "full"]
        minimal = [r for r in records if r.detail == "minimal"]
        _, full_top10 = top_k_accuracy(full, 10)
        _, minimal_top10 = top_k_accuracy(minimal, 10)
        assert full_top10 >= minimal_top10
        report = table6_report(records, [], "tiny")
        assert "Full" in report and "Minimal" in report


class TestAblations:
    def test_duoquest_dominates_curve(self, tiny_corpus):
        records = run_ablations(tiny_corpus,
                                config=SimulationConfig(timeout=4.0))
        from repro.eval.metrics import completion_curve

        grid = [4.0]
        duoquest = completion_curve(
            [r for r in records if r.system == "Duoquest"], grid)
        noguide = completion_curve(
            [r for r in records if r.system == "NoGuide"], grid)
        assert duoquest[0] >= noguide[0]
        report = fig12_report(records, [1.0, 4.0])
        assert "NoPQ" in report and "NoGuide" in report


class TestPersistentPools:
    """The harness leases verification workers from one process-wide
    PoolManager, so pools spawn once per database, not once per task."""

    def test_mid_sweep_spawns_are_zero(self, tiny_corpus, tmp_path):
        import pytest as _pytest

        from repro.db.database import Database
        from repro.eval import shared_pool_manager

        if not Database.supports_snapshots():
            _pytest.skip("sqlite build cannot snapshot databases")
        manager = shared_pool_manager()
        before = manager.stats
        config = SimulationConfig(timeout=4.0, workers=2,
                                  verify_backend="processes",
                                  cache_dir=str(tmp_path))
        records = run_simulation(tiny_corpus, systems=("Duoquest",),
                                 config=config)
        after = manager.stats
        spawns = after["worker_spawns"] - before["worker_spawns"]
        leases = after["persistent_leases"] - before["persistent_leases"]
        # One spawn per database; every task after each database's first
        # rides a warm pool ("zero new pool workers mid-sweep").
        assert spawns == len(tiny_corpus.databases)
        assert leases == len(records)
        reused = [r.telemetry.get("pool_reused") for r in records
                  if r.telemetry]
        assert sum(reused) == leases - spawns

    def test_persistent_pool_is_opt_out(self, tiny_corpus):
        from repro.eval import shared_pool_manager

        manager = shared_pool_manager()
        before = manager.stats["persistent_leases"] \
            + manager.stats["fallback_leases"]
        run_simulation(tiny_corpus, systems=("Duoquest",),
                       config=SimulationConfig(timeout=4.0, workers=2,
                                               verify_backend="processes",
                                               persistent_pool=False))
        after = manager.stats["persistent_leases"] \
            + manager.stats["fallback_leases"]
        assert after == before  # the manager never saw these runs


class TestCrossTaskProbeCache:
    """The harness owns one probe cache per database, so enumerations
    over the same database reuse each other's probe answers. The effect
    is largest where probes actually repeat — the ablation study runs
    every task three times (Duoquest / NoPQ / NoGuide) against the same
    TSQ, so the second and third variants hit the first one's probes."""

    @staticmethod
    def _cross_hits(records):
        return sum(r.telemetry.get("cross_task_probe_hits", 0)
                   for r in records if r.telemetry is not None)

    def test_ablations_record_cross_task_hits(self, tiny_corpus):
        from repro.eval import search_report

        records = run_ablations(tiny_corpus,
                                config=SimulationConfig(timeout=4.0))
        cross = self._cross_hits(records)
        assert cross > 0, "no probe answers were reused across tasks"
        report = search_report(records)
        assert "XTaskHit" in report
        # The per-variant row totals sum back to the overall count.
        total_column = sum(
            int(row.split()[8]) for row in report.splitlines()[3:])
        assert total_column == cross

    def test_sharing_is_opt_out(self, tiny_corpus):
        records = run_ablations(
            tiny_corpus,
            config=SimulationConfig(timeout=4.0, share_probe_cache=False))
        assert self._cross_hits(records) == 0

    def test_sharing_does_not_change_outcomes(self, tiny_corpus):
        # A generous budget: the comparison must be decided by search
        # exhaustion, not by which run the wall clock truncated first.
        shared = run_ablations(tiny_corpus,
                               config=SimulationConfig(timeout=60.0))
        isolated = run_ablations(
            tiny_corpus,
            config=SimulationConfig(timeout=60.0, share_probe_cache=False))
        assert [(r.task_id, r.system, r.rank, r.num_candidates)
                for r in shared] \
            == [(r.task_id, r.system, r.rank, r.num_candidates)
                for r in isolated]

    def test_second_run_with_cache_dir_warm_starts(self, tiny_corpus,
                                                   tmp_path):
        """The PR-3 acceptance path: a second run_simulation on the same
        corpus via cache_dir reports nonzero warm-start probe hits while
        the records stay identical to the cold run."""
        config = SimulationConfig(timeout=4.0, cache_dir=str(tmp_path))
        cold = run_simulation(tiny_corpus, systems=("Duoquest",),
                              config=config)
        assert sum(r.telemetry.get("warm_start_probe_hits", 0)
                   for r in cold if r.telemetry) == 0
        assert list(tmp_path.glob("probes-*.sqlite"))  # persisted
        warm = run_simulation(tiny_corpus, systems=("Duoquest",),
                              config=config)
        warm_hits = sum(r.telemetry.get("warm_start_probe_hits", 0)
                        for r in warm if r.telemetry)
        assert warm_hits > 0
        assert [(r.task_id, r.system, r.rank, r.num_candidates)
                for r in cold] \
            == [(r.task_id, r.system, r.rank, r.num_candidates)
                for r in warm]
        from repro.eval import search_report

        assert "WarmStart" in search_report(warm)

    def test_guidance_batching_amortises_across_systems(self, tiny_corpus):
        """With guidance_batch on, the harness wraps the oracle once per
        run, so the NLI baseline reuses Duoquest's scored decisions
        (same tasks, same model) — nonzero GuideHits — while every
        outcome matches the unbatched run exactly."""
        from repro.eval import search_report

        plain = run_simulation(tiny_corpus, systems=("Duoquest", "NLI"),
                               config=SimulationConfig(timeout=60.0))
        batched = run_simulation(
            tiny_corpus, systems=("Duoquest", "NLI"),
            config=SimulationConfig(timeout=60.0, guidance_batch=True))
        assert [(r.task_id, r.system, r.rank, r.num_candidates)
                for r in plain] \
            == [(r.task_id, r.system, r.rank, r.num_candidates)
                for r in batched]
        hits = sum(r.telemetry.get("guide_hits", 0)
                   for r in batched if r.telemetry is not None)
        assert hits > 0, "no guidance decisions were reused across tasks"
        requests = sum(r.telemetry.get("guide_requests", 0)
                       for r in batched if r.telemetry is not None)
        scored = sum(r.telemetry.get("guide_calls", 0)
                     for r in batched if r.telemetry is not None)
        assert scored + hits == requests
        assert scored < requests
        report = search_report(batched)
        assert "GuideCalls" in report and "GuideHits" in report

    def test_cache_dir_without_sharing_is_ignored(self, tiny_corpus,
                                                  tmp_path):
        """Persistence piggybacks on per-database caches; with sharing
        disabled nothing is persisted (and nothing crashes)."""
        config = SimulationConfig(timeout=4.0, cache_dir=str(tmp_path),
                                  share_probe_cache=False)
        run_simulation(tiny_corpus, systems=("Duoquest",), config=config)
        assert not list(tmp_path.glob("probes-*.sqlite"))

    def test_simulation_shares_per_database(self, tiny_corpus):
        """run_simulation wires the registry too: all Duoquest/NLI runs
        on one database share one cache (observable via generations)."""
        import repro.eval.harness as harness_module

        seen = []
        original = harness_module.ProbeCacheRegistry.cache_for

        def spy(self, db):
            cache = original(self, db)
            seen.append((db.schema.name, id(cache)))
            return cache

        harness_module.ProbeCacheRegistry.cache_for = spy
        try:
            run_simulation(tiny_corpus, systems=("Duoquest", "NLI"),
                           config=SimulationConfig(timeout=4.0))
        finally:
            harness_module.ProbeCacheRegistry.cache_for = original
        assert seen
        per_db = {}
        for name, cache_id in seen:
            per_db.setdefault(name, set()).add(cache_id)
        assert all(len(ids) == 1 for ids in per_db.values())
        assert len(per_db) == len(tiny_corpus.databases)
