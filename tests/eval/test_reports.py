"""Tests for the static report printers."""

from repro.eval.reports import (
    CAPABILITY_MATRIX,
    table1_report,
    table3_report,
)
from repro.interaction.simulated_user import TrialRecord
from repro.eval.reports import (
    user_study_examples_report,
    user_study_success_report,
    user_study_time_report,
)


class TestTable1:
    def test_duoquest_supports_everything(self):
        row = next(r for r in CAPABILITY_MATRIX if r[0] == "Duoquest")
        assert all(cell == "y" for cell in row[1:])

    def test_nli_row_lacks_soundness(self):
        row = next(r for r in CAPABILITY_MATRIX if r[0] == "NLIs")
        assert row[1] == " "

    def test_report_renders(self):
        text = table1_report()
        assert "Duoquest" in text
        assert "SQuID" in text


class TestTable3:
    def test_report_lists_all_modules(self):
        text = table3_report()
        for name in ("KW", "COL", "OP", "AGG", "AND/OR", "DESC/ASC",
                     "HAVING"):
            assert name in text


def trial(task_id, system, success, duration=60.0, examples=1):
    return TrialRecord(user_id=0, task_id=task_id, system=system,
                       success=success, duration=duration,
                       num_examples=examples, difficulty="medium")


class TestUserStudyReports:
    def test_success_report_per_task(self):
        trials = [trial("A1", "NLI", False), trial("A1", "Duoquest", True),
                  trial("A2", "NLI", True), trial("A2", "Duoquest", True)]
        text = user_study_success_report(trials, ("NLI", "Duoquest"),
                                         "Fig 5")
        assert "A1" in text and "100%" in text and "0%" in text
        assert "ALL" in text

    def test_time_report_successful_only(self):
        trials = [trial("A1", "NLI", True, duration=100.0),
                  trial("A1", "NLI", False, duration=300.0)]
        text = user_study_time_report(trials, ("NLI",), "Fig 6")
        assert "100s" in text
        assert "300" not in text

    def test_examples_report(self):
        trials = [trial("C1", "PBE", True, examples=3),
                  trial("C1", "Duoquest", True, examples=1)]
        text = user_study_examples_report(trials, ("PBE", "Duoquest"),
                                          "Fig 9")
        assert "3.0" in text and "1.0" in text

    def test_missing_system_shows_dash(self):
        trials = [trial("A1", "NLI", True)]
        text = user_study_success_report(trials, ("NLI", "Duoquest"),
                                         "Fig 5")
        assert "-" in text
