"""Tests for evaluation metrics."""

import pytest

from repro.eval.metrics import (
    SimTaskRecord,
    completion_curve,
    correct_counts,
    format_table,
    mean,
    pct,
    std_error,
    top_k_accuracy,
    unsupported_counts,
)


def record(**kwargs):
    base = dict(task_id="t", difficulty="easy", system="Duoquest")
    base.update(kwargs)
    return SimTaskRecord(**base)


class TestTopK:
    def test_counts_and_proportion(self):
        records = [record(rank=1), record(rank=5), record(rank=None),
                   record(rank=12)]
        assert top_k_accuracy(records, 1) == (1, 0.25)
        assert top_k_accuracy(records, 10) == (2, 0.5)
        assert top_k_accuracy(records, 100) == (3, 0.75)

    def test_empty(self):
        assert top_k_accuracy([], 10) == (0, 0.0)


class TestPbeCounts:
    def test_correct(self):
        records = [record(correct=True), record(correct=False),
                   record(correct=True)]
        assert correct_counts(records) == (2, pytest.approx(2 / 3))

    def test_unsupported(self):
        records = [record(supported=False), record(supported=True)]
        assert unsupported_counts(records) == (1, 0.5)


class TestCompletionCurve:
    def test_curve_monotone(self):
        records = [record(time_to_gold=t) for t in (0.5, 1.0, 4.0)] + \
            [record(time_to_gold=None)]
        curve = completion_curve(records, [0.1, 1.0, 5.0])
        assert curve == [0.0, 50.0, 75.0]
        assert curve == sorted(curve)

    def test_empty(self):
        assert completion_curve([], [1.0, 2.0]) == [0.0, 0.0]


class TestHelpers:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_std_error(self):
        assert std_error([5.0]) == 0.0
        assert std_error([1.0, 3.0]) > 0

    def test_pct(self):
        assert pct(0.635) == "63.5"

    def test_format_table_alignment(self):
        text = format_table(("A", "Bee"), [("x", 1), ("long", 22)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("A")
        assert all(len(line) >= 5 for line in lines)
