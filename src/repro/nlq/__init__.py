"""Natural-language query processing: tokenisation, literals, linking."""

from .linking import LinkScores, link_schema
from .literals import Literal, NLQuery, extract_literals
from .tokenize import (
    STOPWORDS,
    bigrams,
    contains_phrase,
    content_tokens,
    identifier_words,
    overlap_score,
    stem,
    stems,
    tokenize,
)

__all__ = [
    "STOPWORDS",
    "LinkScores",
    "Literal",
    "NLQuery",
    "bigrams",
    "contains_phrase",
    "content_tokens",
    "extract_literals",
    "identifier_words",
    "link_schema",
    "overlap_score",
    "stem",
    "stems",
    "tokenize",
]
