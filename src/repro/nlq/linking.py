"""Schema linking: lexical relevance of schema elements to an NLQ.

Produces per-column and per-table relevance scores from token/stem overlap
between the NLQ and schema identifiers (plus their display names). These
scores drive the COL module of the lexical guidance backend and the
NoGuide ablation's literal-only hints.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..db.schema import Schema
from ..sqlir.ast import ColumnRef
from .literals import NLQuery
from .tokenize import overlap_score, stems


@dataclass(frozen=True)
class LinkScores:
    """Relevance of every schema element to one NLQ, in [0, 1]."""

    columns: Dict[ColumnRef, float]
    tables: Dict[str, float]

    def column_score(self, ref: ColumnRef) -> float:
        return self.columns.get(ref, 0.0)

    def table_score(self, table: str) -> float:
        return self.tables.get(table, 0.0)

    def ranked_columns(self) -> List[Tuple[ColumnRef, float]]:
        return sorted(self.columns.items(), key=lambda kv: (-kv[1], kv[0]))


def link_schema(nlq: NLQuery, schema: Schema) -> LinkScores:
    """Score every column and table of ``schema`` against ``nlq``.

    A column's score combines the overlap of its own name with the NLQ and
    (with a lower weight) the overlap of its table's name; a small bonus is
    given when a tagged literal's type matches the column type, which helps
    disambiguate e.g. year columns for numeric literals.
    """
    query_stems = stems(nlq.text)
    literal_types = {lit.type for lit in nlq.literals}

    tables: Dict[str, float] = {}
    for table in schema.tables:
        name = schema.display_name(table.name)
        tables[table.name] = overlap_score(query_stems, name)

    columns: Dict[ColumnRef, float] = {}
    for table in schema.tables:
        table_score = tables[table.name]
        for column in table.columns:
            ref = ColumnRef(table=table.name, column=column.name)
            name = schema.display_name(f"{table.name}.{column.name}")
            score = overlap_score(query_stems, name)
            score = 0.75 * score + 0.2 * table_score
            if column.type in literal_types:
                score += 0.05
            columns[ref] = min(score, 1.0)
    return LinkScores(columns=columns, tables=tables)
