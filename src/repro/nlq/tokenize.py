"""Lightweight natural-language tokenisation for NLQ processing.

The guidance model's lexical backend needs word-level features of the NLQ:
tokens, stems, bigrams, and stopword filtering. The paper's system relies
on off-the-shelf word embeddings (Section 4.1); in this offline
reproduction similarity is lexical (token/stem overlap), which suffices for
the template-generated NLQs of the synthetic corpus and real schema names.
"""

from __future__ import annotations

import re
from typing import Iterable, List, Sequence, Set, Tuple

_WORD_RE = re.compile(r"[A-Za-z_]+|\d+(?:\.\d+)?")

#: Function words ignored during schema linking.
STOPWORDS = frozenset("""
a an and are as at be been before after by for from has have in into is it
its list lists me of on or per please show shows than that the their them
then there these those to was were what which who whose will with give
return find display all each every
""".split())

_SIBILANTS = ("s", "x", "z", "sh", "ch")


def tokenize(text: str) -> List[str]:
    """Lowercased word and number tokens of ``text``."""
    return [match.group(0).lower() for match in _WORD_RE.finditer(text)]


def stem(token: str) -> str:
    """A deliberately naive suffix-stripping stemmer.

    Maps inflected forms and their lemmas to a common stem so that e.g.
    ``movies``/``movie`` -> ``movi`` and ``titles``/``title`` -> ``titl``,
    which is all the lexical schema linker needs.
    """
    if token.isdigit():
        return token
    word = token
    if word.endswith("ies") and len(word) >= 5:
        word = word[:-3] + "i"
    elif word.endswith("es") and len(word) >= 5 and \
            word[:-2].endswith(_SIBILANTS):
        word = word[:-2]
    elif word.endswith("s") and not word.endswith("ss") and len(word) >= 4:
        word = word[:-1]
    for suffix in ("ing", "est", "ed"):
        if word.endswith(suffix) and len(word) - len(suffix) >= 3:
            word = word[: -len(suffix)]
            break
    # Fold the lemma-side variation: final silent e, and y -> i.
    if word.endswith("e") and len(word) >= 4:
        word = word[:-1]
    if word.endswith("y") and len(word) >= 4:
        word = word[:-1] + "i"
    return word


def content_tokens(text: str) -> List[str]:
    """Tokens of ``text`` with stopwords removed."""
    return [tok for tok in tokenize(text) if tok not in STOPWORDS]


def stems(text: str) -> Set[str]:
    """The set of stems of the content tokens of ``text``."""
    return {stem(tok) for tok in content_tokens(text)}


def bigrams(tokens: Sequence[str]) -> List[Tuple[str, str]]:
    """Adjacent token pairs."""
    return list(zip(tokens, tokens[1:]))


def identifier_words(identifier: str) -> List[str]:
    """Split a schema identifier into words (snake_case and camelCase)."""
    spaced = re.sub(r"([a-z0-9])([A-Z])", r"\1 \2", identifier)
    return [w for w in re.split(r"[_\s]+", spaced.lower()) if w]


def overlap_score(query_stems: Set[str], name: str) -> float:
    """Fraction of the words of ``name`` whose stem appears in the query.

    Returns 0.0 for empty names. This is the core lexical-similarity
    signal used by the COL module of the lexical guidance backend.
    """
    words = identifier_words(name)
    if not words:
        return 0.0
    hits = sum(1 for word in words if stem(word) in query_stems)
    return hits / len(words)


def contains_phrase(text: str, phrase: str) -> bool:
    """True when every token of ``phrase`` occurs contiguously in ``text``."""
    text_tokens = tokenize(text)
    phrase_tokens = tokenize(phrase)
    if not phrase_tokens:
        return False
    span = len(phrase_tokens)
    for start in range(len(text_tokens) - span + 1):
        if text_tokens[start:start + span] == phrase_tokens:
            return True
    return False
