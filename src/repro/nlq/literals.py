"""Natural-language queries and their tagged literal values.

Per the problem definition (Section 2.3), the NLQ comes with a set of text
and numeric literal values ``L`` used in the desired query. In the real
front end these are tagged by the user through the double-quote
autocomplete interface (Section 4); here they can also be extracted from a
raw NLQ string whose literals are quoted.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..sqlir.types import ColumnType, Value, value_type
from .tokenize import tokenize

_QUOTED_RE = re.compile(r'"([^"]+)"|\'([^\']+)\'')
_NUMBER_RE = re.compile(r"(?<![\w.])(\d+(?:\.\d+)?)(?![\w.])")


@dataclass(frozen=True)
class Literal:
    """A tagged literal value appearing in the NLQ."""

    value: Value

    @property
    def type(self) -> ColumnType:
        return value_type(self.value)

    def __repr__(self) -> str:
        return f"<Literal {self.value!r}:{self.type}>"


@dataclass(frozen=True)
class NLQuery:
    """A natural-language query plus its tagged literals ``L``."""

    text: str
    literals: Tuple[Literal, ...] = ()

    @classmethod
    def from_text(cls, text: str,
                  literals: Optional[Sequence[Value]] = None) -> "NLQuery":
        """Build an NLQ, extracting literals from the text when not given.

        Quoted spans become text literals and bare numbers become numeric
        literals, mirroring what the autocomplete tagging interface
        produces.
        """
        if literals is None:
            extracted = extract_literals(text)
        else:
            extracted = [Literal(value=v) for v in literals]
        return cls(text=text, literals=tuple(extracted))

    @property
    def text_literals(self) -> List[Literal]:
        return [lit for lit in self.literals if lit.type is ColumnType.TEXT]

    @property
    def number_literals(self) -> List[Literal]:
        return [lit for lit in self.literals if lit.type is ColumnType.NUMBER]

    def tokens(self) -> List[str]:
        return tokenize(self.text)

    def __repr__(self) -> str:
        return f"<NLQuery {self.text!r} L={[l.value for l in self.literals]}>"


def extract_literals(text: str) -> List[Literal]:
    """Extract quoted text literals and bare numbers from an NLQ string."""
    literals: List[Literal] = []
    remainder = text
    for match in _QUOTED_RE.finditer(text):
        value = match.group(1) or match.group(2)
        literals.append(Literal(value=value))
    remainder = _QUOTED_RE.sub(" ", text)
    for match in _NUMBER_RE.finditer(remainder):
        digits = match.group(1)
        number: Value = float(digits) if "." in digits else int(digits)
        literals.append(Literal(value=number))
    return literals
