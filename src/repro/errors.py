"""Exception hierarchy for the Duoquest reproduction.

Every error raised by this package derives from :class:`ReproError` so that
callers can catch package-level failures without masking unrelated bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class SchemaError(ReproError):
    """A schema is malformed or an element reference cannot be resolved."""


class QueryError(ReproError):
    """A query AST is malformed for the requested operation."""


class RenderError(QueryError):
    """A query cannot be rendered to SQL (e.g. it still contains holes)."""


class ParseError(QueryError):
    """A SQL string cannot be parsed into the supported SPJA subset."""


class ExecutionError(ReproError):
    """The database failed to execute a statement."""


class ExecutionTimeout(ExecutionError):
    """A statement exceeded its execution budget and was interrupted."""


class GuidanceError(ReproError):
    """A guidance model produced an invalid distribution or decision."""


class EnumerationError(ReproError):
    """The GPQE enumerator reached an inconsistent internal state."""


class TSQError(ReproError):
    """A table sketch query is malformed."""


class DatasetError(ReproError):
    """A dataset or task definition is malformed."""


class UnsupportedTaskError(ReproError):
    """A baseline system does not support the given task.

    Used by the PBE baseline to report the *Unsupported* counts from
    Figures 10 and 11 of the paper.
    """
