"""Datasets: MAS, user-study tasks, the synthetic Spider corpus, TSQs."""

from .facts import Fact, build_fact_bank
from .mas import (
    AUTHOR_A,
    CONFERENCE_C,
    DOMAIN_D,
    ORGANIZATION_R,
    build_mas_database,
    mas_schema,
)
from .nlgen import generate_nlq_text
from .spider import SpiderCorpusConfig, generate_corpus
from .tasks import Difficulty, Task, TaskSet, classify_difficulty
from .tsqsynth import (
    ALL_DETAILS,
    DETAIL_FULL,
    DETAIL_MINIMAL,
    DETAIL_PARTIAL,
    example_values,
    projected_types,
    synthesize_tsq,
)
from .usertasks import (
    NLI_TASK_SPECS,
    PBE_TASK_SPECS,
    UserTaskSpec,
    nli_study_tasks,
    pbe_study_tasks,
)

__all__ = [
    "ALL_DETAILS",
    "AUTHOR_A",
    "CONFERENCE_C",
    "DETAIL_FULL",
    "DETAIL_MINIMAL",
    "DETAIL_PARTIAL",
    "DOMAIN_D",
    "Difficulty",
    "Fact",
    "NLI_TASK_SPECS",
    "ORGANIZATION_R",
    "PBE_TASK_SPECS",
    "SpiderCorpusConfig",
    "Task",
    "TaskSet",
    "UserTaskSpec",
    "build_fact_bank",
    "build_mas_database",
    "classify_difficulty",
    "example_values",
    "generate_corpus",
    "generate_nlq_text",
    "mas_schema",
    "nli_study_tasks",
    "pbe_study_tasks",
    "projected_types",
    "synthesize_tsq",
]
