"""Template-based English generation for gold queries.

The synthetic Spider corpus (see :mod:`repro.datasets.spider`) needs an
NLQ for every gold query. These templates produce natural-sounding
requests whose vocabulary derives from schema display names — close enough
to human phrasing for the lexical guidance model to work with, while the
calibrated oracle model ignores the text and only uses the task identity.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..db.schema import Schema
from ..sqlir.ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    Hole,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    SelectItem,
    Where,
)

_LIST_VERBS = ("List", "Show", "Find", "Give me", "Return", "Display")

_AGG_PHRASES = {
    AggOp.COUNT: "the number of",
    AggOp.MAX: "the maximum",
    AggOp.MIN: "the minimum",
    AggOp.AVG: "the average",
    AggOp.SUM: "the total",
}

_OP_PHRASES = {
    CompOp.EQ: "is",
    CompOp.NE: "is not",
    CompOp.GT: "is greater than",
    CompOp.LT: "is less than",
    CompOp.GE: "is at least",
    CompOp.LE: "is at most",
    CompOp.LIKE: "contains",
}


def _column_phrase(schema: Schema, column: ColumnRef) -> str:
    if column.is_star:
        return "records"
    name = schema.display_name(f"{column.table}.{column.column}")
    table = schema.display_name(column.table)
    return f"{name} of each {table}" if False else f"{table} {name}"


def _select_phrase(schema: Schema, item: SelectItem) -> str:
    assert isinstance(item.agg, AggOp)
    assert isinstance(item.column, ColumnRef)
    if item.column.is_star:
        return "the number of records"
    base = _column_phrase(schema, item.column)
    if item.agg.is_aggregate:
        return f"{_AGG_PHRASES[item.agg]} {base}"
    return f"the {base}"


def _value_phrase(value: object) -> str:
    if isinstance(value, str):
        return f'"{value}"'
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _predicate_phrase(schema: Schema, pred: Predicate) -> str:
    assert isinstance(pred.column, ColumnRef)
    assert isinstance(pred.op, CompOp)
    column = _column_phrase(schema, pred.column)
    if pred.agg.is_aggregate:
        if pred.column.is_star:
            column = "records"
        agg_phrase = {
            CompOp.GT: "more than", CompOp.GE: "at least",
            CompOp.LT: "fewer than", CompOp.LE: "at most",
            CompOp.EQ: "exactly",
        }.get(pred.op, "about")
        return f"with {agg_phrase} {_value_phrase(pred.value)} {column}"
    if pred.op is CompOp.BETWEEN and isinstance(pred.value, tuple):
        low, high = pred.value
        return (f"whose {column} is between {_value_phrase(low)} and "
                f"{_value_phrase(high)}")
    return (f"whose {column} {_OP_PHRASES[pred.op]} "
            f"{_value_phrase(pred.value)}")


def generate_nlq_text(query: Query, schema: Schema,
                      rng: Optional[random.Random] = None) -> str:
    """Render a gold query as an English request."""
    rng = rng or random.Random(0)
    assert not isinstance(query.select, Hole)

    select_parts = [_select_phrase(schema, item) for item in query.select
                    if isinstance(item, SelectItem)]
    sentence = f"{rng.choice(_LIST_VERBS)} {' and '.join(select_parts)}"

    grouped = (query.group_by is not None
               and not isinstance(query.group_by, Hole))
    if grouped:
        group_names = [_column_phrase(schema, col)
                       for col in query.group_by
                       if isinstance(col, ColumnRef)]
        sentence += f" for each {' and '.join(group_names)}"

    if isinstance(query.where, Where):
        parts = [_predicate_phrase(schema, pred)
                 for pred in query.where.predicates
                 if isinstance(pred, Predicate)]
        connective = " or " if (isinstance(query.where.logic, LogicOp)
                                and query.where.logic is LogicOp.OR) \
            else " and "
        sentence += ", " + connective.join(parts)

    if query.having is not None and not isinstance(query.having, Hole):
        parts = [_predicate_phrase(schema, pred) for pred in query.having
                 if isinstance(pred, Predicate)]
        sentence += ", " + " and ".join(parts)

    if query.order_by is not None and not isinstance(query.order_by, Hole):
        for item in query.order_by:
            if not isinstance(item, OrderItem):
                continue
            assert isinstance(item.column, ColumnRef)
            if isinstance(item.agg, AggOp) and item.agg.is_aggregate:
                target = ("the number of records" if item.column.is_star
                          else (_AGG_PHRASES[item.agg] + " "
                                + _column_phrase(schema, item.column)))
            else:
                target = "the " + _column_phrase(schema, item.column)
            direction = ("from highest to lowest"
                         if item.direction is Direction.DESC
                         else "from lowest to highest")
            sentence += f", ordered by {target} {direction}"

    if isinstance(query.limit, int):
        sentence += f", showing only the top {query.limit}"

    return sentence + "."
