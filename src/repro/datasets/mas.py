"""The Microsoft Academic Search (MAS) database used by the user studies.

The paper runs both user studies on the MAS database of Li & Jagadish
(2014): 15 tables, 44 columns, 19 FK-PK relationships (Table 5). The real
MAS contents are not redistributable, so this module rebuilds the schema
exactly and populates it with deterministic synthetic academic data that
*plants* the entities the study tasks query (a flagship conference with
prolific authors, an organization with many authors, a journal with more
than 500 publications, ...), so that every task in Tables 7-8 has a
non-empty, discriminative answer.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..db.database import Database
from ..db.schema import Schema, make_schema
from ..sqlir.types import ColumnType as T

#: Entities referenced by the user-study tasks (Tables 7-8). The paper
#: anonymises them as C/A/R/D; these are the planted instantiations.
CONFERENCE_C = "SIGMOD"
AUTHOR_A = "Emma Thompson"
ORGANIZATION_R = "University of Michigan"
DOMAIN_D = "Databases"

_FIRST_NAMES = (
    "Emma Liam Olivia Noah Ava Elijah Sophia Lucas Isabella Mason Mia "
    "Ethan Amelia Logan Harper James Evelyn Jack Abigail Henry Ella "
    "Daniel Scarlett Owen Grace Wyatt Chloe Carter Lily Julian Hannah "
    "Levi Aria Ryan Nora Nathan Zoey Isaac Stella Caleb"
).split()

_LAST_NAMES = (
    "Thompson Garcia Martinez Robinson Clark Rodriguez Lewis Lee Walker "
    "Hall Allen Young Hernandez King Wright Lopez Hill Scott Green Adams "
    "Baker Gonzalez Nelson Carter Mitchell Perez Roberts Turner Phillips "
    "Campbell Parker Evans Edwards Collins Stewart Sanchez Morris Rogers "
    "Reed Cook"
).split()

_CONFERENCES = ("SIGMOD", "VLDB", "ICDE", "KDD", "CIKM", "CHI", "SOSP",
                "NSDI", "ICML", "ACL", "CVPR", "STOC")

_JOURNALS = ("VLDB Journal", "TODS", "TKDE", "JMLR", "CACM", "TON",
             "TOCS", "JACM", "TSE", "Information Systems")

_DOMAINS = ("Databases", "Machine Learning", "Systems",
            "Human Computer Interaction", "Theory",
            "Natural Language Processing", "Computer Vision", "Networking")

_ORG_STEMS = ("Michigan", "Cascadia", "Redwood", "Lakeshore", "Granite",
              "Harborview", "Summit", "Prairie", "Atlantic", "Pacific",
              "Northern Plains", "Silver Valley", "Oak Ridge", "Maple",
              "Ironwood", "Bayside", "Highland", "Riverbend", "Stonebridge",
              "Clearwater", "Falcon Crest", "Meadowbrook", "Kingsport",
              "Windham")

_CONTINENTS = ("North America", "Europe", "Asia", "South America",
               "Oceania")

_KEYWORD_HEADS = ("query", "index", "transaction", "graph", "stream",
                  "neural", "semantic", "federated", "parallel",
                  "probabilistic", "distributed", "adaptive", "relational",
                  "spatial", "temporal", "secure", "approximate",
                  "interactive", "declarative", "columnar")

_KEYWORD_TAILS = ("optimization", "processing", "learning", "storage",
                  "mining", "parsing", "inference", "synthesis",
                  "compression", "analytics")

_TITLE_HEADS = ("On the Design of", "Towards Scalable", "Efficient",
                "A Study of", "Rethinking", "Adaptive", "Principles of",
                "Optimizing", "Interactive", "Declarative")


def mas_schema() -> Schema:
    """The MAS schema: 15 tables, 44 columns, 19 FK-PK links (Table 5)."""
    return make_schema(
        "mas",
        tables={
            "author": [("aid", T.NUMBER), ("name", T.TEXT),
                       ("homepage", T.TEXT), ("oid", T.NUMBER)],
            "publication": [("pid", T.NUMBER), ("title", T.TEXT),
                            ("abstract", T.TEXT), ("year", T.NUMBER),
                            ("citation_num", T.NUMBER),
                            ("reference_num", T.NUMBER),
                            ("cid", T.NUMBER), ("jid", T.NUMBER)],
            "conference": [("cid", T.NUMBER), ("name", T.TEXT),
                           ("full_name", T.TEXT), ("homepage", T.TEXT)],
            "journal": [("jid", T.NUMBER), ("name", T.TEXT),
                        ("full_name", T.TEXT), ("homepage", T.TEXT)],
            "keyword": [("kid", T.NUMBER), ("keyword", T.TEXT)],
            "organization": [("oid", T.NUMBER), ("name", T.TEXT),
                             ("continent", T.TEXT), ("homepage", T.TEXT)],
            "domain": [("did", T.NUMBER), ("name", T.TEXT)],
            "writes": [("aid", T.NUMBER), ("pid", T.NUMBER)],
            "publication_keyword": [("pid", T.NUMBER), ("kid", T.NUMBER)],
            "domain_author": [("did", T.NUMBER), ("aid", T.NUMBER)],
            "domain_conference": [("did", T.NUMBER), ("cid", T.NUMBER)],
            "domain_journal": [("did", T.NUMBER), ("jid", T.NUMBER)],
            "domain_keyword": [("did", T.NUMBER), ("kid", T.NUMBER)],
            "domain_publication": [("did", T.NUMBER), ("pid", T.NUMBER)],
            "cite": [("citing", T.NUMBER), ("cited", T.NUMBER)],
        },
        foreign_keys=[
            ("author", "oid", "organization", "oid"),
            ("publication", "cid", "conference", "cid"),
            ("publication", "jid", "journal", "jid"),
            ("writes", "aid", "author", "aid"),
            ("writes", "pid", "publication", "pid"),
            ("publication_keyword", "pid", "publication", "pid"),
            ("publication_keyword", "kid", "keyword", "kid"),
            ("domain_author", "did", "domain", "did"),
            ("domain_author", "aid", "author", "aid"),
            ("domain_conference", "did", "domain", "did"),
            ("domain_conference", "cid", "conference", "cid"),
            ("domain_journal", "did", "domain", "did"),
            ("domain_journal", "jid", "journal", "jid"),
            ("domain_keyword", "did", "domain", "did"),
            ("domain_keyword", "kid", "keyword", "kid"),
            ("domain_publication", "did", "domain", "did"),
            ("domain_publication", "pid", "publication", "pid"),
            ("cite", "citing", "publication", "pid"),
            ("cite", "cited", "publication", "pid"),
        ],
        primary_keys={"author": "aid", "publication": "pid",
                      "conference": "cid", "journal": "jid",
                      "keyword": "kid", "organization": "oid",
                      "domain": "did", "writes": None,
                      "publication_keyword": None, "domain_author": None,
                      "domain_conference": None, "domain_journal": None,
                      "domain_keyword": None, "domain_publication": None,
                      "cite": None},
    )


def build_mas_database(seed: int = 0, scale: float = 1.0) -> Database:
    """Create and populate the MAS database.

    ``scale`` multiplies entity counts; the default (~800 authors, ~2600
    publications) keeps the planted task thresholds meaningful: two
    journals exceed 500 publications (task A4), three organizations exceed
    100 authors (B3), several University of Michigan authors exceed 50
    publications (B4), and a handful of authors have more than 5 and more
    than 8 SIGMOD papers (C3/D3).
    """
    rng = random.Random(seed)
    schema = mas_schema()
    db = Database.create(schema)

    num_authors = max(200, int(800 * scale))
    num_pubs = max(1200, int(3200 * scale))

    # -- dimension tables ------------------------------------------------
    domains = [(i + 1, name) for i, name in enumerate(_DOMAINS)]
    db.insert_rows("domain", domains)
    domain_id = {name: did for did, name in domains}

    organizations = []
    for i, stem in enumerate(_ORG_STEMS):
        name = (ORGANIZATION_R if stem == "Michigan"
                else f"University of {stem}")
        continent = _CONTINENTS[i % len(_CONTINENTS)]
        organizations.append((i + 1, name, continent,
                              f"http://www.{stem.replace(' ', '').lower()}.edu"))
    db.insert_rows("organization", organizations)
    org_id = {name: oid for oid, name, _, _ in organizations}

    conferences = [(i + 1, name, f"International Conference {name}",
                    f"http://{name.lower()}.org")
                   for i, name in enumerate(_CONFERENCES)]
    db.insert_rows("conference", conferences)
    conf_id = {name: cid for cid, name, _, _ in conferences}

    journals = [(i + 1, name, f"The {name}",
                 f"http://journals.org/{name.replace(' ', '-').lower()}")
                for i, name in enumerate(_JOURNALS)]
    db.insert_rows("journal", journals)
    journal_id = {name: jid for jid, name, _, _ in journals}

    keywords = []
    kid = 0
    for head in _KEYWORD_HEADS:
        for tail in rng.sample(_KEYWORD_TAILS, 2):
            kid += 1
            keywords.append((kid, f"{head} {tail}"))
    db.insert_rows("keyword", keywords)

    # -- authors ----------------------------------------------------------
    names = [f"{first} {last}" for first in _FIRST_NAMES
             for last in _LAST_NAMES]
    rng.shuffle(names)
    if AUTHOR_A in names:
        names.remove(AUTHOR_A)
    names.insert(0, AUTHOR_A)

    # Organization sizes are skewed: the first three organizations get
    # large author populations (> 100 for task B3).
    org_weights = [8.0, 6.0, 5.0] + [1.0] * (len(organizations) - 3)
    authors = []
    for aid in range(1, num_authors + 1):
        name = names[aid - 1]
        if aid <= 30:
            oid = org_id[ORGANIZATION_R]  # a sizeable Michigan cohort
        else:
            oid = rng.choices(range(1, len(organizations) + 1),
                              weights=org_weights)[0]
        authors.append((aid, name,
                        f"http://people.edu/{name.replace(' ', '.').lower()}",
                        oid))
    db.insert_rows("author", authors)

    # -- publications ------------------------------------------------------
    # Venue skew: SIGMOD and the first two journals are large so the
    # "more than 500 publications" and "more than N papers in C" tasks
    # have non-trivial answers.
    conf_weights = [7.0, 4.0, 3.0] + [1.0] * (len(conferences) - 3)
    journal_weights = [11.0, 9.0] + [1.0] * (len(journals) - 2)
    publications = []
    titles_seen = set()
    for pid in range(1, num_pubs + 1):
        head = rng.choice(_TITLE_HEADS)
        topic = rng.choice(keywords)[1].title()
        title = f"{head} {topic} {pid}"
        if title in titles_seen:  # pragma: no cover - pid suffix is unique
            title += "b"
        titles_seen.add(title)
        year = rng.randint(1990, 2020)
        in_conference = rng.random() < 0.55
        cid = rng.choices(range(1, len(conferences) + 1),
                          weights=conf_weights)[0] if in_conference else None
        jid = None if in_conference else rng.choices(
            range(1, len(journals) + 1), weights=journal_weights)[0]
        publications.append((pid, title, f"Abstract of {title}.", year,
                             rng.randint(0, 900), rng.randint(4, 60),
                             cid, jid))
    db.insert_rows("publication", publications)

    sigmod_pids = [p[0] for p in publications
                   if p[6] == conf_id[CONFERENCE_C]]

    # -- authorship --------------------------------------------------------
    writes: set = set()
    # Prolific Michigan authors (task B4: more than 50 publications) and
    # frequent SIGMOD authors (tasks C3 / D3: more than 5 / 8 papers).
    prolific = list(range(1, 9))  # aids 1..8 are Michigan authors
    for rank, aid in enumerate(prolific):
        pool = rng.sample(range(1, num_pubs + 1),
                          70 - rank * 3)
        for pid in pool:
            writes.add((aid, pid))
        sigmod_quota = 12 - rank  # 12, 11, ... 5 SIGMOD papers
        for pid in rng.sample(sigmod_pids,
                              min(sigmod_quota, len(sigmod_pids))):
            writes.add((aid, pid))
    for pid in range(1, num_pubs + 1):
        for aid in rng.sample(range(1, num_authors + 1),
                              rng.randint(1, 3)):
            writes.add((aid, pid))
    db.insert_rows("writes", sorted(writes))

    # -- keywords per publication -------------------------------------------
    pub_keywords = set()
    for pid in range(1, num_pubs + 1):
        for key in rng.sample(range(1, len(keywords) + 1), 2):
            pub_keywords.add((pid, key))
    db.insert_rows("publication_keyword", sorted(pub_keywords))

    # -- domain links ---------------------------------------------------------
    domain_confs = {"Databases": ["SIGMOD", "VLDB", "ICDE", "CIKM"],
                    "Machine Learning": ["KDD", "ICML"],
                    "Systems": ["SOSP", "NSDI"],
                    "Human Computer Interaction": ["CHI"],
                    "Natural Language Processing": ["ACL"],
                    "Computer Vision": ["CVPR"],
                    "Theory": ["STOC"]}
    dc_rows = [(domain_id[dom], conf_id[c])
               for dom, confs in domain_confs.items() for c in confs]
    db.insert_rows("domain_conference", dc_rows)

    domain_journals = {"Databases": ["VLDB Journal", "TODS", "TKDE",
                                     "Information Systems"],
                       "Machine Learning": ["JMLR"],
                       "Systems": ["TOCS", "TON"],
                       "Theory": ["JACM"]}
    dj_rows = [(domain_id[dom], journal_id[j])
               for dom, journals_ in domain_journals.items()
               for j in journals_]
    db.insert_rows("domain_journal", dj_rows)

    da_rows = set()
    for aid in range(1, num_authors + 1):
        if aid <= 40:
            da_rows.add((domain_id[DOMAIN_D], aid))
        for did in rng.sample(range(1, len(domains) + 1),
                              rng.randint(1, 2)):
            da_rows.add((did, aid))
    db.insert_rows("domain_author", sorted(da_rows))

    dk_rows = set()
    for key in range(1, len(keywords) + 1):
        dk_rows.add((rng.randint(1, len(domains)), key))
    db.insert_rows("domain_keyword", sorted(dk_rows))

    dp_rows = set()
    for pid in range(1, num_pubs + 1):
        dp_rows.add((rng.randint(1, len(domains)), pid))
    db.insert_rows("domain_publication", sorted(dp_rows))

    cites = set()
    for _ in range(num_pubs * 2):
        citing, cited = rng.randint(1, num_pubs), rng.randint(1, num_pubs)
        if citing != cited:
            cites.add((citing, cited))
    db.insert_rows("cite", sorted(cites))

    return db
