"""TSQ synthesis for the simulation study (Section 5.4.1).

For each task, the paper synthesises a TSQ containing type annotations,
two example tuples randomly selected from the result set of the desired
query, and tau/k values matching the gold query. Section 5.4.4 varies the
specification detail: *Full* (everything), *Partial* (all values of one
randomly chosen column erased, for tasks with >= 2 projected columns), and
*Minimal* (type annotations only).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..db.database import Database
from ..errors import DatasetError
from ..sqlir.ast import AggOp, ColumnRef, Hole, Query, SelectItem
from ..sqlir.types import ColumnType
from .tasks import Task
from ..core.tsq import (
    Cell,
    EmptyCell,
    ExactCell,
    TableSketchQuery,
)

#: Specification detail levels of Table 6.
DETAIL_FULL = "full"
DETAIL_PARTIAL = "partial"
DETAIL_MINIMAL = "minimal"
ALL_DETAILS = (DETAIL_FULL, DETAIL_PARTIAL, DETAIL_MINIMAL)


def projected_types(gold: Query, db: Database) -> List[ColumnType]:
    """Type annotations alpha for the gold query's projection."""
    assert not isinstance(gold.select, Hole)
    types: List[ColumnType] = []
    for item in gold.select:
        assert isinstance(item, SelectItem)
        assert isinstance(item.agg, AggOp)
        assert isinstance(item.column, ColumnRef)
        input_type = (ColumnType.NUMBER if item.column.is_star
                      else db.schema.column_type(item.column))
        types.append(item.agg.output_type(input_type))
    return types


def synthesize_tsq(task: Task, db: Database,
                   detail: str = DETAIL_FULL,
                   num_examples: int = 2,
                   seed: int = 0,
                   max_rows: int = 2000) -> TableSketchQuery:
    """Build the synthetic TSQ for a task at the given detail level.

    Sorted gold queries keep the selected example tuples in result order,
    as Definition 2.4 requires for tau = true.
    """
    if detail not in ALL_DETAILS:
        raise DatasetError(f"unknown TSQ detail level {detail!r}")
    gold = task.gold
    types = tuple(projected_types(gold, db))
    sorted_flag = (gold.order_by is not None
                   and not isinstance(gold.order_by, Hole))
    limit = int(gold.limit) if isinstance(gold.limit, int) else 0

    if detail == DETAIL_MINIMAL:
        return TableSketchQuery(types=types, tuples=(),
                                sorted=sorted_flag, limit=limit)

    rows = db.execute(
        _gold_sql(gold), max_rows=max_rows, kind="tsq-synth")
    rng = random.Random(f"{seed}/{task.task_id}/{detail}")
    take = min(num_examples, len(rows))
    if take == 0:
        raise DatasetError(
            f"task {task.task_id} has an empty result; the paper removed "
            f"such tasks")
    indices = sorted(rng.sample(range(len(rows)), take))
    examples = [rows[i] for i in indices]

    erase_index: Optional[int] = None
    if detail == DETAIL_PARTIAL and len(types) >= 2:
        erase_index = rng.randrange(len(types))

    tuples = []
    for row in examples:
        cells: List[Cell] = []
        for j, value in enumerate(row[: len(types)]):
            if value is None or j == erase_index:
                cells.append(EmptyCell())
            else:
                cells.append(ExactCell(value=value))
        tuples.append(tuple(cells))

    return TableSketchQuery(types=types, tuples=tuple(tuples),
                            sorted=sorted_flag, limit=limit)


def example_values(tsq: TableSketchQuery) -> List[List[object]]:
    """Plain example tuples (for the PBE baseline's input), exact cells
    as values and empty cells as None."""
    rows: List[List[object]] = []
    for example in tsq.tuples:
        row: List[object] = []
        for cell in example:
            if isinstance(cell, ExactCell):
                row.append(cell.value)
            else:
                row.append(None)
        rows.append(row)
    return rows


def _gold_sql(gold: Query) -> str:
    from ..sqlir.render import to_sql

    return to_sql(gold)
