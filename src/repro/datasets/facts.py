"""Fact banks for the simulated user studies (Section 5.1.5 of the paper).

Each task trial hands the user 10 facts, presented in shuffled order, that
emulate pre-existing open-world domain knowledge: each fact corresponds to
one tuple of the desired query's result, possibly with numeric values
blurred into ranges (the paper's example: "Author X wrote 50 to 100
publications" for an exact count of 63). Facts can be entered as TSQ
example tuples and used to eyeball candidate previews.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from ..db.database import Database
from ..errors import DatasetError
from ..sqlir.render import to_sql
from .tasks import Task
from ..core.tsq import Cell, EmptyCell, ExactCell, RangeCell


@dataclass(frozen=True)
class Fact:
    """One fact: a sentence plus the TSQ cells it translates to.

    ``order_index`` records the row's position in the gold result so that
    users of sorted tasks can enter example tuples in result order (the
    task description tells them the ordering; Definition 2.4's condition
    (3) requires it).
    """

    sentence: str
    cells: Tuple[Cell, ...]
    order_index: int = 0

    def __repr__(self) -> str:
        return f"<Fact {self.sentence!r}>"


def _blur_number(value: float, rng: random.Random) -> Tuple[float, float]:
    """Blur an exact number into a containing range (e.g. 63 -> [50, 100])."""
    magnitude = max(abs(value), 1.0)
    low = value - rng.uniform(0.1, 0.5) * magnitude
    high = value + rng.uniform(0.1, 0.5) * magnitude
    if float(value).is_integer():
        low, high = float(int(low)), float(int(high) + 1)
    return (low, high)


def build_fact_bank(task: Task, db: Database, size: int = 10,
                    seed: int = 0) -> List[Fact]:
    """Derive a ``size``-fact bank from the gold query's result set.

    Facts are sampled without replacement from distinct result rows; when
    the result has fewer rows than ``size``, every row is used (tasks in
    the user study all have ample results). Numeric cells are blurred to
    ranges with probability 0.5, and with probability 0.2 a non-leading
    cell is dropped (partial knowledge).
    """
    rng = random.Random(f"{seed}/{task.task_id}")
    rows = db.execute(to_sql(task.gold), max_rows=4000, kind="facts")
    if not rows:
        raise DatasetError(f"task {task.task_id} has an empty result set")
    distinct = list(dict.fromkeys(rows))
    indexed = list(enumerate(distinct))
    rng.shuffle(indexed)
    selected = indexed[:size]

    facts: List[Fact] = []
    for order_index, row in selected:
        cells: List[Cell] = []
        phrases: List[str] = []
        for j, value in enumerate(row):
            if value is None:
                cells.append(EmptyCell())
                continue
            drop = j > 0 and rng.random() < 0.2
            if drop:
                cells.append(EmptyCell())
                continue
            if isinstance(value, (int, float)) and not isinstance(
                    value, bool) and rng.random() < 0.5:
                low, high = _blur_number(float(value), rng)
                cells.append(RangeCell(low=low, high=high))
                phrases.append(f"between {low:g} and {high:g}")
            else:
                cells.append(ExactCell(value=value))
                phrases.append(f"{value}")
        sentence = "A desired row involves " + ", ".join(phrases) + "."
        facts.append(Fact(sentence=sentence, cells=tuple(cells),
                          order_index=order_index))

    rng.shuffle(facts)
    return facts
