"""Synthetic Spider-like benchmark corpus.

The paper's simulation study (Section 5.4) runs on the Spider benchmark:
cross-domain databases with NLQ/SQL task pairs stratified into easy /
medium / hard. Spider itself cannot be downloaded in this offline
environment, so this module generates a statistically comparable corpus:

* themed multi-table schemas (entities, many-to-one and many-to-many
  relations with declared FK-PK constraints, complete-word identifiers as
  Section 4.1 requires);
* deterministic synthetic contents;
* gold SPJA queries drawn from templates stratified to Spider's dev-set
  difficulty mix (~40% easy, ~43% medium, ~17% hard, Table 5), each
  validated to execute with a non-empty result (empty-result tasks were
  removed in the paper's setup);
* template-generated English NLQs with tagged literal values.

Databases and tasks are reproducible given the corpus seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..db.database import Database
from ..db.schema import Schema, make_schema
from ..nlq.literals import NLQuery
from ..sqlir.ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    STAR,
    SelectItem,
    Where,
)
from ..sqlir.types import ColumnType as T
from ..sqlir.types import Value
from .nlgen import generate_nlq_text
from .tasks import Task, TaskSet
from ..core.joins import JoinPathBuilder

# ----------------------------------------------------------------------
# Theme blueprints
# ----------------------------------------------------------------------
#: column spec kinds: ("name",) unique text; ("cat", pool) categorical
#: text; ("num", lo, hi) integer; ("year",) year-like integer.
_ThemeSpec = Dict[str, object]

_CITIES = ("Arlington", "Bridgeport", "Carmel", "Dayton", "Eastwood",
           "Fairview", "Georgetown", "Hartley", "Irvington", "Jasper")
_COUNTRIES = ("United States", "Canada", "France", "Japan", "Brazil",
              "Germany", "Australia", "Kenya", "India", "Norway")

_THEMES: Dict[str, _ThemeSpec] = {
    "library": {
        "entities": {
            "book": [("title", ("name",)),
                     ("genre", ("cat", ("fiction", "mystery", "biography",
                                        "poetry", "history", "science"))),
                     ("pages", ("num", 80, 900)),
                     ("publish_year", ("year",))],
            "author": [("name", ("name",)),
                       ("country", ("cat", _COUNTRIES)),
                       ("birth_year", ("year",))],
            "branch": [("name", ("name",)),
                       ("city", ("cat", _CITIES)),
                       ("capacity", ("num", 100, 9000))],
        },
        "many_to_one": [("book", "branch")],
        "many_to_many": [("book", "author", "written_by")],
    },
    "airline": {
        "entities": {
            "flight": [("flight_number", ("name",)),
                       ("origin", ("cat", _CITIES)),
                       ("distance", ("num", 100, 9000)),
                       ("departure_year", ("year",))],
            "airline": [("name", ("name",)),
                        ("country", ("cat", _COUNTRIES)),
                        ("fleet_size", ("num", 5, 600))],
            "airport": [("name", ("name",)),
                        ("city", ("cat", _CITIES)),
                        ("elevation", ("num", 0, 4000))],
        },
        "many_to_one": [("flight", "airline"), ("flight", "airport")],
        "many_to_many": [],
    },
    "school": {
        "entities": {
            "student": [("name", ("name",)),
                        ("major", ("cat", ("physics", "history", "biology",
                                           "economics", "literature"))),
                        ("age", ("num", 17, 30)),
                        ("enrollment_year", ("year",))],
            "course": [("title", ("name",)),
                       ("department", ("cat", ("science", "arts",
                                               "engineering", "business"))),
                       ("credits", ("num", 1, 6))],
            "teacher": [("name", ("name",)),
                        ("office", ("cat", _CITIES)),
                        ("salary", ("num", 30000, 120000))],
        },
        "many_to_one": [("course", "teacher")],
        "many_to_many": [("student", "course", "enrollment")],
    },
    "hospital": {
        "entities": {
            "patient": [("name", ("name",)),
                        ("city", ("cat", _CITIES)),
                        ("age", ("num", 1, 99))],
            "doctor": [("name", ("name",)),
                       ("specialty", ("cat", ("cardiology", "neurology",
                                              "oncology", "pediatrics"))),
                       ("experience", ("num", 1, 40))],
            "ward": [("name", ("name",)),
                     ("floor", ("num", 1, 12)),
                     ("beds", ("num", 4, 60))],
        },
        "many_to_one": [("doctor", "ward")],
        "many_to_many": [("patient", "doctor", "appointment")],
    },
    "retail": {
        "entities": {
            "product": [("name", ("name",)),
                        ("category", ("cat", ("electronics", "clothing",
                                              "grocery", "furniture",
                                              "toys"))),
                        ("price", ("num", 2, 4000)),
                        ("stock", ("num", 0, 500))],
            "store": [("name", ("name",)),
                      ("city", ("cat", _CITIES)),
                      ("open_year", ("year",))],
            "supplier": [("name", ("name",)),
                         ("country", ("cat", _COUNTRIES)),
                         ("rating", ("num", 1, 10))],
        },
        "many_to_one": [("product", "supplier")],
        "many_to_many": [("product", "store", "stocked_in")],
    },
    "music": {
        "entities": {
            "song": [("title", ("name",)),
                     ("genre", ("cat", ("rock", "jazz", "pop", "classical",
                                        "folk"))),
                     ("duration", ("num", 90, 600)),
                     ("release_year", ("year",))],
            "artist": [("name", ("name",)),
                       ("country", ("cat", _COUNTRIES)),
                       ("debut_year", ("year",))],
            "album": [("title", ("name",)),
                      ("label", ("cat", ("bluebird", "northside", "echo",
                                         "harbor"))),
                      ("tracks", ("num", 6, 24))],
        },
        "many_to_one": [("song", "album")],
        "many_to_many": [("song", "artist", "performed_by")],
    },
    "sports": {
        "entities": {
            "player": [("name", ("name",)),
                       ("position", ("cat", ("guard", "forward", "center",
                                             "winger"))),
                       ("height", ("num", 160, 225)),
                       ("draft_year", ("year",))],
            "team": [("name", ("name",)),
                     ("city", ("cat", _CITIES)),
                     ("founded_year", ("year",))],
            "stadium": [("name", ("name",)),
                        ("city", ("cat", _CITIES)),
                        ("seats", ("num", 2000, 90000))],
        },
        "many_to_one": [("player", "team"), ("team", "stadium")],
        "many_to_many": [],
    },
    "restaurant": {
        "entities": {
            "dish": [("name", ("name",)),
                     ("cuisine", ("cat", ("italian", "thai", "mexican",
                                          "indian", "french"))),
                     ("price", ("num", 4, 80))],
            "restaurant": [("name", ("name",)),
                           ("city", ("cat", _CITIES)),
                           ("seats", ("num", 10, 300)),
                           ("open_year", ("year",))],
            "chef": [("name", ("name",)),
                     ("country", ("cat", _COUNTRIES)),
                     ("stars", ("num", 0, 3))],
        },
        "many_to_one": [("dish", "restaurant"), ("restaurant", "chef")],
        "many_to_many": [],
    },
    "streaming": {
        "entities": {
            "movie": [("title", ("name",)),
                      ("genre", ("cat", ("drama", "comedy", "thriller",
                                         "documentary", "animation"))),
                      ("runtime", ("num", 60, 240)),
                      ("release_year", ("year",))],
            "director": [("name", ("name",)),
                         ("country", ("cat", _COUNTRIES)),
                         ("debut_year", ("year",))],
            "platform": [("name", ("name",)),
                         ("subscribers", ("num", 1000, 900000)),
                         ("launch_year", ("year",))],
        },
        "many_to_one": [("movie", "director")],
        "many_to_many": [("movie", "platform", "available_on")],
    },
    "company": {
        "entities": {
            "employee": [("name", ("name",)),
                         ("role", ("cat", ("engineer", "analyst", "manager",
                                           "designer"))),
                         ("salary", ("num", 30000, 220000)),
                         ("hire_year", ("year",))],
            "department": [("name", ("name",)),
                           ("budget", ("num", 50000, 5000000)),
                           ("city", ("cat", _CITIES))],
            "project": [("name", ("name",)),
                        ("status", ("cat", ("active", "paused", "done"))),
                        ("cost", ("num", 1000, 800000))],
        },
        "many_to_one": [("employee", "department")],
        "many_to_many": [("employee", "project", "assignment")],
    },
    "realestate": {
        "entities": {
            "property": [("address", ("name",)),
                         ("kind", ("cat", ("house", "apartment", "condo",
                                           "studio"))),
                         ("price", ("num", 50000, 2000000)),
                         ("built_year", ("year",))],
            "agent": [("name", ("name",)),
                      ("city", ("cat", _CITIES)),
                      ("commission", ("num", 1, 9))],
            "owner": [("name", ("name",)),
                      ("country", ("cat", _COUNTRIES))],
        },
        "many_to_one": [("property", "agent"), ("property", "owner")],
        "many_to_many": [],
    },
    "gaming": {
        "entities": {
            "game": [("title", ("name",)),
                     ("genre", ("cat", ("strategy", "puzzle", "racing",
                                        "adventure", "simulation"))),
                     ("rating", ("num", 1, 100)),
                     ("release_year", ("year",))],
            "studio": [("name", ("name",)),
                       ("country", ("cat", _COUNTRIES)),
                       ("employees", ("num", 3, 4000))],
            "player": [("name", ("name",)),
                       ("level", ("num", 1, 99)),
                       ("join_year", ("year",))],
        },
        "many_to_one": [("game", "studio")],
        "many_to_many": [("player", "game", "plays")],
    },
}

_NAME_WORDS = ("silver", "crimson", "hollow", "bright", "ancient", "quiet",
               "golden", "winding", "distant", "hidden", "rapid", "gentle",
               "broken", "lonely", "shining", "emerald", "frozen", "amber")
_NAME_NOUNS = ("river", "harbor", "meadow", "summit", "garden", "lantern",
               "compass", "anchor", "bridge", "orchard", "canyon", "willow",
               "beacon", "valley", "harvest", "voyage")


@dataclass
class SpiderCorpusConfig:
    """Sizing for a synthetic Spider split."""

    num_databases: int = 20
    tasks_per_database: int = 8
    rows_per_entity: int = 60
    rows_per_link: int = 150
    seed: int = 0
    #: difficulty mix (easy, medium, hard) — Spider dev is roughly 40/43/17
    mix: Tuple[float, float, float] = (0.40, 0.43, 0.17)


def _make_theme_schema(theme_name: str, spec: _ThemeSpec,
                       db_name: str) -> Schema:
    tables: Dict[str, List[Tuple[str, T]]] = {}
    fks: List[Tuple[str, str, str, str]] = []
    pks: Dict[str, Optional[str]] = {}
    for entity, columns in spec["entities"].items():  # type: ignore[union-attr]
        id_col = f"{entity}_id"
        cols: List[Tuple[str, T]] = [(id_col, T.NUMBER)]
        for col_name, kind in columns:
            col_type = T.TEXT if kind[0] in ("name", "cat") else T.NUMBER
            cols.append((col_name, col_type))
        tables[entity] = cols
        pks[entity] = id_col
    for child, parent in spec["many_to_one"]:  # type: ignore[union-attr]
        fk_col = f"{parent}_id"
        tables[child].append((fk_col, T.NUMBER))
        fks.append((child, fk_col, parent, f"{parent}_id"))
    for left, right, link in spec["many_to_many"]:  # type: ignore[union-attr]
        tables[link] = [(f"{left}_id", T.NUMBER), (f"{right}_id", T.NUMBER)]
        pks[link] = None
        fks.append((link, f"{left}_id", left, f"{left}_id"))
        fks.append((link, f"{right}_id", right, f"{right}_id"))
    return make_schema(db_name, tables=tables, foreign_keys=fks,
                       primary_keys=pks)


def _populate(db: Database, spec: _ThemeSpec, rng: random.Random,
              config: SpiderCorpusConfig) -> None:
    schema = db.schema
    entity_counts: Dict[str, int] = {}
    for entity in spec["entities"]:  # type: ignore[union-attr]
        entity_counts[entity] = max(
            10, int(config.rows_per_entity * rng.uniform(0.6, 1.4)))

    def make_value(kind: Tuple, row_index: int, used: set) -> Value:
        if kind[0] == "name":
            while True:
                value = (f"{rng.choice(_NAME_WORDS)} "
                         f"{rng.choice(_NAME_NOUNS)} {row_index}")
                if value not in used:
                    used.add(value)
                    return value
        if kind[0] == "cat":
            return rng.choice(kind[1])
        if kind[0] == "num":
            return rng.randint(kind[1], kind[2])
        return rng.randint(1985, 2020)  # year

    # Insert referenced entities before referencing ones (FK enforcement).
    entities = dict(spec["entities"])  # type: ignore[arg-type]
    ordered: List[str] = []
    while len(ordered) < len(entities):
        progressed = False
        for entity in entities:
            if entity in ordered:
                continue
            deps = {fk.dst_table for fk in schema.foreign_keys_from(entity)
                    if fk.dst_table in entities and fk.dst_table != entity}
            if deps <= set(ordered):
                ordered.append(entity)
                progressed = True
        if not progressed:  # pragma: no cover - themes are acyclic
            ordered.extend(e for e in entities if e not in ordered)
            break

    for entity in ordered:
        columns = entities[entity]
        count = entity_counts[entity]
        used: set = set()
        fk_parents = [fk for fk in schema.foreign_keys_from(entity)]
        rows = []
        for i in range(1, count + 1):
            row: List[Value] = [i]
            for col_name, kind in columns:
                row.append(make_value(kind, i, used))
            for fk in fk_parents:
                parent_count = entity_counts[fk.dst_table]
                row.append(rng.randint(1, parent_count))
            rows.append(tuple(row))
        db.insert_rows(entity, rows)

    for left, right, link in spec["many_to_many"]:  # type: ignore[union-attr]
        pairs: set = set()
        target = config.rows_per_link
        attempts = 0
        while len(pairs) < target and attempts < target * 5:
            attempts += 1
            pairs.add((rng.randint(1, entity_counts[left]),
                       rng.randint(1, entity_counts[right])))
        db.insert_rows(link, sorted(pairs))


class _TaskFactory:
    """Generates validated gold queries for one database."""

    MAX_ATTEMPTS = 30

    def __init__(self, db: Database, rng: random.Random):
        self.db = db
        self.schema = db.schema
        self.rng = rng
        self.joins = JoinPathBuilder(self.schema, max_extensions=1)
        self._entity_tables = [t for t in self.schema.tables
                               if t.primary_key is not None]

    # -- helpers -----------------------------------------------------------
    def _text_columns(self, table: str) -> List[ColumnRef]:
        return [ColumnRef(table=table, column=c.name)
                for c in self.schema.table(table).columns
                if c.type is T.TEXT]

    def _numeric_columns(self, table: str) -> List[ColumnRef]:
        return [ColumnRef(table=table, column=c.name)
                for c in self.schema.table(table).columns
                if c.type is T.NUMBER and not c.is_primary_key
                and not c.name.endswith("_id")]

    def _join_path(self, tables: Sequence[str]) -> Optional[JoinPath]:
        paths = self.joins.paths_for_tables(tuple(dict.fromkeys(tables)))
        return paths[0] if paths else None

    def _value_for(self, column: ColumnRef) -> Optional[Value]:
        values = self.db.distinct_values(column, limit=50)
        return self.rng.choice(values) if values else None

    def _predicate(self, column: ColumnRef,
                   exclude_eq: bool = False) -> Optional[Predicate]:
        col_type = self.schema.column_type(column)
        value = self._value_for(column)
        if value is None:
            return None
        if col_type is T.TEXT:
            op = CompOp.EQ if (exclude_eq is False or
                               self.rng.random() < 0.8) else CompOp.NE
            if self.rng.random() < 0.12:
                token = str(value).split()[0]
                return Predicate(agg=AggOp.NONE, column=column,
                                 op=CompOp.LIKE, value=f"%{token}%")
            return Predicate(agg=AggOp.NONE, column=column, op=op,
                             value=value)
        op = self.rng.choice((CompOp.GT, CompOp.LT, CompOp.GE, CompOp.LE))
        if self.rng.random() < 0.1:
            other = self._value_for(column)
            if other is not None and other != value:
                low, high = sorted((value, other))
                return Predicate(agg=AggOp.NONE, column=column,
                                 op=CompOp.BETWEEN, value=(low, high))
        return Predicate(agg=AggOp.NONE, column=column, op=op, value=value)

    # -- templates ------------------------------------------------------------
    def _easy(self) -> Optional[Query]:
        table = self.rng.choice(self._entity_tables).name
        variant = self.rng.random()
        text_cols = self._text_columns(table)
        num_cols = self._numeric_columns(table)
        if variant < 0.35 and text_cols:
            # project 1-2 columns, possibly across a join
            select_cols = [self.rng.choice(text_cols)]
            if num_cols and self.rng.random() < 0.5:
                select_cols.append(self.rng.choice(num_cols))
            join = self._join_path([c.table for c in select_cols])
            if join is None:
                return None
            return Query(select=tuple(SelectItem(agg=AggOp.NONE, column=c)
                                      for c in select_cols),
                         join_path=join, where=None, group_by=None,
                         having=None, order_by=None, limit=None)
        if variant < 0.70 and text_cols and num_cols:
            # project + ORDER BY (+ LIMIT)
            select_col = self.rng.choice(text_cols)
            order_col = self.rng.choice(num_cols)
            join = self._join_path([select_col.table, order_col.table])
            if join is None:
                return None
            direction = self.rng.choice((Direction.ASC, Direction.DESC))
            limit = self.rng.choice((None, None, 1, 3, 5))
            return Query(select=(SelectItem(agg=AggOp.NONE,
                                            column=select_col),),
                         join_path=join, where=None, group_by=None,
                         having=None,
                         order_by=(OrderItem(agg=AggOp.NONE,
                                             column=order_col,
                                             direction=direction),),
                         limit=limit)
        # global aggregate
        if num_cols and self.rng.random() < 0.6:
            agg = self.rng.choice((AggOp.MAX, AggOp.MIN, AggOp.AVG,
                                   AggOp.SUM))
            column = self.rng.choice(num_cols)
            join = self._join_path([column.table])
            if join is None:
                return None
            return Query(select=(SelectItem(agg=agg, column=column),),
                         join_path=join, where=None, group_by=None,
                         having=None, order_by=None, limit=None)
        join = self._join_path([table])
        if join is None:
            return None
        return Query(select=(SelectItem(agg=AggOp.COUNT, column=STAR),),
                     join_path=join, where=None, group_by=None, having=None,
                     order_by=None, limit=None)

    def _medium(self) -> Optional[Query]:
        table = self.rng.choice(self._entity_tables).name
        text_cols = self._text_columns(table)
        num_cols = self._numeric_columns(table)
        if not text_cols:
            return None
        select_cols = [self.rng.choice(text_cols)]
        if num_cols and self.rng.random() < 0.4:
            select_cols.append(self.rng.choice(num_cols))

        # predicate columns: prefer another table reachable by join, or a
        # different column of the same table (never a projected column).
        pred_pool: List[ColumnRef] = []
        for other in self.schema.tables:
            for col in (self._text_columns(other.name)
                        + self._numeric_columns(other.name)):
                if col not in select_cols:
                    pred_pool.append(col)
        self.rng.shuffle(pred_pool)
        num_preds = 1 if self.rng.random() < 0.7 else 2
        predicates: List[Predicate] = []
        for col in pred_pool:
            path = self._join_path([c.table for c in select_cols]
                                   + [p.column.table for p in predicates]
                                   + [col.table])
            if path is None:
                continue
            pred = self._predicate(col)
            if pred is not None:
                predicates.append(pred)
            if len(predicates) >= num_preds:
                break
        if not predicates:
            return None
        logic = LogicOp.AND
        if len(predicates) > 1:
            same_column = predicates[0].column == predicates[1].column
            logic = LogicOp.OR if (same_column
                                   or self.rng.random() < 0.25) \
                else LogicOp.AND
        tables = ([c.table for c in select_cols]
                  + [p.column.table for p in predicates
                     if isinstance(p.column, ColumnRef)])
        join = self._join_path(tables)
        if join is None:
            return None
        order_by = None
        limit = None
        if num_cols and self.rng.random() < 0.25:
            order_col = self.rng.choice(num_cols)
            if order_col.table in join.tables:
                order_by = (OrderItem(
                    agg=AggOp.NONE, column=order_col,
                    direction=self.rng.choice((Direction.ASC,
                                               Direction.DESC))),)
                limit = self.rng.choice((None, None, 3))
        return Query(select=tuple(SelectItem(agg=AggOp.NONE, column=c)
                                  for c in select_cols),
                     join_path=join,
                     where=Where(logic=logic, predicates=tuple(predicates)),
                     group_by=None, having=None, order_by=order_by,
                     limit=limit)

    def _hard(self) -> Optional[Query]:
        # group an entity's name column, count related rows via a join
        fks = list(self.schema.foreign_keys)
        if not fks:
            return None
        fk = self.rng.choice(fks)
        parent, child = fk.dst_table, fk.src_table
        parent_text = self._text_columns(parent)
        if not parent_text:
            return None
        group_col = parent_text[0]
        join = self._join_path([parent, child])
        if join is None:
            return None
        agg_item = SelectItem(agg=AggOp.COUNT, column=STAR)
        child_nums = self._numeric_columns(child)
        if child_nums and self.rng.random() < 0.3:
            agg = self.rng.choice((AggOp.MAX, AggOp.AVG, AggOp.SUM))
            agg_item = SelectItem(agg=agg,
                                  column=self.rng.choice(child_nums))
        having = None
        order_by = None
        limit = None
        roll = self.rng.random()
        if roll < 0.35 and agg_item.agg is AggOp.COUNT:
            threshold = self.rng.randint(1, 4)
            having = (Predicate(agg=AggOp.COUNT, column=STAR,
                                op=CompOp.GT, value=threshold),)
        elif roll < 0.7:
            order_by = (OrderItem(agg=agg_item.agg, column=agg_item.column,
                                  direction=Direction.DESC),)
            limit = self.rng.choice((None, 1, 3))
        return Query(select=(SelectItem(agg=AggOp.NONE, column=group_col),
                             agg_item),
                     join_path=join, where=None,
                     group_by=(group_col,), having=having,
                     order_by=order_by, limit=limit)

    # -- public ------------------------------------------------------------
    def make_task(self, difficulty: str, task_id: str) -> Optional[Task]:
        template = {"easy": self._easy, "medium": self._medium,
                    "hard": self._hard}[difficulty]
        for _ in range(self.MAX_ATTEMPTS):
            gold = template()
            if gold is None:
                continue
            try:
                rows = self.db.execute_query(gold, max_rows=5)
            except Exception:
                continue
            if not rows:
                continue
            from ..core.semantics import check_semantics
            if check_semantics(gold, self.schema):
                continue
            literals = _collect_literals(gold)
            text = generate_nlq_text(gold, self.schema, self.rng)
            nlq = NLQuery.from_text(text, literals=literals)
            return Task.from_parts(task_id=task_id,
                                   db_name=self.schema.name, nlq=nlq,
                                   gold=gold)
        return None


def _collect_literals(gold: Query) -> List[Value]:
    literals: List[Value] = []
    if isinstance(gold.where, Where):
        for pred in gold.where.predicates:
            if isinstance(pred, Predicate):
                if isinstance(pred.value, tuple):
                    literals.extend(pred.value)
                else:
                    literals.append(pred.value)
    if gold.having is not None:
        for pred in gold.having or ():
            if isinstance(pred, Predicate) and not isinstance(pred.value,
                                                              tuple):
                literals.append(pred.value)
    if isinstance(gold.limit, int):
        literals.append(gold.limit)
    # deduplicate, preserving order
    seen: set = set()
    unique = []
    for value in literals:
        key = repr(value)
        if key not in seen:
            seen.add(key)
            unique.append(value)
    return unique


def generate_corpus(split: str = "dev",
                    config: Optional[SpiderCorpusConfig] = None) -> TaskSet:
    """Generate a synthetic Spider split ("dev" or "test").

    The test split uses a disjoint seed space and twice the databases, as
    in Table 5 (20 dev databases vs 40 test databases).
    """
    config = config or SpiderCorpusConfig()
    if split == "test":
        config = SpiderCorpusConfig(
            num_databases=config.num_databases * 2,
            tasks_per_database=config.tasks_per_database,
            rows_per_entity=config.rows_per_entity,
            rows_per_link=config.rows_per_link,
            seed=config.seed + 10_000,
            mix=config.mix)
    task_set = TaskSet(name=f"spider-{split}")
    theme_names = list(_THEMES)
    for index in range(config.num_databases):
        theme_name = theme_names[index % len(theme_names)]
        rng = random.Random(f"{config.seed}/{split}/{index}")
        db_name = f"{theme_name}_{split}_{index}"
        schema = _make_theme_schema(theme_name, _THEMES[theme_name], db_name)
        db = Database.create(schema)
        _populate(db, _THEMES[theme_name], rng, config)
        factory = _TaskFactory(db, rng)
        counter = 0
        for t in range(config.tasks_per_database):
            roll = rng.random()
            if roll < config.mix[0]:
                difficulty = "easy"
            elif roll < config.mix[0] + config.mix[1]:
                difficulty = "medium"
            else:
                difficulty = "hard"
            task = factory.make_task(difficulty,
                                     f"{db_name}-t{counter}")
            if task is not None:
                task_set.add(task, db)
                counter += 1
    return task_set
