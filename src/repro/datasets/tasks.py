"""Task model: one benchmark item = (database, NLQ, literals, gold SQL).

Difficulty levels follow Table 5 of the paper: *Easy* tasks are
project-join queries (possibly with aggregates, sorting and limit),
*Medium* tasks add selection predicates, and *Hard* tasks include grouping
operators.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..db.database import Database
from ..nlq.literals import NLQuery
from ..sqlir.ast import Hole, Query


class Difficulty(enum.Enum):
    EASY = "easy"
    MEDIUM = "medium"
    HARD = "hard"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def classify_difficulty(gold: Query) -> Difficulty:
    """Classify a gold query by the Table 5 definition."""
    grouped = gold.group_by is not None and not isinstance(gold.group_by,
                                                           Hole)
    if grouped:
        return Difficulty.HARD
    has_where = gold.where is not None and not isinstance(gold.where, Hole)
    if has_where:
        return Difficulty.MEDIUM
    return Difficulty.EASY


@dataclass
class Task:
    """One benchmark task."""

    task_id: str
    db_name: str
    nlq: NLQuery
    gold: Query
    difficulty: Difficulty

    @classmethod
    def from_parts(cls, task_id: str, db_name: str, nlq: NLQuery,
                   gold: Query) -> "Task":
        return cls(task_id=task_id, db_name=db_name, nlq=nlq, gold=gold,
                   difficulty=classify_difficulty(gold))

    def __repr__(self) -> str:
        return f"<Task {self.task_id} [{self.difficulty}] on {self.db_name}>"


@dataclass
class TaskSet:
    """A named collection of tasks over one or more databases."""

    name: str
    tasks: List[Task] = field(default_factory=list)
    databases: Dict[str, Database] = field(default_factory=dict)

    def add(self, task: Task, db: Database) -> None:
        self.tasks.append(task)
        self.databases.setdefault(db.schema.name, db)

    def database_for(self, task: Task) -> Database:
        return self.databases[task.db_name]

    def by_difficulty(self, difficulty: Difficulty) -> List[Task]:
        return [t for t in self.tasks if t.difficulty is difficulty]

    def counts(self) -> Dict[Difficulty, int]:
        counts = {d: 0 for d in Difficulty}
        for task in self.tasks:
            counts[task.difficulty] += 1
        return counts

    def schema_stats(self) -> Tuple[float, float, float]:
        """Average (tables, columns, FK-PKs) across databases (Table 5)."""
        if not self.databases:
            return (0.0, 0.0, 0.0)
        schemas = [db.schema for db in self.databases.values()]
        n = len(schemas)
        return (sum(s.num_tables for s in schemas) / n,
                sum(s.num_columns for s in schemas) / n,
                sum(s.num_foreign_keys for s in schemas) / n)

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    def __repr__(self) -> str:
        counts = self.counts()
        return (f"<TaskSet {self.name}: {len(self.tasks)} tasks "
                f"({counts[Difficulty.EASY]} easy, "
                f"{counts[Difficulty.MEDIUM]} medium, "
                f"{counts[Difficulty.HARD]} hard), "
                f"{len(self.databases)} databases>")
