"""User-study tasks: Tables 7 and 8 of the paper, on the MAS database.

The paper anonymises literals as conference *C*, author *A*, organization
*R* and domain *D*; here they are instantiated with the entities planted
by :mod:`repro.datasets.mas` (SIGMOD, Emma Thompson, University of
Michigan, Databases). SQL strings are copied from the appendix with those
literals substituted; each is parsed into a gold AST against the MAS
schema.

Set A/B is the NLI-study workload (Table 7); set C/D is the more limited
PBE-study workload (Table 8).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..db.database import Database
from ..nlq.literals import NLQuery
from ..sqlir.parser import parse_sql
from .mas import AUTHOR_A, CONFERENCE_C, DOMAIN_D, ORGANIZATION_R
from .tasks import Task, TaskSet


@dataclass(frozen=True)
class UserTaskSpec:
    """One row of Table 7 / Table 8."""

    task_id: str
    level: str  # 'M' or 'H' as printed in the paper
    description: str
    sql: str
    literals: Tuple[object, ...]


#: Table 7 — tasks for the user study vs. NLI.
NLI_TASK_SPECS: Tuple[UserTaskSpec, ...] = (
    UserTaskSpec(
        "A1", "M",
        f'List all publications in conference "{CONFERENCE_C}" and their '
        f"year of publication.",
        f"SELECT t2.title, t2.year FROM conference AS t1 "
        f"JOIN publication AS t2 ON t1.cid = t2.cid "
        f"WHERE t1.name = '{CONFERENCE_C}'",
        (CONFERENCE_C,)),
    UserTaskSpec(
        "A2", "H",
        "List keywords and the number of publications containing each, "
        "ordered from most to least publications.",
        "SELECT t1.keyword, COUNT(*) FROM keyword AS t1 "
        "JOIN publication_keyword AS t2 ON t1.kid = t2.kid "
        "JOIN publication AS t3 ON t2.pid = t3.pid "
        "GROUP BY t1.keyword ORDER BY COUNT(*) DESC",
        ()),
    UserTaskSpec(
        "A3", "H",
        f'How many publications has each author from organization '
        f'"{ORGANIZATION_R}" published?',
        f"SELECT t1.name, COUNT(*) FROM author AS t1 "
        f"JOIN writes AS t2 ON t2.aid = t1.aid "
        f"JOIN organization AS t3 ON t3.oid = t1.oid "
        f"JOIN publication AS t4 ON t4.pid = t2.pid "
        f"WHERE t3.name = '{ORGANIZATION_R}' GROUP BY t1.name",
        (ORGANIZATION_R,)),
    UserTaskSpec(
        "A4", "H",
        "List journals with more than 500 publications and the "
        "publication count for each.",
        "SELECT DISTINCT t1.name, COUNT(*) FROM journal AS t1 "
        "JOIN publication AS t2 ON t1.jid = t2.jid "
        "GROUP BY t1.name HAVING COUNT(*) > 500",
        (500,)),
    UserTaskSpec(
        "B1", "M",
        f'List the titles and years of publications by author '
        f'"{AUTHOR_A}".',
        f"SELECT t1.title, t1.year FROM publication AS t1 "
        f"JOIN writes AS t2 ON t2.pid = t1.pid "
        f"JOIN author AS t3 ON t3.aid = t2.aid "
        f"WHERE t3.name = '{AUTHOR_A}'",
        (AUTHOR_A,)),
    UserTaskSpec(
        "B2", "M",
        f'List the conferences and homepages in the "{DOMAIN_D}" domain.',
        f"SELECT t1.name, t1.homepage FROM conference AS t1 "
        f"JOIN domain_conference AS t2 ON t2.cid = t1.cid "
        f"JOIN domain AS t3 ON t3.did = t2.did "
        f"WHERE t3.name = '{DOMAIN_D}'",
        (DOMAIN_D,)),
    UserTaskSpec(
        "B3", "H",
        "List organizations with more than 100 authors and the number of "
        "authors for each.",
        "SELECT t2.name, COUNT(*) FROM author AS t1 "
        "JOIN organization AS t2 ON t1.oid = t2.oid "
        "GROUP BY t2.name HAVING COUNT(*) > 100",
        (100,)),
    UserTaskSpec(
        "B4", "H",
        f'List authors from organization "{ORGANIZATION_R}" with more '
        f"than 50 publications and the number of publications for each "
        f"author.",
        f"SELECT t1.name, COUNT(*) FROM author AS t1 "
        f"JOIN writes AS t2 ON t1.aid = t2.aid "
        f"JOIN organization AS t3 ON t1.oid = t3.oid "
        f"JOIN publication AS t4 ON t2.pid = t4.pid "
        f"WHERE t3.name = '{ORGANIZATION_R}' GROUP BY t1.name "
        f"HAVING COUNT(*) > 50",
        (ORGANIZATION_R, 50)),
)

#: Table 8 — tasks for the user study vs. PBE.
PBE_TASK_SPECS: Tuple[UserTaskSpec, ...] = (
    UserTaskSpec(
        "C1", "M",
        f'List all publications in conference "{CONFERENCE_C}".',
        f"SELECT t2.title FROM conference AS t1 "
        f"JOIN publication AS t2 ON t1.cid = t2.cid "
        f"WHERE t1.name = '{CONFERENCE_C}'",
        (CONFERENCE_C,)),
    UserTaskSpec(
        "C2", "M",
        f'List authors in domain "{DOMAIN_D}".',
        f"SELECT t1.name FROM author AS t1 "
        f"JOIN domain_author AS t2 ON t1.aid = t2.aid "
        f"JOIN domain AS t3 ON t2.did = t3.did "
        f"WHERE t3.name = '{DOMAIN_D}'",
        (DOMAIN_D,)),
    UserTaskSpec(
        "C3", "H",
        f'List authors with more than 5 papers in conference '
        f'"{CONFERENCE_C}".',
        f"SELECT t1.name FROM author AS t1 "
        f"JOIN writes AS t2 ON t1.aid = t2.aid "
        f"JOIN publication AS t3 ON t2.pid = t3.pid "
        f"JOIN conference AS t4 ON t3.cid = t4.cid "
        f"WHERE t4.name = '{CONFERENCE_C}' GROUP BY t1.name "
        f"HAVING COUNT(t3.pid) > 5",
        (CONFERENCE_C, 5)),
    UserTaskSpec(
        "D1", "M",
        f'List the titles of publications published by author '
        f'"{AUTHOR_A}".',
        f"SELECT t3.title FROM author AS t1 "
        f"JOIN writes AS t2 ON t1.aid = t2.aid "
        f"JOIN publication AS t3 ON t2.pid = t3.pid "
        f"WHERE t1.name = '{AUTHOR_A}'",
        (AUTHOR_A,)),
    UserTaskSpec(
        "D2", "M",
        'List the names of organizations in continent "North America".',
        "SELECT name FROM organization WHERE continent = 'North America'",
        ("North America",)),
    UserTaskSpec(
        "D3", "H",
        f'List authors with more than 8 papers in conference '
        f'"{CONFERENCE_C}".',
        f"SELECT t1.name FROM author AS t1 "
        f"JOIN writes AS t2 ON t1.aid = t2.aid "
        f"JOIN publication AS t3 ON t2.pid = t3.pid "
        f"JOIN conference AS t4 ON t3.cid = t4.cid "
        f"WHERE t4.name = '{CONFERENCE_C}' GROUP BY t1.name "
        f"HAVING COUNT(t3.pid) > 8",
        (CONFERENCE_C, 8)),
)


def _build_task(spec: UserTaskSpec, db: Database) -> Task:
    gold = parse_sql(spec.sql, db.schema)
    nlq = NLQuery.from_text(spec.description, literals=spec.literals)
    return Task.from_parts(task_id=spec.task_id, db_name=db.schema.name,
                           nlq=nlq, gold=gold)


def nli_study_tasks(db: Database) -> TaskSet:
    """The 8 tasks (sets A and B) of the user study vs. NLI (Table 7)."""
    task_set = TaskSet(name="user-study-nli")
    for spec in NLI_TASK_SPECS:
        task_set.add(_build_task(spec, db), db)
    return task_set


def pbe_study_tasks(db: Database) -> TaskSet:
    """The 6 tasks (sets C and D) of the user study vs. PBE (Table 8)."""
    task_set = TaskSet(name="user-study-pbe")
    for spec in PBE_TASK_SPECS:
        task_set.add(_build_task(spec, db), db)
    return task_set
