"""Calibrated noisy-oracle guidance backend.

The paper's Enumerator uses a SyntaxSQLNet model pre-trained on Spider
(Section 4). Training a neural network is out of scope for this offline
reproduction, so the simulation study runs on a *statistically calibrated*
stand-in: a model that knows each task's gold query but corrupts its
per-decision output distributions with controlled noise. The per-module
accuracy (the probability that the gold output class is ranked first) is
the calibration knob; with the default profile the NLI baseline lands near
SyntaxSQLNet's published accuracy band, which is what every comparative
number in Section 5.4 depends on.

Determinism: every decision's distribution is seeded by
``(seed, task_id, module, decision key)`` and *not* by the partial query's
identity, so the same inference decision receives the same distribution in
every system (Duoquest, the NLI baseline, and the ablations) — mirroring
the paper's setup where all systems share one trained model.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, TypeVar

from ..sqlir.ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    Hole,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    SelectItem,
    Where,
)
from .base import (
    Distribution,
    GuidanceContext,
    GuidanceModel,
    SLOT_GROUP_BY,
    SLOT_HAVING,
    SLOT_ORDER_BY,
    SLOT_SELECT,
    SLOT_WHERE,
    partial_pred_index,
    picked_columns,
)

T = TypeVar("T")


@dataclass(frozen=True)
class AccuracyProfile:
    """Per-module probability that the gold class is ranked first.

    The defaults are calibrated so that beam-searching this model *without*
    TSQ verification reproduces the NLI baseline's accuracy band from
    Figure 10 (top-1 around 30%, top-10 around 56%).
    """

    clause_presence: float = 0.95
    num_items: float = 0.93
    column: float = 0.88
    aggregate: float = 0.93
    comparison: float = 0.92
    logic: float = 0.95
    direction: float = 0.93
    having: float = 0.94
    value: float = 0.96
    limit: float = 0.98
    #: Geometric decay of probability mass by rank (rank-1 share ~= 1-decay).
    #: Trained softmax distributions are peaked; a small decay keeps the
    #: best-first search committed to high-confidence branches.
    decay: float = 0.30

    def scaled(self, factor: float) -> "AccuracyProfile":
        """A profile with every accuracy scaled by ``factor`` (clamped)."""
        def clamp(x: float) -> float:
            return max(0.05, min(0.995, x * factor))

        return AccuracyProfile(
            clause_presence=clamp(self.clause_presence),
            num_items=clamp(self.num_items),
            column=clamp(self.column),
            aggregate=clamp(self.aggregate),
            comparison=clamp(self.comparison),
            logic=clamp(self.logic),
            direction=clamp(self.direction),
            having=clamp(self.having),
            value=clamp(self.value),
            limit=clamp(self.limit),
            decay=self.decay,
        )


def _stable_seed(*parts: object) -> int:
    """A deterministic 64-bit seed from arbitrary hashable parts."""
    text = "\x1f".join(repr(part) for part in parts)
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class CalibratedOracleModel(GuidanceModel):
    """Noisy oracle satisfying the :class:`GuidanceModel` contract."""

    name = "calibrated-oracle"

    def __init__(self, profile: Optional[AccuracyProfile] = None,
                 seed: int = 0):
        self.profile = profile or AccuracyProfile()
        self._seed = seed

    def cache_fields(self):
        """The oracle's declared cache-key projection.

        Every distribution below is a deterministic function of the
        instance state (seed, profile), the task identity, the gold
        query, the method's own arguments, and — for the sequential
        set decisions — the decision prefix (picked columns / complete
        predicate count, exactly what :func:`picked_columns` and
        :func:`partial_pred_index` extract). The NLQ text, the schema,
        and the rest of the partial query are never read, so dropping
        them from the cache key merges repeat decisions across partial
        shapes without changing any answer (the equivalence suite locks
        this).
        """
        return ("task_id", "gold", "decision_prefix")

    # ------------------------------------------------------------------
    # Distribution machinery
    # ------------------------------------------------------------------
    def _rng(self, ctx: GuidanceContext, module: str, key: object) -> random.Random:
        return random.Random(_stable_seed(self._seed, ctx.task_id, module, key))

    def _ranked(self, candidates: Sequence[T], gold: Optional[T],
                accuracy: float, rng: random.Random) -> Distribution[T]:
        """Rank candidates with the gold first with probability ``accuracy``;
        assign geometrically decaying probability mass by rank."""
        others: List[T] = [c for c in candidates if c != gold]
        rng.shuffle(others)
        if gold is None or gold not in candidates:
            ranking = others
        elif rng.random() < accuracy:
            ranking = [gold] + others
        else:
            demote = 1
            while rng.random() < 0.5 and demote < len(others):
                demote += 1
            ranking = others[:demote] + [gold] + others[demote:]
        if not ranking:
            return Distribution(entries=())
        decay = self.profile.decay
        weights = [(choice, decay ** rank)
                   for rank, choice in enumerate(ranking)]
        return Distribution.from_probs(weights)

    # ------------------------------------------------------------------
    # Gold extraction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _gold_columns(gold: Query, slot: str) -> List[ColumnRef]:
        """Gold columns of a slot, in the enumerator's pick order.

        SELECT and ORDER BY column order is observable (TSQ type
        annotations and tuples are positional), so gold order is kept;
        WHERE predicates are picked in non-decreasing canonical order
        (with multiplicity — a column may carry two predicates, as in the
        paper's CQ3); GROUP BY columns in ascending canonical order.
        """
        columns: List[ColumnRef] = []
        if slot == SLOT_SELECT and not isinstance(gold.select, Hole):
            columns = [item.column for item in gold.select
                       if isinstance(item, SelectItem)
                       and isinstance(item.column, ColumnRef)]
        elif slot == SLOT_WHERE and isinstance(gold.where, Where):
            columns = sorted(pred.column for pred in gold.where.predicates
                             if isinstance(pred, Predicate)
                             and isinstance(pred.column, ColumnRef))
        elif slot == SLOT_GROUP_BY and gold.group_by is not None \
                and not isinstance(gold.group_by, Hole):
            columns = sorted({c for c in gold.group_by
                              if isinstance(c, ColumnRef)})
        elif slot == SLOT_HAVING and gold.having is not None \
                and not isinstance(gold.having, Hole):
            columns = [pred.column for pred in gold.having
                       if isinstance(pred, Predicate)
                       and isinstance(pred.column, ColumnRef)]
        elif slot == SLOT_ORDER_BY and gold.order_by is not None \
                and not isinstance(gold.order_by, Hole):
            columns = [item.column for item in gold.order_by
                       if isinstance(item, OrderItem)
                       and isinstance(item.column, ColumnRef)]
        return columns

    #: Columns already fixed for a slot — shared with the cache-key
    #: projection (``decision_prefix``), so the prefix the cache keys on
    #: is exactly the prefix the gold tracking reads.
    _picked_columns = staticmethod(picked_columns)

    def _next_gold_column(self, ctx: GuidanceContext,
                          slot: str) -> Optional[ColumnRef]:
        """The gold column for the next pick, or None when off-gold."""
        if ctx.gold is None:
            return None
        gold_sorted = self._gold_columns(ctx.gold, slot)
        picked = self._picked_columns(ctx.partial, slot)
        if picked != gold_sorted[:len(picked)]:
            return None  # the branch already deviated from gold
        if len(picked) >= len(gold_sorted):
            return None
        return gold_sorted[len(picked)]

    @staticmethod
    def _gold_predicates(gold: Query, slot: str,
                         column: ColumnRef) -> List[Predicate]:
        preds: List[Predicate] = []
        if slot == SLOT_WHERE and isinstance(gold.where, Where):
            preds = [p for p in gold.where.predicates
                     if isinstance(p, Predicate) and p.column == column]
        elif slot == SLOT_HAVING and gold.having is not None \
                and not isinstance(gold.having, Hole):
            preds = [p for p in gold.having
                     if isinstance(p, Predicate) and p.column == column]
        return preds

    #: See ``_picked_columns`` above — same sharing, for predicates.
    _partial_pred_index = staticmethod(partial_pred_index)

    # ------------------------------------------------------------------
    # GuidanceModel implementation
    # ------------------------------------------------------------------
    def clause_presence(self, ctx: GuidanceContext,
                        clause: str) -> Distribution[bool]:
        gold: Optional[bool] = None
        if ctx.gold is not None:
            if clause == SLOT_WHERE:
                gold = ctx.gold.where is not None \
                    and not isinstance(ctx.gold.where, Hole)
            elif clause == SLOT_GROUP_BY:
                gold = ctx.gold.group_by is not None \
                    and not isinstance(ctx.gold.group_by, Hole)
            elif clause == SLOT_ORDER_BY:
                gold = ctx.gold.order_by is not None \
                    and not isinstance(ctx.gold.order_by, Hole)
        rng = self._rng(ctx, "KW", clause)
        return self._ranked([True, False], gold,
                            self.profile.clause_presence, rng)

    def num_items(self, ctx: GuidanceContext, slot: str,
                  max_n: int) -> Distribution[int]:
        gold: Optional[int] = None
        if ctx.gold is not None:
            count = len(self._gold_columns(ctx.gold, slot))
            if slot == SLOT_SELECT and not isinstance(ctx.gold.select, Hole):
                count = len(ctx.gold.select)
            elif slot == SLOT_WHERE and isinstance(ctx.gold.where, Where):
                count = len(ctx.gold.where.predicates)
            elif slot == SLOT_ORDER_BY and ctx.gold.order_by is not None \
                    and not isinstance(ctx.gold.order_by, Hole):
                count = len(ctx.gold.order_by)
            elif slot == SLOT_HAVING and ctx.gold.having is not None \
                    and not isinstance(ctx.gold.having, Hole):
                count = len(ctx.gold.having)
            if 1 <= count <= max_n:
                gold = count
        rng = self._rng(ctx, "NUM", slot)
        return self._ranked(list(range(1, max_n + 1)), gold,
                            self.profile.num_items, rng)

    def column(self, ctx: GuidanceContext, slot: str,
               candidates: Sequence[ColumnRef]) -> Distribution[ColumnRef]:
        gold = self._next_gold_column(ctx, slot)
        picked = len(self._picked_columns(ctx.partial, slot))
        rng = self._rng(ctx, "COL", (slot, picked))
        return self._ranked(list(candidates), gold, self.profile.column, rng)

    def aggregate(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
                  candidates: Sequence[AggOp]) -> Distribution[AggOp]:
        gold: Optional[AggOp] = None
        if ctx.gold is not None:
            if slot == SLOT_SELECT and not isinstance(ctx.gold.select, Hole):
                for item in ctx.gold.select:
                    if isinstance(item, SelectItem) and item.column == column:
                        gold = item.agg
                        break
            elif slot == SLOT_ORDER_BY and ctx.gold.order_by is not None \
                    and not isinstance(ctx.gold.order_by, Hole):
                for item in ctx.gold.order_by:
                    if isinstance(item, OrderItem) and item.column == column:
                        gold = item.agg
                        break
            elif slot == SLOT_HAVING:
                preds = self._gold_predicates(ctx.gold, slot, column)
                if preds:
                    gold = preds[0].agg
        rng = self._rng(ctx, "AGG", (slot, column))
        return self._ranked(list(candidates), gold,
                            self.profile.aggregate, rng)

    def comparison(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
                   candidates: Sequence[CompOp]) -> Distribution[CompOp]:
        gold: Optional[CompOp] = None
        index = self._partial_pred_index(ctx.partial, slot, column)
        if ctx.gold is not None:
            preds = self._gold_predicates(ctx.gold, slot, column)
            if index < len(preds) and isinstance(preds[index].op, CompOp):
                gold = preds[index].op
        rng = self._rng(ctx, "OP", (slot, column, index))
        return self._ranked(list(candidates), gold,
                            self.profile.comparison, rng)

    def logic(self, ctx: GuidanceContext) -> Distribution[LogicOp]:
        gold: Optional[LogicOp] = None
        if ctx.gold is not None and isinstance(ctx.gold.where, Where) \
                and isinstance(ctx.gold.where.logic, LogicOp):
            gold = ctx.gold.where.logic
        rng = self._rng(ctx, "AND/OR", "logic")
        return self._ranked([LogicOp.AND, LogicOp.OR], gold,
                            self.profile.logic, rng)

    def direction(self, ctx: GuidanceContext,
                  column: ColumnRef) -> Distribution[Tuple[Direction, bool]]:
        gold: Optional[Tuple[Direction, bool]] = None
        if ctx.gold is not None and ctx.gold.order_by is not None \
                and not isinstance(ctx.gold.order_by, Hole):
            has_limit = ctx.gold.limit is not None \
                and not isinstance(ctx.gold.limit, Hole)
            for item in ctx.gold.order_by:
                if isinstance(item, OrderItem) and item.column == column \
                        and isinstance(item.direction, Direction):
                    gold = (item.direction, has_limit)
                    break
        candidates = [(d, flag) for d in (Direction.ASC, Direction.DESC)
                      for flag in (False, True)]
        rng = self._rng(ctx, "DESC/ASC", column)
        return self._ranked(candidates, gold, self.profile.direction, rng)

    def having_presence(self, ctx: GuidanceContext) -> Distribution[bool]:
        gold: Optional[bool] = None
        if ctx.gold is not None:
            gold = ctx.gold.having is not None \
                and not isinstance(ctx.gold.having, Hole)
        rng = self._rng(ctx, "HAVING", "presence")
        return self._ranked([True, False], gold, self.profile.having, rng)

    def value(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
              candidates: Sequence[object]) -> Distribution[object]:
        if not candidates:
            return Distribution(entries=())
        gold: Optional[object] = None
        index = self._partial_pred_index(ctx.partial, slot, column)
        if ctx.gold is not None:
            preds = self._gold_predicates(ctx.gold, slot, column)
            if index < len(preds) and not isinstance(preds[index].value, Hole):
                gold = preds[index].value
        rng = self._rng(ctx, "VALUE", (slot, column, index))
        return self._ranked(list(candidates), gold, self.profile.value, rng)

    def limit_value(self, ctx: GuidanceContext,
                    candidates: Sequence[int]) -> Distribution[int]:
        if not candidates:
            return Distribution(entries=())
        gold: Optional[int] = None
        if ctx.gold is not None and ctx.gold.limit is not None \
                and not isinstance(ctx.gold.limit, Hole):
            gold = int(ctx.gold.limit)
        rng = self._rng(ctx, "LIMIT", "value")
        return self._ranked(list(candidates), gold, self.profile.limit, rng)
