"""Lexical guidance backend: a real (heuristic) NL2SQL scorer.

This backend fills the role of the trained SyntaxSQLNet network using only
lexical evidence: schema linking scores (token/stem overlap between the NLQ
and schema identifiers) plus cue-word detectors for aggregates, comparisons,
ordering and grouping. It is deterministic and requires no training, which
makes it useful for examples, tests, and as a genuinely NLQ-driven
end-to-end demonstration of GPQE.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..nlq.linking import LinkScores, link_schema
from ..nlq.literals import NLQuery
from ..nlq.tokenize import contains_phrase, stems, tokenize
from ..sqlir.ast import AggOp, ColumnRef, CompOp, Direction, LogicOp
from ..sqlir.types import ColumnType
from .base import (
    Distribution,
    GuidanceContext,
    GuidanceModel,
    SLOT_GROUP_BY,
    SLOT_HAVING,
    SLOT_ORDER_BY,
    SLOT_SELECT,
    SLOT_WHERE,
)

#: Cue phrases for each aggregate function.
_AGG_CUES: Dict[AggOp, Tuple[str, ...]] = {
    AggOp.COUNT: ("how many", "number of", "count", "total number"),
    AggOp.AVG: ("average", "mean", "avg"),
    AggOp.SUM: ("sum", "total", "combined", "altogether"),
    AggOp.MAX: ("maximum", "max", "most", "highest", "largest", "latest",
                "greatest", "biggest"),
    AggOp.MIN: ("minimum", "min", "least", "lowest", "smallest", "earliest",
                "fewest"),
}

_GT_CUES = ("more than", "greater than", "over", "above", "after",
            "exceeding", "later than")
_LT_CUES = ("less than", "fewer than", "under", "below", "before",
            "earlier than")
_GE_CUES = ("at least", "or more", "no less than", "minimum of")
_LE_CUES = ("at most", "or fewer", "no more than", "up to", "maximum of")
_BETWEEN_CUES = ("between",)
_LIKE_CUES = ("containing", "contains", "including", "includes", "like",
              "starting with", "ending with", "substring")
_NE_CUES = ("not equal", "other than", "excluding", "except")

_ORDER_CUES = ("order", "ordered", "sort", "sorted", "ranked", "rank",
               "descending", "ascending", "alphabetical", "earliest to",
               "oldest to", "most to least", "least to most", "from earliest",
               "from oldest", "from most", "top")
_DESC_CUES = ("descending", "most to least", "newest to oldest",
              "latest to earliest", "highest to lowest", "largest first",
              "decreasing", "most recent first", "top")
_GROUP_CUES = ("each", "every", "per", "for each", "group", "grouped",
               "respectively", "by author", "and the number of",
               "and their number of", "for all")
_OR_CUES = ("or", "either")


class LexicalGuidanceModel(GuidanceModel):
    """Guidance from schema linking and cue words only."""

    name = "lexical"

    #: Softmax temperature controlling how peaked column choices are.
    def __init__(self, temperature: float = 0.18):
        self._temperature = temperature
        self._link_cache: Dict[Tuple[str, str], LinkScores] = {}

    def cache_fields(self):
        """The lexical model's declared cache-key projection.

        Every distribution below is a deterministic function of the NLQ
        (its text, tokens, and typed literals), the schema (column types
        and the link scores derived from both), and the method's own
        arguments.  ``task_id`` and ``gold`` are never read, so dropping
        them from the cache key merges repeat decisions across tasks
        that share an utterance and schema without changing any answer.
        ``partial`` is declared even though no method reads it today:
        keeping it in the key is always sound, and it keeps the
        declaration valid if a future cue starts peeking at the partial
        query shape.  The equivalence suite locks the merge in.
        """
        return ("schema", "nlq", "partial")

    # ------------------------------------------------------------------
    def _links(self, ctx: GuidanceContext) -> LinkScores:
        key = (ctx.nlq.text, ctx.schema.name)
        if key not in self._link_cache:
            self._link_cache[key] = link_schema(ctx.nlq, ctx.schema)
        return self._link_cache[key]

    @staticmethod
    def _has_any(nlq: NLQuery, phrases: Sequence[str]) -> bool:
        return any(contains_phrase(nlq.text, phrase) for phrase in phrases)

    # -- KW --------------------------------------------------------------
    def clause_presence(self, ctx: GuidanceContext,
                        clause: str) -> Distribution[bool]:
        nlq = ctx.nlq
        if clause == SLOT_WHERE:
            evidence = 0.12
            if nlq.literals:
                evidence = 0.85
            if self._has_any(nlq, _GT_CUES + _LT_CUES + _BETWEEN_CUES
                             + _GE_CUES + _LE_CUES + _LIKE_CUES):
                evidence = max(evidence, 0.8)
            return Distribution.binary(evidence)
        if clause == SLOT_GROUP_BY:
            evidence = 0.55 if self._has_any(nlq, _GROUP_CUES) else 0.12
            # "number of X for each Y" is the strongest grouping signal.
            if self._has_any(nlq, ("for each", "per")) and \
                    self._has_any(nlq, _AGG_CUES[AggOp.COUNT]):
                evidence = 0.85
            return Distribution.binary(evidence)
        if clause == SLOT_ORDER_BY:
            evidence = 0.8 if self._has_any(nlq, _ORDER_CUES) else 0.08
            return Distribution.binary(evidence)
        return Distribution.binary(0.05)

    # -- set size ---------------------------------------------------------
    def num_items(self, ctx: GuidanceContext, slot: str,
                  max_n: int) -> Distribution[int]:
        links = self._links(ctx)
        strong = sum(1 for _, score in links.columns.items() if score >= 0.5)
        if slot == SLOT_SELECT:
            # "and" between noun phrases hints at multiple projections.
            conjunctions = tokenize(ctx.nlq.text).count("and")
            guess = max(1, min(max_n, min(strong, conjunctions + 1)))
        elif slot == SLOT_WHERE:
            guess = max(1, min(max_n, len(ctx.nlq.literals) or 1))
        else:
            guess = 1
        scores = [(n, 1.0 if n == guess else 0.35 / abs(n - guess))
                  for n in range(1, max_n + 1)]
        return Distribution.from_probs(scores)

    # -- COL ----------------------------------------------------------------
    def column(self, ctx: GuidanceContext, slot: str,
               candidates: Sequence[ColumnRef]) -> Distribution[ColumnRef]:
        links = self._links(ctx)
        literal_types = {lit.type for lit in ctx.nlq.literals}
        scored = []
        for ref in candidates:
            score = links.column_score(ref)
            if slot in (SLOT_WHERE, SLOT_HAVING):
                col_type = ctx.schema.column_type(ref)
                if col_type in literal_types:
                    score += 0.1
            scored.append((ref, score))
        return Distribution.from_scores(scored, temperature=self._temperature)

    # -- AGG ----------------------------------------------------------------
    def aggregate(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
                  candidates: Sequence[AggOp]) -> Distribution[AggOp]:
        cued: Optional[AggOp] = None
        for agg, cues in _AGG_CUES.items():
            if self._has_any(ctx.nlq, cues):
                cued = agg
                break
        col_type = (ColumnType.NUMBER if column.is_star
                    else ctx.schema.column_type(column))
        probs = []
        for agg in candidates:
            if agg is AggOp.NONE:
                weight = 0.35 if cued else 0.9
            elif agg is cued:
                weight = 0.55
            else:
                weight = 0.02
            # Text columns only admit COUNT (semantic rule "aggregate type
            # usage"); push mass away from invalid choices early.
            if (col_type is ColumnType.TEXT and agg.is_aggregate
                    and agg is not AggOp.COUNT):
                weight = 0.001
            probs.append((agg, weight))
        return Distribution.from_probs(probs)

    # -- OP -------------------------------------------------------------------
    def comparison(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
                   candidates: Sequence[CompOp]) -> Distribution[CompOp]:
        cued: Optional[CompOp] = None
        for op, cues in ((CompOp.GE, _GE_CUES), (CompOp.LE, _LE_CUES),
                         (CompOp.GT, _GT_CUES), (CompOp.LT, _LT_CUES),
                         (CompOp.BETWEEN, _BETWEEN_CUES),
                         (CompOp.LIKE, _LIKE_CUES), (CompOp.NE, _NE_CUES)):
            if self._has_any(ctx.nlq, cues):
                cued = op
                break
        probs = []
        for op in candidates:
            if op is cued:
                weight = 0.6
            elif op is CompOp.EQ:
                weight = 0.5 if cued is None else 0.2
            else:
                weight = 0.04
            probs.append((op, weight))
        return Distribution.from_probs(probs)

    # -- AND/OR -----------------------------------------------------------------
    def logic(self, ctx: GuidanceContext) -> Distribution[LogicOp]:
        tokens = tokenize(ctx.nlq.text)
        or_evidence = 0.65 if any(
            contains_phrase(ctx.nlq.text, cue) for cue in _OR_CUES) else 0.12
        # "or" as part of listing projections is common; damp when few
        # literals are available for predicates.
        if "or" not in tokens:
            or_evidence = min(or_evidence, 0.15)
        return Distribution.from_probs([(LogicOp.OR, or_evidence),
                                        (LogicOp.AND, 1.0 - or_evidence)])

    # -- DESC/ASC ------------------------------------------------------------------
    def direction(self, ctx: GuidanceContext,
                  column: ColumnRef) -> Distribution[Tuple[Direction, bool]]:
        desc = self._has_any(ctx.nlq, _DESC_CUES)
        has_limit = self._has_any(ctx.nlq, ("top", "first", "limit")) and \
            bool(ctx.nlq.number_literals)
        primary = (Direction.DESC if desc else Direction.ASC, has_limit)
        probs = []
        for direction in (Direction.ASC, Direction.DESC):
            for limited in (False, True):
                weight = 0.6 if (direction, limited) == primary else 0.13
                probs.append(((direction, limited), weight))
        return Distribution.from_probs(probs)

    # -- HAVING -----------------------------------------------------------------------
    def having_presence(self, ctx: GuidanceContext) -> Distribution[bool]:
        evidence = 0.1
        if self._has_any(ctx.nlq, ("more than", "at least", "fewer than",
                                   "less than")) and \
                self._has_any(ctx.nlq, _GROUP_CUES):
            evidence = 0.6
        return Distribution.binary(evidence)

    # -- values ------------------------------------------------------------------------
    def value(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
              candidates: Sequence[object]) -> Distribution[object]:
        if not candidates:
            return Distribution(entries=())
        # Literals were tagged by the user, so each is equally plausible a
        # priori; type filtering happened upstream.
        uniform = [(value, 1.0) for value in candidates]
        return Distribution.from_probs(uniform)

    def limit_value(self, ctx: GuidanceContext,
                    candidates: Sequence[int]) -> Distribution[int]:
        if not candidates:
            return Distribution(entries=())
        return Distribution.from_probs([(v, 1.0) for v in candidates])
