"""Registry of guidance modules, mirroring Table 3 of the paper.

Each entry records a module's responsibility and output cardinality as in
SyntaxSQLNet. The registry is informational — it documents the mapping
between the paper's modules and the :class:`~repro.guidance.base.GuidanceModel`
methods — and backs the Table 3 reproduction benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ModuleInfo:
    """One row of Table 3."""

    name: str
    responsibility: str
    output: str  # "Set" or "Single"
    method: str  # GuidanceModel method implementing it


#: The modules adopted from SyntaxSQLNet (Table 3), in execution order.
MODULES: Tuple[ModuleInfo, ...] = (
    ModuleInfo(
        name="KW",
        responsibility="Clauses present in query (WHERE, GROUP BY, ORDER BY)",
        output="Set",
        method="clause_presence",
    ),
    ModuleInfo(
        name="COL",
        responsibility="Schema columns",
        output="Set",
        method="column",
    ),
    ModuleInfo(
        name="OP",
        responsibility="Predicate operators (e.g. =, LIKE)",
        output="Set",
        method="comparison",
    ),
    ModuleInfo(
        name="AGG",
        responsibility="Aggregate functions (MAX, MIN, SUM, COUNT, AVG, None)",
        output="Set",
        method="aggregate",
    ),
    ModuleInfo(
        name="AND/OR",
        responsibility="Logical operators for predicates",
        output="Single",
        method="logic",
    ),
    ModuleInfo(
        name="DESC/ASC",
        responsibility="ORDER BY direction and LIMIT",
        output="Single",
        method="direction",
    ),
    ModuleInfo(
        name="HAVING",
        responsibility="Presence of HAVING clause",
        output="Single",
        method="having_presence",
    ),
)


def module_by_name(name: str) -> ModuleInfo:
    """Look up a module row by its Table 3 name."""
    for module in MODULES:
        if module.name == name:
            return module
    raise KeyError(name)
