"""Amortised guidance backends: batching wrapper and RPC-style server.

The search subsystem already funnels every expansion round's decisions
through one :meth:`~repro.guidance.base.GuidanceModel.score_batch`
call, but the bundled lexical/oracle backends score per request, so the
batching seam amortised nothing. This module supplies the backends that
make it pay:

* :class:`BatchingGuidanceModel` wraps any guidance model. Within a
  round it deduplicates identical requests (equal
  :meth:`~repro.guidance.base.GuidanceRequest.cache_key`), across
  rounds it memoises distributions in a bounded LRU
  :class:`GuidanceCache`, and it exposes amortisation counters
  (:class:`AmortisationCounters`) that the search engine folds into
  :class:`~repro.core.search.telemetry.SearchTelemetry` per run. The
  wrapper never changes results: the inner model is deterministic per
  request (the ``GuidanceModel`` contract), so a cached distribution is
  byte-identical to a recomputed one and the candidate stream stays
  bit-for-bit equal to the unwrapped model (locked in by
  ``tests/core/test_search_equivalence.py``).

* :class:`ServerGuidanceModel` ships whole request batches to an
  out-of-process scorer over a newline-delimited-JSON socket protocol
  (one JSON object per line; see :meth:`ServerGuidanceModel.serialize`
  for the wire format and ``examples/guidance_server.py`` for a stub
  server standing in for a neural/RPC scorer). Failures are never
  silent: the first connection error, timeout, or protocol violation
  logs a warning, marks the model ``degraded`` (surfaced as
  ``SearchTelemetry.guidance_degraded``, mirroring the verification
  pools' ``snapshot_degraded``), and every subsequent request is
  answered by the local fallback model — results change visibly or not
  at all.

Wiring happens in :class:`~repro.core.enumerator.Enumerator` (via
``EnumeratorConfig.guidance_batch`` / ``guidance_server``) and in the
eval harness, which wraps the oracle once per run so the cache is
shared across every enumeration of that run (Duoquest, the NLI
baseline, and the ablation variants re-score largely identical
decisions).
"""

from __future__ import annotations

import itertools
import json
import logging
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import faults
from ..errors import GuidanceError
from ..faults import RetryPolicy
from ..sqlir.ast import AggOp, ColumnRef, CompOp, Direction, LogicOp
from .base import (
    CACHE_FIELDS,
    Distribution,
    GuidanceContext,
    GuidanceModel,
    GuidanceRequest,
)

logger = logging.getLogger(__name__)

#: Default bound for the distribution cache (entries, not bytes).
DEFAULT_CACHE_SIZE = 4096

#: Default socket timeout (seconds) for the server backend.
DEFAULT_TIMEOUT = 5.0

#: Default bound on reconnect attempts after a server failure. Long
#: eval runs survive a scorer restart (the connection heals on a later
#: batch); a server that stays dead exhausts the budget and the model
#: degrades permanently, exactly like the pre-reconnect behaviour.
DEFAULT_MAX_RECONNECTS = 3


class ProtocolMismatch(GuidanceError):
    """The server answered the handshake with a different protocol
    version. Reconnecting cannot fix an incompatibility, so this error
    degrades permanently regardless of the reconnect budget."""


def parse_server_address(address: str) -> Tuple[str, int]:
    """Validate and split a ``HOST:PORT`` guidance-server address.

    The single authority on the accepted format — both the
    ``EnumeratorConfig`` boundary and :class:`ServerGuidanceModel` call
    this, so the config can never accept an address the backend would
    reject.
    """
    host, _, port = address.rpartition(":")
    if not host or not port.isdigit():
        raise GuidanceError(
            f"guidance server address must be HOST:PORT "
            f"(got {address!r})")
    return host, int(port)


def request_candidates(request: GuidanceRequest) -> List[object]:
    """The concrete output classes a request's distribution ranges over.

    Candidate-carrying methods (column/aggregate/comparison/value/
    limit_value) name them explicitly in ``args``; the fixed-arity
    methods (clause presence, logic, direction, HAVING presence) have
    implicit class lists that every backend agrees on. The server
    backend ships these to the scorer and zips the returned weights
    back onto the same objects, so the caller always receives a
    distribution over its own candidates.
    """
    method, args = request.method, request.args
    if method == "clause_presence" or method == "having_presence":
        return [True, False]
    if method == "num_items":
        return list(range(1, args[1] + 1))
    if method == "logic":
        return [LogicOp.AND, LogicOp.OR]
    if method == "direction":
        return [(direction, flag)
                for direction in (Direction.ASC, Direction.DESC)
                for flag in (False, True)]
    if method in ("column", "aggregate", "comparison", "value"):
        return list(args[-1])
    if method == "limit_value":
        return list(args[0])
    raise GuidanceError(f"unknown guidance method {method!r}")


@dataclass
class AmortisationCounters:
    """What the batching layer saved, as running totals.

    The search engine snapshots these at run start and records the
    per-run deltas into telemetry (the same delta discipline the shared
    probe cache uses), so a wrapper shared across tasks never
    attributes one task's traffic to another.
    """

    #: requests entering the wrapper (scheduler batches + per-call)
    requests_in: int = 0
    #: requests actually scored by the inner model (post-dedup, post-cache)
    unique_scored: int = 0
    #: requests answered from the distribution cache
    cache_hits: int = 0
    #: inner-model invocations (batched round trips + per-call misses)
    batch_calls: int = 0

    def copy(self) -> "AmortisationCounters":
        return AmortisationCounters(requests_in=self.requests_in,
                                    unique_scored=self.unique_scored,
                                    cache_hits=self.cache_hits,
                                    batch_calls=self.batch_calls)

    def delta_since(self, earlier: "AmortisationCounters"
                    ) -> "AmortisationCounters":
        return AmortisationCounters(
            requests_in=self.requests_in - earlier.requests_in,
            unique_scored=self.unique_scored - earlier.unique_scored,
            cache_hits=self.cache_hits - earlier.cache_hits,
            batch_calls=self.batch_calls - earlier.batch_calls)


class GuidanceCache:
    """A bounded, thread-safe LRU of request key -> distribution.

    Distributions are immutable (frozen dataclasses), so handing the
    same object to many search states is safe — the scheduler already
    shares them within a round. The bound is entries, evicted least
    recently used; an over-small cache costs recomputation, never
    correctness.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_SIZE):
        if max_entries < 1:
            raise GuidanceError(
                f"guidance cache needs at least 1 entry (got {max_entries})")
        self.max_entries = max_entries
        self._entries: "OrderedDict[Tuple, Distribution]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: Tuple) -> Optional[Distribution]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Tuple, distribution: Distribution) -> None:
        with self._lock:
            self._entries[key] = distribution
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class _RequestScoringModel(GuidanceModel):
    """Routes every per-decision method through :meth:`_score_request`.

    The argument tuples below must match the ones the enumerator's
    expansion handlers build, so a per-call request and its
    scheduler-batched twin produce equal cache keys.
    """

    def _score_request(self, request: GuidanceRequest) -> Distribution:
        raise NotImplementedError

    def clause_presence(self, ctx: GuidanceContext,
                        clause: str) -> Distribution[bool]:
        return self._score_request(
            GuidanceRequest("clause_presence", ctx, (clause,)))

    def num_items(self, ctx: GuidanceContext, slot: str,
                  max_n: int) -> Distribution[int]:
        return self._score_request(
            GuidanceRequest("num_items", ctx, (slot, max_n)))

    def column(self, ctx: GuidanceContext, slot: str,
               candidates: Sequence[ColumnRef]) -> Distribution[ColumnRef]:
        return self._score_request(
            GuidanceRequest("column", ctx, (slot, tuple(candidates))))

    def aggregate(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
                  candidates: Sequence[AggOp]) -> Distribution[AggOp]:
        return self._score_request(
            GuidanceRequest("aggregate", ctx,
                            (slot, column, tuple(candidates))))

    def comparison(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
                   candidates: Sequence[CompOp]) -> Distribution[CompOp]:
        return self._score_request(
            GuidanceRequest("comparison", ctx,
                            (slot, column, tuple(candidates))))

    def logic(self, ctx: GuidanceContext) -> Distribution[LogicOp]:
        return self._score_request(GuidanceRequest("logic", ctx))

    def direction(self, ctx: GuidanceContext,
                  column: ColumnRef) -> Distribution[Tuple[Direction, bool]]:
        return self._score_request(
            GuidanceRequest("direction", ctx, (column,)))

    def having_presence(self, ctx: GuidanceContext) -> Distribution[bool]:
        return self._score_request(GuidanceRequest("having_presence", ctx))

    def value(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
              candidates: Sequence[object]) -> Distribution[object]:
        return self._score_request(
            GuidanceRequest("value", ctx,
                            (slot, column, tuple(candidates))))

    def limit_value(self, ctx: GuidanceContext,
                    candidates: Sequence[int]) -> Distribution[int]:
        return self._score_request(
            GuidanceRequest("limit_value", ctx, (tuple(candidates),)))


class BatchingGuidanceModel(_RequestScoringModel):
    """Dedup + memoise wrapper that makes ``score_batch`` amortise.

    Per batch, identical requests (equal cache keys) are scored once;
    across batches, the bounded :class:`GuidanceCache` answers repeats
    without touching the inner model at all. Per-call methods route
    through the same cache, so an ``expand_with(dist=None)`` fallback
    sees exactly the distribution a scheduled batch would have.
    """

    def __init__(self, inner: GuidanceModel,
                 cache_size: int = DEFAULT_CACHE_SIZE):
        if isinstance(inner, BatchingGuidanceModel):
            raise GuidanceError(
                "guidance model is already wrapped for batching")
        self.inner = inner
        self.name = f"batched({inner.name})"
        self.cache = GuidanceCache(cache_size)
        self.counters = AmortisationCounters()
        self._scorer_epoch = 0
        # Resolve the cache-key function once: a model that declares
        # which context fields it reads (GuidanceModel.cache_fields)
        # gets the tighter projected key, everything else the
        # conservative full-context key. Resolved here rather than per
        # request so an invalid declaration fails at wrap time.
        fields = None
        declare = getattr(inner, "cache_fields", None)
        if callable(declare):
            fields = declare()
        if fields is None:
            self._request_key = GuidanceRequest.cache_key
        else:
            fields = tuple(fields)
            unknown = [f for f in fields if f not in CACHE_FIELDS]
            if unknown:
                raise GuidanceError(
                    f"{inner.name}.cache_fields() declared unknown "
                    f"fields {unknown}; expected names from "
                    f"{CACHE_FIELDS}")
            self._request_key = \
                lambda request, _fields=fields: request.projected_key(_fields)
        self.cache_key_fields = fields

    # The server backend's degrade state shines through the wrapper so
    # the engine can read it from whatever model it was handed.
    @property
    def degraded(self) -> bool:
        return bool(getattr(self.inner, "degraded", False))

    @property
    def degrade_reason(self) -> str:
        return str(getattr(self.inner, "degrade_reason", ""))

    @property
    def reconnects(self) -> int:
        return int(getattr(self.inner, "reconnects", 0))

    def close(self) -> None:
        close_guidance(self.inner)

    # ------------------------------------------------------------------
    def _flush_on_degrade(self) -> None:
        """Drop every cached distribution whenever the inner model
        switches scorer. A degrade swaps the server's answers for the
        fallback's; a reconnect swaps them back — either way, serving
        the previous scorer's cached distributions afterwards would mix
        scorers indefinitely. The server backend counts switches in
        ``scorer_epoch``; models without one flush once on a permanent
        degrade (the legacy behaviour).
        """
        epoch = getattr(self.inner, "scorer_epoch", None)
        if epoch is None:
            epoch = 1 if self.degraded else 0
        if epoch != self._scorer_epoch:
            self._scorer_epoch = epoch
            self.cache.clear()

    def _score_request(self, request: GuidanceRequest) -> Distribution:
        self._flush_on_degrade()
        counters = self.counters
        counters.requests_in += 1
        key = self._request_key(request)
        cached = self.cache.get(key)
        if cached is not None:
            counters.cache_hits += 1
            return cached
        counters.unique_scored += 1
        counters.batch_calls += 1
        distribution = request.invoke(self.inner)
        # The degrade may have happened during this very call; flush
        # before caching so the entry stored below is the fallback's.
        self._flush_on_degrade()
        self.cache.put(key, distribution)
        return distribution

    def score_batch(self, requests: Sequence[GuidanceRequest]
                    ) -> List[Distribution]:
        self._flush_on_degrade()
        counters = self.counters
        counters.requests_in += len(requests)
        results: List[Optional[Distribution]] = [None] * len(requests)
        #: key -> positions awaiting that key's distribution, in
        #: first-occurrence order (dedup within the round)
        fresh: Dict[Tuple, List[int]] = {}
        for position, request in enumerate(requests):
            key = self._request_key(request)
            positions = fresh.get(key)
            if positions is not None:
                # An in-batch duplicate: it will be served from the
                # first occurrence's distribution, so it counts as a
                # hit — keeping requests_in == unique_scored +
                # cache_hits, which the telemetry columns rely on.
                positions.append(position)
                counters.cache_hits += 1
                continue
            cached = self.cache.get(key)
            if cached is not None:
                counters.cache_hits += 1
                results[position] = cached
            else:
                fresh[key] = [position]
        if fresh:
            unique = [requests[positions[0]]
                      for positions in fresh.values()]
            counters.unique_scored += len(unique)
            counters.batch_calls += 1
            distributions = self.inner.score_batch(unique)
            if len(distributions) != len(unique):
                raise GuidanceError(
                    f"{self.inner.name}.score_batch returned "
                    f"{len(distributions)} distributions for "
                    f"{len(unique)} requests")
            # The degrade may have happened during this very batch;
            # flush before caching so the entries stored below are the
            # fallback's answers, not the failed server's.
            self._flush_on_degrade()
            for (key, positions), distribution in zip(fresh.items(),
                                                      distributions):
                self.cache.put(key, distribution)
                for position in positions:
                    results[position] = distribution
        return results  # type: ignore[return-value]


class ServerGuidanceModel(_RequestScoringModel):
    """Scores request batches on an out-of-process scorer.

    Protocol (newline-delimited JSON over a TCP socket, one object per
    line; ``examples/guidance_server.py`` implements the other end):

    request::

        {"v": 1, "id": 7, "requests": [
            {"method": "column", "task": "t3", "nlq": "...",
             "schema": "movies", "args": ["select"],
             "candidates": ["ColumnRef(table='movie', ...)", ...]},
            ...]}

    response::

        {"id": 7, "scores": [[0.4, 1.3, ...], ...]}

    ``scores`` must align positionally with ``requests`` and each inner
    list with that request's ``candidates``; the client softmaxes the
    raw scores onto its own candidate objects
    (:meth:`Distribution.from_scores`), so only weights cross the wire.

    Degrade semantics mirror the verification pools, with a bounded
    self-heal: any connection error, timeout, or protocol violation
    logs a warning, sets :attr:`degraded`/:attr:`degrade_reason`,
    closes the socket, and routes every request — including the failed
    batch — to the local ``fallback`` model. Unlike the pools, a
    degraded server model may *reconnect*: while the reconnect budget
    (``max_reconnects``) lasts, each later batch attempts a fresh
    connection + handshake, so a long eval run survives a scorer
    restart (successful heals are counted in :attr:`reconnects` and
    surfaced as ``SearchTelemetry.guidance_reconnects``). Once the
    budget is exhausted — or the handshake reveals a protocol-version
    mismatch, which no reconnect can fix — the degrade is permanent.
    Every scorer switch (server→fallback and back) bumps
    :attr:`scorer_epoch`, which the batching wrapper watches to flush
    its distribution cache, so cached answers never mix scorers.

    On every (re)connect the client performs a **handshake**: it sends
    ``{"v": 1, "id": N, "hello": true}`` and expects
    ``{"id": N, "v": 1}`` back; a server advertising a different
    protocol version is rejected up front instead of mis-parsing score
    traffic later.
    """

    PROTOCOL_VERSION = 1

    #: Backoff between reconnect attempts. Reconnects used to fire
    #: back-to-back — three attempts burned in microseconds against a
    #: restarting scorer that needed a beat to come up. ``attempts``
    #: here only sizes the delay schedule; the bound stays
    #: ``max_reconnects``.
    RECONNECT_POLICY = RetryPolicy(attempts=DEFAULT_MAX_RECONNECTS + 1,
                                   base_delay=0.1, max_delay=2.0)

    def __init__(self, address: str, fallback: GuidanceModel,
                 timeout: float = DEFAULT_TIMEOUT,
                 max_reconnects: int = DEFAULT_MAX_RECONNECTS):
        self.address = address
        self.host, self.port = parse_server_address(address)
        self.fallback = fallback
        self.timeout = timeout
        self.name = f"server({address})"
        self.degraded = False
        self.degrade_reason = ""
        #: successful reconnects after a failure (telemetry)
        self.reconnects = 0
        #: bumped on every scorer switch (degrade or heal); the batching
        #: wrapper flushes its distribution cache when it changes
        self.scorer_epoch = 0
        self._max_reconnects = max(0, int(max_reconnects))
        self._reconnects_left = self._max_reconnects
        self._permanent = False
        #: injectable for tests (recording backoff without waiting)
        self._sleep = time.sleep
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._ids = itertools.count()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------
    def _degrade(self, reason: str) -> None:
        if not self.degraded:
            self.degraded = True
            self.degrade_reason = reason
            self.scorer_epoch += 1
            if self._permanent or self._reconnects_left <= 0:
                self._permanent = True
                logger.warning(
                    "guidance server %s unavailable (%s); degrading to "
                    "the local %s model for the rest of the run",
                    self.address, reason, self.fallback.name)
            else:
                logger.warning(
                    "guidance server %s unavailable (%s); degrading to "
                    "the local %s model (will attempt up to %d "
                    "reconnects)", self.address, reason,
                    self.fallback.name, self._reconnects_left)
        self.close()

    def _give_up(self, reason: str) -> None:
        """Make the current degrade permanent (budget spent/mismatch)."""
        if not self._permanent:
            self._permanent = True
            logger.warning(
                "guidance server %s: giving up on reconnects (%s); the "
                "local %s model serves the rest of the run",
                self.address, reason, self.fallback.name)

    def _try_reconnect(self) -> bool:
        """One bounded attempt to heal a degraded connection.

        Returns True when the server is connected and handshaken again
        (the caller then serves the batch from it); False keeps the
        batch on the fallback. Each failed attempt consumes budget; a
        protocol mismatch forfeits the rest of it.
        """
        if self._permanent:
            return False
        # Jittered exponential backoff before each attempt: a scorer
        # that just died needs a beat to restart, and back-to-back
        # attempts would burn the whole budget in microseconds.
        attempt = self._max_reconnects - self._reconnects_left
        delay = self.RECONNECT_POLICY.delay_for(attempt)
        if delay > 0:
            self._sleep(delay)
        self._reconnects_left -= 1
        try:
            with self._lock:
                self._ensure_connection()
        except ProtocolMismatch as exc:
            self.close()
            self._give_up(str(exc))
            return False
        except (OSError, ValueError, KeyError, TypeError,
                GuidanceError) as exc:
            self.close()
            if self._reconnects_left <= 0:
                self._give_up(str(exc) or type(exc).__name__)
            return False
        self.reconnects += 1
        self.degraded = False
        self.degrade_reason = ""
        self.scorer_epoch += 1
        logger.warning(
            "guidance server %s reconnected; resuming server scoring "
            "(%d reconnect attempts left)", self.address,
            self._reconnects_left)
        return True

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def _ensure_connection(self) -> None:
        if self._sock is None:
            injector = faults.ACTIVE
            if injector is not None:
                faults.fire_guidance_connect(injector)
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
            sock.settimeout(self.timeout)
            self._sock = sock
            self._reader = sock.makefile("r", encoding="utf-8")
            self._handshake()

    def _handshake(self) -> None:
        """Exchange protocol versions on a fresh connection.

        Raises :class:`ProtocolMismatch` when the server speaks a
        different version — a permanent condition — and the usual
        OSError/ValueError family for transport or format failures.
        """
        request_id = next(self._ids)
        line = json.dumps({"v": self.PROTOCOL_VERSION, "id": request_id,
                           "hello": True}) + "\n"
        assert self._sock is not None
        self._sock.sendall(line.encode("utf-8"))
        response = self._reader.readline()
        if not response:
            raise OSError("server closed the connection during handshake")
        payload = json.loads(response)
        if payload.get("id") != request_id:
            raise GuidanceError(
                f"handshake response id {payload.get('id')!r} does not "
                f"match request id {request_id}")
        version = payload.get("v")
        if version != self.PROTOCOL_VERSION:
            hint = " (a server without handshake support predates " \
                   "this client; upgrade it to one that answers " \
                   "'hello' lines)" if version is None else ""
            raise ProtocolMismatch(
                f"server speaks protocol {version!r}, this client "
                f"speaks {self.PROTOCOL_VERSION}{hint}")

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    @staticmethod
    def serialize(request: GuidanceRequest,
                  candidates: Sequence[object]) -> Dict[str, object]:
        """One request as its wire dict (see the class docstring)."""
        ctx = request.ctx
        return {
            "method": request.method,
            "task": ctx.task_id,
            "nlq": ctx.nlq.text,
            "schema": ctx.schema.name,
            "args": [repr(arg) for arg in request.args
                     if not isinstance(arg, tuple)],
            "candidates": [repr(candidate) for candidate in candidates],
        }

    # ------------------------------------------------------------------
    # Scoring
    # ------------------------------------------------------------------
    def _score_request(self, request: GuidanceRequest) -> Distribution:
        return self.score_batch([request])[0]

    def score_batch(self, requests: Sequence[GuidanceRequest]
                    ) -> List[Distribution]:
        if not requests:
            return []
        if self.degraded and not self._try_reconnect():
            return self.fallback.score_batch(requests)
        try:
            # Candidate-list construction is inside the degrade guard:
            # a request this module cannot ship (an unknown method) must
            # fall back like any other failure, not abort the run.
            candidate_lists = [request_candidates(request)
                               for request in requests]
            scores = self._round_trip(
                [self.serialize(request, candidates)
                 for request, candidates in zip(requests, candidate_lists)])
            return [self._distribution(candidates, weights)
                    for candidates, weights in zip(candidate_lists, scores)]
        except ProtocolMismatch as exc:
            # A version-incompatible peer: no reconnect can fix it, so
            # forfeit the budget and degrade for good.
            self._give_up(str(exc))
            self._degrade(str(exc))
            return self.fallback.score_batch(requests)
        except (OSError, ValueError, KeyError, TypeError,
                GuidanceError) as exc:
            # OSError covers refused connections, timeouts and resets;
            # the rest are protocol violations (bad JSON surfaces as
            # ValueError). Either way: degrade visibly, answer locally —
            # and heal on a later batch while the budget lasts.
            self._degrade(str(exc) or type(exc).__name__)
            return self.fallback.score_batch(requests)

    def _round_trip(self, serialized: List[Dict[str, object]]
                    ) -> List[List[float]]:
        with self._lock:
            self._ensure_connection()
            injector = faults.ACTIVE
            if injector is not None:
                faults.fire_guidance_transport(injector)
            request_id = next(self._ids)
            line = json.dumps({"v": self.PROTOCOL_VERSION,
                               "id": request_id,
                               "requests": serialized}) + "\n"
            assert self._sock is not None
            self._sock.sendall(line.encode("utf-8"))
            response = self._reader.readline()
        if not response:
            raise OSError("server closed the connection")
        payload = json.loads(response)
        if payload.get("id") != request_id:
            raise GuidanceError(
                f"response id {payload.get('id')!r} does not match "
                f"request id {request_id}")
        scores = payload["scores"]
        if not isinstance(scores, list) or len(scores) != len(serialized):
            raise GuidanceError(
                f"expected {len(serialized)} score lists, got "
                f"{len(scores) if isinstance(scores, list) else scores!r}")
        return scores

    @staticmethod
    def _distribution(candidates: Sequence[object],
                      weights: Sequence[object]) -> Distribution:
        if not candidates:
            return Distribution(entries=())
        if not isinstance(weights, list) or len(weights) != len(candidates):
            raise GuidanceError(
                f"expected {len(candidates)} scores per request, got "
                f"{weights!r}")
        numeric = [float(weight) for weight in weights]
        if any(weight != weight or weight in (float("inf"), float("-inf"))
               for weight in numeric):
            raise GuidanceError(f"non-finite score in {numeric!r}")
        return Distribution.from_scores(list(zip(candidates, numeric)))


def make_guidance_backend(model: GuidanceModel, *, batch: bool = False,
                          cache_size: int = DEFAULT_CACHE_SIZE,
                          server: Optional[str] = None,
                          timeout: float = DEFAULT_TIMEOUT,
                          max_reconnects: int = DEFAULT_MAX_RECONNECTS
                          ) -> GuidanceModel:
    """Wrap ``model`` per the guidance-backend configuration.

    ``server`` interposes a :class:`ServerGuidanceModel` (with ``model``
    as its degrade fallback, and ``max_reconnects`` bounding its
    self-heal attempts) and implies batching — shipping one request per
    round trip would defeat the point. Returns ``model`` unchanged when
    nothing is enabled, so callers can apply this unconditionally.
    """
    wrapped = model
    if server:
        wrapped = ServerGuidanceModel(server, fallback=wrapped,
                                      timeout=timeout,
                                      max_reconnects=max_reconnects)
    if batch or server:
        wrapped = BatchingGuidanceModel(wrapped, cache_size=cache_size)
    return wrapped


def close_guidance(model: GuidanceModel) -> None:
    """Release a guidance backend's resources (no-op for plain models)."""
    close = getattr(model, "close", None)
    if callable(close):
        close()
