"""Guidance model interface: the SyntaxSQLNet stand-in.

Section 3.3.5 of the paper states GPQE works with any NLI model that
(1) incrementally updates executable partial queries, and (2) emits a
confidence score in [0, 1] per partial query fulfilling Property 1 (child
branch scores of a state sum to the state's score).

This module defines that contract. A :class:`GuidanceModel` answers each
inference decision with a :class:`Distribution` — a normalised softmax over
the decision's output classes. The enumerator multiplies the chosen class's
probability into the running confidence score, which realises the
cumulative-product definition of Section 3.3.3 and guarantees Property 1 by
construction.

Two backends are provided: :class:`~repro.guidance.lexical.LexicalGuidanceModel`
(a real, if simple, lexical NL2SQL scorer) and
:class:`~repro.guidance.oracle.CalibratedOracleModel` (a statistically
calibrated stand-in for the trained network, used by the simulation study).
"""

from __future__ import annotations

import abc
import hashlib
import math
from dataclasses import dataclass, field
from typing import Generic, Iterable, List, Optional, Sequence, Tuple, TypeVar

from ..db.schema import Schema
from ..errors import GuidanceError
from ..nlq.literals import NLQuery
from ..sqlir.ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    Hole,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    SelectItem,
    Where,
)

T = TypeVar("T")

#: Tolerance for distribution normalisation checks.
_EPS = 1e-6


@dataclass(frozen=True)
class Distribution(Generic[T]):
    """A normalised distribution over a decision's output classes.

    Entries are ``(choice, probability)`` sorted by descending probability,
    i.e. the order in which a best-first enumerator should try them.
    """

    entries: Tuple[Tuple[T, float], ...]

    def __post_init__(self) -> None:
        total = sum(p for _, p in self.entries)
        if self.entries and abs(total - 1.0) > 1e-3:
            raise GuidanceError(
                f"distribution does not sum to 1 (got {total:.6f})")

    @classmethod
    def from_scores(cls, scores: Sequence[Tuple[T, float]],
                    temperature: float = 1.0) -> "Distribution[T]":
        """Build a distribution by softmaxing raw scores."""
        if not scores:
            return cls(entries=())
        if temperature <= 0:
            raise GuidanceError("temperature must be positive")
        maximum = max(score for _, score in scores)
        exps = [(choice, math.exp((score - maximum) / temperature))
                for choice, score in scores]
        total = sum(e for _, e in exps)
        entries = tuple(sorted(((choice, e / total) for choice, e in exps),
                               key=lambda kv: -kv[1]))
        return cls(entries=entries)

    @classmethod
    def from_probs(cls, probs: Sequence[Tuple[T, float]]) -> "Distribution[T]":
        """Build a distribution from already-normalised probabilities."""
        total = sum(p for _, p in probs)
        if total <= 0:
            raise GuidanceError("probabilities must sum to a positive value")
        entries = tuple(sorted(((c, p / total) for c, p in probs),
                               key=lambda kv: -kv[1]))
        return cls(entries=entries)

    @classmethod
    def point(cls, choice: T) -> "Distribution[T]":
        """A certain decision."""
        return cls(entries=((choice, 1.0),))

    @classmethod
    def binary(cls, true_prob: float) -> "Distribution[bool]":
        """A yes/no decision with P(True) = ``true_prob``."""
        true_prob = min(max(true_prob, 0.0), 1.0)
        return Distribution(entries=tuple(sorted(
            ((True, true_prob), (False, 1.0 - true_prob)),
            key=lambda kv: -kv[1])))

    def __iter__(self):
        return iter(self.entries)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def top(self) -> T:
        if not self.entries:
            raise GuidanceError("empty distribution has no top choice")
        return self.entries[0][0]

    def prob_of(self, choice: T) -> float:
        for entry_choice, prob in self.entries:
            if entry_choice == choice:
                return prob
        return 0.0

    def rank_of(self, choice: T) -> Optional[int]:
        """0-based rank of ``choice``; ``None`` when absent."""
        for rank, (entry_choice, _) in enumerate(self.entries):
            if entry_choice == choice:
                return rank
        return None

    def restrict(self, allowed: Iterable[T]) -> "Distribution[T]":
        """Renormalise over an allowed subset of choices."""
        allowed_set = set(allowed)
        kept = [(c, p) for c, p in self.entries if c in allowed_set]
        if not kept:
            raise GuidanceError("restriction removed every choice")
        return Distribution.from_probs(kept)


@dataclass
class GuidanceContext:
    """Inputs available to every guidance decision.

    Mirrors the module inputs of SyntaxSQLNet (Section 3.3.1): the NLQ
    ``N``, the partial query ``p`` synthesised so far, and the database
    schema ``D``. ``gold`` and ``task_id`` are consumed only by the
    calibrated oracle backend (they stand in for what the trained network
    learned); real backends must ignore them.
    """

    nlq: NLQuery
    schema: Schema
    partial: Optional[Query] = None
    gold: Optional[Query] = None
    task_id: str = ""

    def with_partial(self, partial: Query) -> "GuidanceContext":
        return GuidanceContext(nlq=self.nlq, schema=self.schema,
                               partial=partial, gold=self.gold,
                               task_id=self.task_id)


@dataclass(frozen=True)
class GuidanceRequest:
    """One pending inference decision, reified for batch scoring.

    The search scheduler collects every decision of an expansion round
    into a list of requests and scores them through a single
    :meth:`GuidanceModel.score_batch` call, so backends that amortise
    per-call overhead (a batched neural network, an RPC model server)
    can answer all of them in one shot. ``method`` names the
    :class:`GuidanceModel` method to invoke; ``args`` are its positional
    arguments after the context.
    """

    method: str
    ctx: GuidanceContext
    args: Tuple[object, ...] = ()

    def invoke(self, model: "GuidanceModel") -> "Distribution":
        return getattr(model, self.method)(self.ctx, *self.args)

    def cache_key(self) -> Tuple:
        """A stable, hashable key identifying this decision's inputs.

        Two requests with equal keys are guaranteed to see the same
        model inputs — the method, its arguments, and every field of the
        :class:`GuidanceContext` (the context object itself is mutable
        and therefore unhashable, so the key is built from its frozen
        fields). A deterministic model must answer them identically,
        which is what lets :class:`~repro.guidance.batched.GuidanceCache`
        memoise distributions across scoring rounds without perturbing
        the candidate stream. The key is conservative: it includes the
        full partial query and a structural schema fingerprint (name
        alone would collide across same-named schemas), so a model that
        ignores parts of the context simply gets fewer cache hits,
        never wrong ones. Models that declare what they actually read
        (:meth:`GuidanceModel.cache_fields`) get the tighter
        :meth:`projected_key` instead.
        """
        ctx = self.ctx
        return (self.method, ctx.task_id, _schema_fingerprint(ctx.schema),
                ctx.nlq, ctx.gold, ctx.partial, self.args)

    def decision_prefix(self) -> object:
        """The slice of the partial query this decision type can read.

        Sequential set decisions depend on the partial only through the
        already-picked elements of their own slot: ``column`` sees the
        picked columns of ``slot`` (their identity matters — gold
        tracking compares the prefix against the gold order), and
        ``comparison``/``value`` see how many predicates on ``column``
        are already complete. Every other decision type is
        partial-independent. This is what the ``decision_prefix`` cache
        field projects the full partial query down to.
        """
        if self.method == "column":
            return tuple(picked_columns(self.ctx.partial, self.args[0]))
        if self.method in ("comparison", "value"):
            return partial_pred_index(self.ctx.partial, self.args[0],
                                      self.args[1])
        return ()

    def projected_key(self, fields: Sequence[str]) -> Tuple:
        """A cache key over only the declared context ``fields``.

        The method name and its arguments are always part of the key;
        ``fields`` (from :meth:`GuidanceModel.cache_fields`) selects
        which context inputs join them. Requests equal under a sound
        projection see identical model-visible inputs, so distributions
        cached under projected keys are exact — the projection only
        *merges* entries the conservative key kept apart (e.g. the same
        decision reached through different NLQs or partial shapes),
        raising hits without perturbing the stream.
        """
        ctx = self.ctx
        parts: List[object] = [self.method, self.args]
        for name in fields:
            if name == "task_id":
                parts.append(ctx.task_id)
            elif name == "schema":
                parts.append(_schema_fingerprint(ctx.schema))
            elif name == "nlq":
                parts.append(ctx.nlq)
            elif name == "gold":
                parts.append(ctx.gold)
            elif name == "partial":
                parts.append(ctx.partial)
            elif name == "decision_prefix":
                parts.append(self.decision_prefix())
            else:
                raise GuidanceError(
                    f"unknown guidance cache field {name!r}; expected one "
                    f"of {sorted(CACHE_FIELDS)}")
        return tuple(parts)


#: Field names a model may declare via :meth:`GuidanceModel.cache_fields`.
CACHE_FIELDS = ("task_id", "schema", "nlq", "gold", "partial",
                "decision_prefix")


def picked_columns(partial: Optional[Query],
                   slot: str) -> List[ColumnRef]:
    """Columns already fixed for ``slot`` in the partial query.

    Shared by the calibrated oracle's gold tracking and the
    ``decision_prefix`` cache-key projection, so the two can never
    disagree about what a sequential column pick has seen.
    """
    if partial is None:
        return []
    refs: List[ColumnRef] = []
    if slot == "select" and not isinstance(partial.select, Hole):
        refs = [item.column for item in partial.select
                if isinstance(item, SelectItem)
                and isinstance(item.column, ColumnRef)]
    elif slot == "where" and isinstance(partial.where, Where):
        refs = [pred.column for pred in partial.where.predicates
                if isinstance(pred, Predicate)
                and isinstance(pred.column, ColumnRef)]
    elif slot == "group_by" and partial.group_by is not None \
            and not isinstance(partial.group_by, Hole):
        refs = [c for c in partial.group_by if isinstance(c, ColumnRef)]
    elif slot == "having" and partial.having is not None \
            and not isinstance(partial.having, Hole):
        refs = [pred.column for pred in partial.having
                if isinstance(pred, Predicate)
                and isinstance(pred.column, ColumnRef)]
    elif slot == "order_by" and partial.order_by is not None \
            and not isinstance(partial.order_by, Hole):
        refs = [item.column for item in partial.order_by
                if isinstance(item, OrderItem)
                and isinstance(item.column, ColumnRef)]
    return refs


def partial_pred_index(partial: Optional[Query], slot: str,
                       column: ColumnRef) -> int:
    """How many predicates on ``column`` are already complete."""
    if partial is None:
        return 0
    preds: Sequence[object] = ()
    if slot == "where" and isinstance(partial.where, Where):
        preds = partial.where.predicates
    elif slot == "having" and partial.having is not None \
            and not isinstance(partial.having, Hole):
        preds = partial.having
    count = 0
    for pred in preds:
        if isinstance(pred, Predicate) and pred.column == column \
                and pred.is_complete:
            count += 1
    return count


def _schema_fingerprint(schema: Schema) -> str:
    """A content digest identifying a schema for guidance-cache keys.

    The schema name alone is not enough — two databases may share a
    name yet differ structurally, and a model like the lexical backend
    reads the structure (and the display names) when scoring. The
    digest covers both, and is memoised on the schema object so the
    per-request cost is one attribute read.
    """
    fingerprint = getattr(schema, "_guidance_fingerprint", None)
    if fingerprint is None:
        digest = hashlib.sha256()
        for statement in schema.ddl():
            digest.update(statement.encode("utf-8"))
            digest.update(b"\x00")
        digest.update(repr(sorted(schema.display_names.items()))
                      .encode("utf-8"))
        fingerprint = f"{schema.name}:{digest.hexdigest()[:16]}"
        schema._guidance_fingerprint = fingerprint
    return fingerprint


#: Slot names used to tell the model which clause a decision belongs to.
SLOT_SELECT = "select"
SLOT_WHERE = "where"
SLOT_GROUP_BY = "group_by"
SLOT_HAVING = "having"
SLOT_ORDER_BY = "order_by"

ALL_SLOTS = (SLOT_SELECT, SLOT_WHERE, SLOT_GROUP_BY, SLOT_HAVING,
             SLOT_ORDER_BY)


class GuidanceModel(abc.ABC):
    """Abstract modular guidance model (one method per decision type).

    Set-valued modules (Table 3 reports "Set" output cardinality for KW,
    COL, OP and AGG) are decomposed into a size decision
    (:meth:`num_items`) followed by sequential element picks, matching
    SyntaxSQLNet's three-step set decision of Section 3.3.1. Because every
    method returns a normalised distribution, cumulative products of the
    returned probabilities satisfy Property 1.
    """

    name = "guidance"

    def cache_fields(self) -> Optional[Tuple[str, ...]]:
        """Context fields this model's decisions depend on, or ``None``.

        ``None`` (the default) means "assume everything": the batching
        layer keys its distribution cache with the conservative
        :meth:`GuidanceRequest.cache_key`, which is always correct. A
        model that provably reads only part of the context may return a
        tuple of :data:`CACHE_FIELDS` names; the batching layer then
        keys with :meth:`GuidanceRequest.projected_key`, merging cache
        entries the conservative key kept apart and raising hits. The
        declaration is a *soundness contract*: every input that can
        change any decision's distribution must be listed, or cached
        answers would leak across genuinely different decisions.
        """
        return None

    # -- KW module -----------------------------------------------------
    @abc.abstractmethod
    def clause_presence(self, ctx: GuidanceContext,
                        clause: str) -> Distribution[bool]:
        """Is ``clause`` (where/group_by/order_by) present in the query?"""

    # -- set-size classifier --------------------------------------------
    @abc.abstractmethod
    def num_items(self, ctx: GuidanceContext, slot: str,
                  max_n: int) -> Distribution[int]:
        """How many elements does ``slot`` contain (1..max_n)?"""

    # -- COL module ------------------------------------------------------
    @abc.abstractmethod
    def column(self, ctx: GuidanceContext, slot: str,
               candidates: Sequence[ColumnRef]) -> Distribution[ColumnRef]:
        """Which schema column fills the next hole of ``slot``?"""

    # -- AGG module ------------------------------------------------------
    @abc.abstractmethod
    def aggregate(self, ctx: GuidanceContext, slot: str,
                  column: ColumnRef,
                  candidates: Sequence[AggOp]) -> Distribution[AggOp]:
        """Which aggregate (or none) applies to ``column`` in ``slot``?"""

    # -- OP module ---------------------------------------------------------
    @abc.abstractmethod
    def comparison(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
                   candidates: Sequence[CompOp]) -> Distribution[CompOp]:
        """Which comparison operator applies to a predicate on ``column``?"""

    # -- AND/OR module ----------------------------------------------------
    @abc.abstractmethod
    def logic(self, ctx: GuidanceContext) -> Distribution[LogicOp]:
        """The logical connective of the WHERE clause."""

    # -- DESC/ASC module ---------------------------------------------------
    @abc.abstractmethod
    def direction(self, ctx: GuidanceContext,
                  column: ColumnRef) -> Distribution[Tuple[Direction, bool]]:
        """ORDER BY direction and whether a LIMIT is present."""

    # -- HAVING module ------------------------------------------------------
    @abc.abstractmethod
    def having_presence(self, ctx: GuidanceContext) -> Distribution[bool]:
        """Does the query include a HAVING clause?"""

    # -- value assignment ---------------------------------------------------
    @abc.abstractmethod
    def value(self, ctx: GuidanceContext, slot: str, column: ColumnRef,
              candidates: Sequence[object]) -> Distribution[object]:
        """Which literal value fills a predicate on ``column``?"""

    @abc.abstractmethod
    def limit_value(self, ctx: GuidanceContext,
                    candidates: Sequence[int]) -> Distribution[int]:
        """The LIMIT row count."""

    # -- batch scoring -----------------------------------------------------
    def score_batch(self, requests: Sequence[GuidanceRequest]
                    ) -> List[Distribution]:
        """Score a batch of decisions in one call.

        The default implementation falls back to per-call scoring, so
        every existing backend keeps working unmodified. Backends with
        per-call overhead (network inference, RPC) should override this
        to answer all requests in a single round trip. Results must be
        positionally aligned with ``requests``, and each entry must be
        identical to what the per-call method would have returned —
        the search engine relies on that for deterministic replay.
        """
        return [request.invoke(self) for request in requests]
