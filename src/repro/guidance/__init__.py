"""Guidance models: the modular SyntaxSQLNet stand-in used by GPQE."""

from .base import (
    ALL_SLOTS,
    Distribution,
    GuidanceContext,
    GuidanceModel,
    GuidanceRequest,
    SLOT_GROUP_BY,
    SLOT_HAVING,
    SLOT_ORDER_BY,
    SLOT_SELECT,
    SLOT_WHERE,
)
from .batched import (
    AmortisationCounters,
    BatchingGuidanceModel,
    GuidanceCache,
    ServerGuidanceModel,
    close_guidance,
    make_guidance_backend,
    parse_server_address,
    request_candidates,
)
from .lexical import LexicalGuidanceModel
from .modules import MODULES, ModuleInfo, module_by_name
from .oracle import AccuracyProfile, CalibratedOracleModel

__all__ = [
    "ALL_SLOTS",
    "AccuracyProfile",
    "AmortisationCounters",
    "BatchingGuidanceModel",
    "CalibratedOracleModel",
    "Distribution",
    "GuidanceCache",
    "ServerGuidanceModel",
    "GuidanceContext",
    "GuidanceModel",
    "GuidanceRequest",
    "LexicalGuidanceModel",
    "MODULES",
    "ModuleInfo",
    "SLOT_GROUP_BY",
    "SLOT_HAVING",
    "SLOT_ORDER_BY",
    "SLOT_SELECT",
    "SLOT_WHERE",
    "close_guidance",
    "make_guidance_backend",
    "module_by_name",
    "parse_server_address",
    "request_candidates",
]
