"""Guidance models: the modular SyntaxSQLNet stand-in used by GPQE."""

from .base import (
    ALL_SLOTS,
    Distribution,
    GuidanceContext,
    GuidanceModel,
    GuidanceRequest,
    SLOT_GROUP_BY,
    SLOT_HAVING,
    SLOT_ORDER_BY,
    SLOT_SELECT,
    SLOT_WHERE,
)
from .lexical import LexicalGuidanceModel
from .modules import MODULES, ModuleInfo, module_by_name
from .oracle import AccuracyProfile, CalibratedOracleModel

__all__ = [
    "ALL_SLOTS",
    "AccuracyProfile",
    "CalibratedOracleModel",
    "Distribution",
    "GuidanceContext",
    "GuidanceModel",
    "GuidanceRequest",
    "LexicalGuidanceModel",
    "MODULES",
    "ModuleInfo",
    "SLOT_GROUP_BY",
    "SLOT_HAVING",
    "SLOT_ORDER_BY",
    "SLOT_SELECT",
    "SLOT_WHERE",
    "module_by_name",
]
