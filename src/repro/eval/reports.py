"""Report printers: regenerate every table and figure of the paper.

Each ``*_report`` function takes the records produced by
:mod:`repro.eval.harness` and returns the corresponding table as a
formatted string (the CLI prints these; benchmarks record them). The
mapping to the paper:

* :func:`table1_report` — system capability matrix (Table 1)
* :func:`table3_report` — guidance modules (Table 3)
* :func:`table5_report` — dataset statistics (Table 5)
* :func:`table6_report` — accuracy by TSQ detail level (Table 6)
* :func:`user_study_success_report` / :func:`user_study_time_report` /
  :func:`user_study_examples_report` — the user studies (Figures 5-9)
* :func:`fig10_report` / :func:`fig11_report` — simulation accuracy,
  overall and by difficulty (Figures 10/11)
* :func:`fig12_report` — the GPQE ablation completion curves (Figure 12)

:func:`search_report` is the one non-paper table: per-stage engine
telemetry, including the cache-reuse columns (``XTaskHit`` for
within-run cross-task hits, ``WarmStart`` for disk-backed warm starts).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Sequence, Tuple

from ..datasets.tasks import Difficulty, TaskSet
from ..guidance.modules import MODULES
from ..interaction.simulated_user import TrialRecord
from .metrics import (
    SimTaskRecord,
    completion_curve,
    correct_counts,
    format_table,
    mean,
    pct,
    std_error,
    top_k_accuracy,
    unsupported_counts,
)

# ----------------------------------------------------------------------
# Table 1 — capability matrix
# ----------------------------------------------------------------------
#: (system, soundness, join, selection, grouping, NS, PT, OW)
CAPABILITY_MATRIX: Tuple[Tuple[str, str, str, str, str, str, str, str], ...] = (
    ("NLIs",     " ", "y", "y", "y", "y", "-", "-"),
    ("QBE",      "y", "y", "y", " ", " ", "y", "y"),
    ("MWeaver",  "y", "y", " ", " ", "y", "y", " "),
    ("S4",       "y", "y", " ", " ", "y", "y", "y"),
    ("SQuID",    "y", "y", "y", "y", "y", "y", "y"),
    ("TALOS",    "y", "y", "y", "y", " ", " ", "y"),
    ("QFE",      "y", "y", "y", " ", " ", " ", " "),
    ("PALEO",    "y", " ", "y", "y", " ", " ", " "),
    ("Scythe",   "y", "y", "y", "y", " ", " ", " "),
    ("REGAL+",   "y", "y", "y", "y", "y", " ", " "),
    ("Duoquest", "y", "y", "y", "y", "y", "y", "y"),
)


def table1_report() -> str:
    """Table 1: which related systems support which query features."""
    headers = ("System", "Soundness", "Join", "Sel", "Group", "NS", "PT",
               "OW")
    return ("Table 1: system capabilities (y = supported)\n"
            + format_table(headers, CAPABILITY_MATRIX))


# ----------------------------------------------------------------------
# Table 3 — guidance modules
# ----------------------------------------------------------------------
def table3_report() -> str:
    """Table 3: the guidance modules and their GuidanceModel methods."""
    rows = [(m.name, m.responsibility, m.output, m.method) for m in MODULES]
    return ("Table 3: guidance modules\n"
            + format_table(("Module", "Responsibility", "Output",
                            "GuidanceModel method"), rows))


# ----------------------------------------------------------------------
# Table 5 — dataset statistics
# ----------------------------------------------------------------------
def table5_report(task_sets: Sequence[TaskSet]) -> str:
    """Table 5: per-dataset task counts and schema statistics."""
    rows = []
    for task_set in task_sets:
        counts = task_set.counts()
        tables, columns, fks = task_set.schema_stats()
        rows.append((task_set.name, len(task_set.databases),
                     counts[Difficulty.EASY], counts[Difficulty.MEDIUM],
                     counts[Difficulty.HARD], len(task_set),
                     f"{tables:.1f}", f"{columns:.1f}", f"{fks:.1f}"))
    headers = ("Dataset", "DBs", "Easy", "Med", "Hard", "Total",
               "Tables", "Columns", "FK-PK")
    return "Table 5: datasets\n" + format_table(headers, rows)


# ----------------------------------------------------------------------
# Figures 5-9 — user studies
# ----------------------------------------------------------------------
def _trials_by(trials: Sequence[TrialRecord]
               ) -> Dict[Tuple[str, str], List[TrialRecord]]:
    grouped: Dict[Tuple[str, str], List[TrialRecord]] = defaultdict(list)
    for trial in trials:
        grouped[(trial.task_id, trial.system)].append(trial)
    return grouped


def user_study_success_report(trials: Sequence[TrialRecord],
                              systems: Sequence[str],
                              title: str) -> str:
    """Figures 5 and 7: % successful trials per task and system."""
    grouped = _trials_by(trials)
    task_ids = sorted({t.task_id for t in trials})
    rows = []
    for task_id in task_ids:
        row: List[object] = [task_id]
        for system in systems:
            bucket = grouped.get((task_id, system), [])
            if bucket:
                rate = 100.0 * sum(t.success for t in bucket) / len(bucket)
                row.append(f"{rate:.0f}%")
            else:
                row.append("-")
        rows.append(tuple(row))
    overall: List[object] = ["ALL"]
    for system in systems:
        bucket = [t for t in trials if t.system == system]
        rate = 100.0 * sum(t.success for t in bucket) / len(bucket) \
            if bucket else 0.0
        overall.append(f"{rate:.0f}%")
    rows.append(tuple(overall))
    return title + "\n" + format_table(("Task", *systems), rows)


def user_study_time_report(trials: Sequence[TrialRecord],
                           systems: Sequence[str], title: str) -> str:
    """Figures 6 and 8: mean time per task for successful trials."""
    grouped = _trials_by(trials)
    task_ids = sorted({t.task_id for t in trials})
    rows = []
    for task_id in task_ids:
        row: List[object] = [task_id]
        for system in systems:
            good = [t.duration for t in grouped.get((task_id, system), [])
                    if t.success]
            if good:
                row.append(f"{mean(good):.0f}s +-{std_error(good):.0f}")
            else:
                row.append("-")
        rows.append(tuple(row))
    return title + "\n" + format_table(("Task", *systems), rows)


def user_study_examples_report(trials: Sequence[TrialRecord],
                               systems: Sequence[str], title: str) -> str:
    """Figure 9: mean # examples per task for successful trials."""
    grouped = _trials_by(trials)
    task_ids = sorted({t.task_id for t in trials})
    rows = []
    for task_id in task_ids:
        row: List[object] = [task_id]
        for system in systems:
            good = [t.num_examples
                    for t in grouped.get((task_id, system), [])
                    if t.success]
            row.append(f"{mean(good):.1f}" if good else "-")
        rows.append(tuple(row))
    return title + "\n" + format_table(("Task", *systems), rows)


# ----------------------------------------------------------------------
# Figure 10 — simulation accuracy
# ----------------------------------------------------------------------
def fig10_report(records: Sequence[SimTaskRecord], split: str) -> str:
    """Figure 10: top-k accuracy per system (correct/unsupported for
    the PBE baseline, which returns one query or none)."""
    rows = []
    for system in ("Duoquest", "NLI"):
        bucket = [r for r in records if r.system == system]
        if not bucket:
            continue
        top1_n, top1_p = top_k_accuracy(bucket, 1)
        top10_n, top10_p = top_k_accuracy(bucket, 10)
        rows.append((system, top1_n, pct(top1_p), top10_n, pct(top10_p),
                     "-", "-", 0, "0.0"))
    pbe = [r for r in records if r.system == "PBE"]
    if pbe:
        correct_n, correct_p = correct_counts(pbe)
        unsupported_n, unsupported_p = unsupported_counts(pbe)
        rows.append(("PBE", "-", "-", "-", "-", correct_n, pct(correct_p),
                     unsupported_n, pct(unsupported_p)))
    total = len({r.task_id for r in records})
    headers = ("System", "Top1#", "Top1%", "Top10#", "Top10%", "Corr#",
               "Corr%", "Unsupp#", "Unsupp%")
    return (f"Figure 10 ({split}, {total} tasks)\n"
            + format_table(headers, rows))


# ----------------------------------------------------------------------
# Figure 11 — breakdown by difficulty
# ----------------------------------------------------------------------
def fig11_report(records: Sequence[SimTaskRecord], split: str) -> str:
    """Figure 11: the Figure 10 metrics broken down by task difficulty."""
    rows = []
    difficulties = ("easy", "medium", "hard")
    for system in ("Duoquest", "NLI", "PBE"):
        row: List[object] = [system]
        for difficulty in difficulties:
            bucket = [r for r in records
                      if r.system == system and r.difficulty == difficulty]
            if not bucket:
                row.extend(("-", "-", "-"))
                continue
            if system == "PBE":
                hits, proportion = correct_counts(bucket)
                unsupported_n, _ = unsupported_counts(bucket)
            else:
                hits, proportion = top_k_accuracy(bucket, 10)
                unsupported_n = 0
            row.extend((hits, pct(proportion), unsupported_n))
        rows.append(tuple(row))
    headers = ("System",
               "E#", "E%", "EU#", "M#", "M%", "MU#", "H#", "H%", "HU#")
    return (f"Figure 11 ({split}; top-10 for Dq/NLI, correct for PBE)\n"
            + format_table(headers, rows))


# ----------------------------------------------------------------------
# Figure 12 — ablations
# ----------------------------------------------------------------------
def fig12_report(records: Sequence[SimTaskRecord],
                 grid: Sequence[float]) -> str:
    """Figure 12: % of tasks solved by time t, per GPQE ablation."""
    rows = []
    for variant in ("Duoquest", "NoPQ", "NoGuide"):
        bucket = [r for r in records if r.system == variant]
        if not bucket:
            continue
        curve = completion_curve(bucket, grid)
        rows.append((variant, *(f"{v:.1f}" for v in curve)))
    headers = ("Variant", *(f"t={g:g}s" for g in grid))
    return ("Figure 12: % tasks whose gold query was synthesized by time t\n"
            + format_table(headers, rows))


# ----------------------------------------------------------------------
# Search telemetry (per-stage engine instrumentation, not a paper table)
# ----------------------------------------------------------------------
def search_report(records: Sequence[SimTaskRecord],
                  title: str = "Search telemetry") -> str:
    """Aggregate per-stage search telemetry across GPQE task records.

    One row per (system, engine, verify backend, workers) group:
    expansions, states generated, candidates emitted, prunes per
    verifier stage, probe cache hit rate, cache-reuse counters, guidance
    batching ratio, and wall time. The two reuse columns split where
    cached probe answers came from: ``XTaskHit`` counts hits on entries
    cached by *earlier* tasks of the same run (PR 2's cross-task
    sharing), ``WarmStart`` hits on entries loaded from a ``--cache-dir``
    disk store — an earlier *process* entirely. ``PlanHit`` counts
    probes served by an already-compiled parameterised plan when the
    probe planner is on (``--probe-planner plan|batch|fuse``; 0
    otherwise); ``FuseGrp`` counts the grouped single-scan statements
    the ``fuse`` mode executed (0 in every other mode).
    ``CostAbort`` counts candidates deferred by the cost-propagated
    abort cascade (``--cost-order abort``; 0 in every other mode).
    The three memory columns watch the bounded-cache mode
    (``--probe-cache-entries``; all 0/level-only when unbounded):
    ``CacheEnt`` is the *largest* end-of-run entry count any task in the
    group observed — a level, which is what proves the bound holds —
    while ``Evict`` and ``Flushed`` total the entries the LRU bound
    dropped and the evicted entries persisted to the ``--cache-dir``
    store. The two guidance columns
    measure the batching layer: ``GuideCalls`` is what the underlying
    model actually scored (equal to the request count when
    ``--guidance-batch`` is off), ``GuideHits`` what the distribution
    cache answered instead.
    """
    grouped: Dict[Tuple[str, str, str, int], List[Dict[str, object]]] = \
        defaultdict(list)
    for record in records:
        if record.telemetry is None:
            continue
        key = (record.system, str(record.telemetry.get("engine", "?")),
               str(record.telemetry.get("verify_backend", "threads")),
               int(record.telemetry.get("workers", 1)))
        grouped[key].append(record.telemetry)

    stage_names: List[str] = []
    for bucket in grouped.values():
        for telemetry in bucket:
            for stage in telemetry.get("prunes_by_stage", {}):
                if stage not in stage_names:
                    stage_names.append(stage)
    stage_names.sort()

    rows = []
    for (system, engine, backend, workers), bucket in \
            sorted(grouped.items()):
        def total(field: str) -> int:
            return sum(int(t.get(field, 0)) for t in bucket)

        hits, misses = total("probe_hits"), total("probe_misses")
        probes = hits + misses
        cross = total("cross_task_probe_hits")
        warm = total("warm_start_probe_hits")
        plan_hits = total("probe_plan_hits")
        fused_groups = total("probe_fused_groups")
        cost_aborts = total("cost_aborts")
        cache_entries = max(
            (int(t.get("probe_cache_entries", 0)) for t in bucket),
            default=0)
        evictions = total("probe_cache_evictions")
        evicted_flushed = total("evicted_flushed")
        calls, batches = total("guidance_calls"), total("guidance_batches")
        guide_calls = total("guide_calls")
        guide_hits = total("guide_hits")
        wall = sum(float(t.get("wall_time", 0.0)) for t in bucket)
        row: List[object] = [
            system, engine, backend, workers, total("expansions"),
            total("generated"), total("emitted"),
            f"{100.0 * hits / probes:.1f}%" if probes else "-",
            cross,
            warm,
            plan_hits,
            fused_groups,
            cost_aborts,
            cache_entries,
            evictions,
            evicted_flushed,
            f"{calls / batches:.1f}" if batches else "-",
            guide_calls,
            guide_hits,
            f"{wall:.2f}s",
        ]
        for stage in stage_names:
            row.append(sum(int(t.get("prunes_by_stage", {}).get(stage, 0))
                           for t in bucket))
        rows.append(tuple(row))

    headers = ("System", "Engine", "Verify", "W", "Expand", "Gen", "Emit",
               "Cache%", "XTaskHit", "WarmStart", "PlanHit", "FuseGrp",
               "CostAbort", "CacheEnt", "Evict", "Flushed",
               "Calls/Batch",
               "GuideCalls", "GuideHits", "Wall",
               *(f"prune:{s}" for s in stage_names))
    return title + "\n" + format_table(headers, rows)


# ----------------------------------------------------------------------
# Table 6 — TSQ detail sweep
# ----------------------------------------------------------------------
def table6_report(detail_records: Sequence[SimTaskRecord],
                  nli_records: Sequence[SimTaskRecord],
                  split: str) -> str:
    """Table 6: accuracy as the TSQ detail level varies (vs. NLI)."""
    rows = []
    for detail in ("full", "partial", "minimal"):
        bucket = [r for r in detail_records if r.detail == detail]
        if not bucket:
            continue
        row = (detail.capitalize(),
               pct(top_k_accuracy(bucket, 1)[1]),
               pct(top_k_accuracy(bucket, 10)[1]),
               pct(top_k_accuracy(bucket, 100)[1]))
        rows.append(row)
    nli = [r for r in nli_records if r.system == "NLI"]
    if nli:
        rows.append(("NLI",
                     pct(top_k_accuracy(nli, 1)[1]),
                     pct(top_k_accuracy(nli, 10)[1]),
                     pct(top_k_accuracy(nli, 100)[1])))
    headers = ("Detail", "Top-1", "Top-10", "Top-100")
    return (f"Table 6 ({split}): accuracy by TSQ detail\n"
            + format_table(headers, rows))
