"""Experiment harness: runs the paper's evaluations end to end.

Covers the simulation study (Figures 10-12, Table 6) and the two user
studies (Figures 5-9). Each ``run_*`` function returns plain record lists
that :mod:`repro.eval.reports` formats into the paper's tables and
figures.

The amortisation layers that make repeated evaluation cheap — probe
caches shared (and disk-persisted) per database, warm verification
pools leased from the process-wide manager, one batching guidance
wrapper per run — live in :mod:`repro.serve.context`; each ``run_*``
call builds one :class:`~repro.serve.context.ServiceContext` and leases
everything from it, exactly as the synthesis daemon does for its
lifetime. :class:`ProbeCacheRegistry` and :func:`shared_pool_manager`
are re-exported here for backwards compatibility.

Neither layer changes results: probe answers are facts of the database
and verification outcomes are folded back identically, so the candidate
stream stays bit-for-bit equal to a cold inline run (locked in by
``tests/core/test_search_equivalence.py``). Warm-start reuse is
observable only in telemetry (``warm_start_probe_hits``,
``cross_task_probe_hits``, ``pool_reused``) and in wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from ..baselines.ablations import ABLATION_VARIANTS
from ..baselines.nli import NLIBaseline
from ..baselines.squid import SquidPBE
from ..core.duoquest import Duoquest
from ..core.enumerator import EnumeratorConfig
from ..core.search import PoolManager
from ..core.tsq import TableSketchQuery
from ..datasets.facts import build_fact_bank
from ..datasets.tasks import Task, TaskSet
from ..datasets.tsqsynth import (
    DETAIL_FULL,
    DETAIL_MINIMAL,
    example_values,
    synthesize_tsq,
)
from ..datasets.usertasks import NLI_TASK_SPECS, PBE_TASK_SPECS
from ..db.database import Database
from ..errors import UnsupportedTaskError
from ..guidance.base import GuidanceModel
from ..guidance.batched import make_guidance_backend
from ..guidance.oracle import AccuracyProfile, CalibratedOracleModel
from ..interaction.simulated_user import (
    TrialRecord,
    UserProfile,
    UserSimulator,
    make_cohort,
)
from ..serve.context import (
    ProbeCacheRegistry,
    ServiceContext,
    shared_pool_manager,
)
from ..sqlir.canon import queries_equal, signature
from .metrics import SimTaskRecord


@dataclass
class SimulationConfig:
    """Knobs for the simulation study.

    The paper uses a 60-second per-task timeout; the default here is
    smaller because the calibrated-model enumerator solves or exhausts
    tasks in well under a second — pass ``timeout=60`` for a paper-scale
    run.
    """

    timeout: float = 8.0
    max_candidates: int = 200
    max_expansions: int = 40_000
    seed: int = 0
    profile: AccuracyProfile = field(default_factory=AccuracyProfile)
    #: search engine selection (see repro.core.search): strategy name,
    #: verification workers + backend, and beam width for beam engines
    engine: str = "best-first"
    workers: int = 1
    verify_backend: str = "threads"
    beam_width: int = 16
    #: share one probe cache per database across every enumeration of a
    #: run, so later tasks reuse earlier tasks' probe answers. Probe
    #: answers are facts of the database, so results never change; but
    #: whichever system/variant runs *first* on a database pays the cold
    #: probes, so for strictly-controlled wall-clock comparisons between
    #: systems (fig10-12 timing columns) disable sharing.
    share_probe_cache: bool = True
    #: directory for the disk-backed probe-cache store (the CLI's
    #: ``--cache-dir``). When set, the per-database caches above are
    #: warm-seeded from disk at the start of a run and persisted at the
    #: end, keyed by ``Database.content_hash()`` — so repeated eval runs
    #: on the same corpus warm-start across processes. Requires
    #: ``share_probe_cache`` (persistence piggybacks on the per-database
    #: caches); ``None`` disables persistence.
    cache_dir: Optional[str] = None
    #: lease verification workers from the process-wide
    #: :func:`shared_pool_manager` instead of spawning a pool per
    #: enumeration. Only engages when the configuration can benefit
    #: (``verify_backend="processes"`` and ``workers > 1``); disable to
    #: force per-enumeration pools (e.g. to benchmark spawn cost).
    persistent_pool: bool = True
    #: wrap the guidance model in a
    #: :class:`~repro.guidance.batched.BatchingGuidanceModel` shared by
    #: every enumeration of the run — the harness runs many systems and
    #: variants over identical decisions, so the distribution cache
    #: amortises across tasks (the ``GuideHits`` column). Results never
    #: change (locked in by the equivalence matrix).
    guidance_batch: bool = False
    #: bound (entries) for the shared guidance distribution cache
    guidance_cache_size: int = 4096
    #: HOST:PORT of an out-of-process guidance scorer (the CLI's
    #: ``--guidance-server``); implies ``guidance_batch``. A failing
    #: server degrades visibly to the local oracle
    #: (``guidance_degraded`` in telemetry), never silently.
    guidance_server: Optional[str] = None
    #: probe-planner mode (the CLI's ``--probe-planner``): "off" keeps
    #: the raw-SQL probe path, "plan" compiles probes into shared
    #: parameterised plans with canonical cache keys, "batch"
    #: additionally fuses each verification round's sibling probes into
    #: multi-probe statements. Results never change (probe answers are
    #: facts of the database); the ``PlanHit`` column of
    #: ``search_report`` measures the reuse.
    probe_planner: str = "off"
    #: cost-aware verification scheduling (the CLI's ``--cost-order``):
    #: "off" keeps the seed-identical candidate stream, "order" verifies
    #: each round cheapest-first (same final answer set, never more
    #: executed probes), "abort" additionally defers costlier siblings
    #: once a cheaper candidate times out — the only mode allowed to
    #: change answers, audited by :func:`run_cost_order_audit`.
    cost_order: str = "off"
    #: per-candidate probe budget in milliseconds (the CLI's
    #: ``--probe-timeout``); ``None`` leaves probes unbounded. Timed-out
    #: probes are inconclusive (the candidate survives the stage) and
    #: surface as ``probe_timeouts`` telemetry.
    probe_timeout_ms: Optional[int] = None
    #: LRU bound on each shared probe cache's entry count (the CLI's
    #: ``--probe-cache-entries``); ``None`` grows without bound (the
    #: seed behaviour). Never changes results — with ``cache_dir`` set,
    #: evicted entries flush to the disk store instead of being lost —
    #: and surfaces as probe_cache_evictions / evicted_flushed
    #: telemetry.
    probe_cache_entries: Optional[int] = None
    #: deterministic fault-injection plan (the CLI's ``--fault-plan``);
    #: ``None`` disables injection entirely (the seed behaviour).
    fault_plan: Optional[str] = None

    def enumerator_config(self) -> EnumeratorConfig:
        return EnumeratorConfig(time_budget=self.timeout,
                                max_candidates=self.max_candidates,
                                max_expansions=self.max_expansions,
                                engine=self.engine,
                                workers=self.workers,
                                verify_backend=self.verify_backend,
                                beam_width=self.beam_width,
                                guidance_batch=self.guidance_batch,
                                guidance_cache_size=self.guidance_cache_size,
                                guidance_server=self.guidance_server,
                                probe_planner=self.probe_planner,
                                cost_order=self.cost_order,
                                probe_timeout_ms=self.probe_timeout_ms,
                                probe_cache_entries=self.probe_cache_entries,
                                fault_plan=self.fault_plan)


def _context_for(config: SimulationConfig) -> ServiceContext:
    """One :class:`ServiceContext` per ``run_*`` call.

    Owns the run's probe-cache registry and guidance model (both
    released by ``ctx.close()`` in the run's ``finally``); borrows the
    process-wide pool manager, so warm verification workers survive
    across successive runs.
    """
    return ServiceContext(_oracle(config),
                          share_probe_cache=config.share_probe_cache,
                          cache_dir=config.cache_dir,
                          probe_cache_entries=config.probe_cache_entries)


def _pool_manager_for(config: SimulationConfig,
                      ctx: ServiceContext) -> Optional[PoolManager]:
    """The shared manager, when the configuration can benefit from it."""
    return ctx.pools_for(backend=config.verify_backend,
                         workers=config.workers,
                         persistent=config.persistent_pool)


def _oracle(config: SimulationConfig) -> GuidanceModel:
    """The run's guidance model, wrapped per the guidance-backend knobs.

    Wrapping happens here — once per ``run_*`` call — rather than
    inside each enumeration, so the batching wrapper's distribution
    cache is shared by every task, system, and variant of the run;
    that cross-task reuse is where most of the ``GuideHits`` come from
    (Duoquest, the NLI baseline, and the ablations score largely
    identical decisions). Callers must release it with
    :func:`~repro.guidance.batched.close_guidance` (a no-op for plain
    models) so a server-backed run closes its socket.
    """
    model: GuidanceModel = CalibratedOracleModel(profile=config.profile,
                                                 seed=config.seed)
    return make_guidance_backend(model, batch=config.guidance_batch,
                                 cache_size=config.guidance_cache_size,
                                 server=config.guidance_server)


def run_gpqe_task(task: Task, db: Database, system: Duoquest,
                  tsq: Optional[TableSketchQuery],
                  system_name: str,
                  detail: str = DETAIL_FULL) -> SimTaskRecord:
    """Run one task on a GPQE-based system, stopping at the gold query.

    Emission order is non-increasing in confidence, so the gold
    candidate's emission index + 1 is its rank in the returned list and
    early termination (as in Section 5.4.1) loses nothing.
    """
    gold = task.gold

    hit: Dict[str, object] = {}

    def stop_when(candidate) -> bool:
        if queries_equal(candidate.query, gold):
            hit["rank"] = candidate.index + 1
            hit["time"] = candidate.elapsed
            return True
        return False

    result = system.synthesize(task.nlq, tsq, gold=gold,
                               task_id=task.task_id, stop_when=stop_when)
    return SimTaskRecord(task_id=task.task_id,
                         difficulty=task.difficulty.value,
                         system=system_name, detail=detail,
                         rank=hit.get("rank"),
                         time_to_gold=hit.get("time"),
                         num_candidates=len(result.candidates),
                         elapsed=result.elapsed,
                         expansions=result.expansions,
                         telemetry=(result.telemetry.as_dict()
                                    if result.telemetry is not None
                                    else None))


def run_pbe_task(task: Task, db: Database, pbe: SquidPBE,
                 tsq: TableSketchQuery) -> SimTaskRecord:
    """Run one task on the PBE baseline (supported / correct judgment)."""
    record = SimTaskRecord(task_id=task.task_id,
                           difficulty=task.difficulty.value, system="PBE")
    supported, _ = pbe.supports_task(task.gold)
    if not supported:
        record.supported = False
        record.correct = False
        return record
    examples = example_values(tsq)
    ok, _ = pbe.supports_examples(examples)
    if not ok:
        record.supported = False
        record.correct = False
        return record
    try:
        outcome = pbe.run(examples)
    except UnsupportedTaskError:
        record.supported = False
        record.correct = False
        return record
    record.elapsed = outcome.runtime
    record.correct = pbe.judge(outcome, task.gold)
    return record


def run_simulation(tasks: TaskSet,
                   systems: Sequence[str] = ("Duoquest", "NLI", "PBE"),
                   config: Optional[SimulationConfig] = None,
                   detail: str = DETAIL_FULL) -> List[SimTaskRecord]:
    """The Figure 10/11 experiment over one task set.

    Returns one :class:`~repro.eval.metrics.SimTaskRecord` per (task,
    system) pair, ready for :func:`repro.eval.reports.fig10_report` /
    ``fig11_report`` / ``search_report``. Probe caches are shared per
    database (and persisted when ``config.cache_dir`` is set — even if a
    task raises, answered probes are saved for the next run), and GPQE
    enumerations lease warm verification workers from the shared pool
    manager when the configuration allows.
    """
    config = config or SimulationConfig()
    ctx = _context_for(config)
    model = ctx.guidance
    records: List[SimTaskRecord] = []
    pbe_by_db: Dict[str, SquidPBE] = {}
    caches = ctx.caches
    pools = _pool_manager_for(config, ctx)
    try:
        for task in tasks:
            db = tasks.database_for(task)
            tsq = synthesize_tsq(task, db, detail=detail, seed=config.seed)
            if "Duoquest" in systems:
                system = Duoquest(db, model=model,
                                  config=config.enumerator_config(),
                                  probe_cache=caches.cache_for(db),
                                  pool_manager=pools)
                records.append(run_gpqe_task(task, db, system, tsq,
                                             "Duoquest", detail))
            if "NLI" in systems:
                system = Duoquest(db, model=model,
                                  config=config.enumerator_config(),
                                  probe_cache=caches.cache_for(db),
                                  pool_manager=pools)
                records.append(run_gpqe_task(task, db, system, None, "NLI"))
            if "PBE" in systems:
                if db.schema.name not in pbe_by_db:
                    pbe_by_db[db.schema.name] = SquidPBE(db)
                records.append(run_pbe_task(task, db,
                                            pbe_by_db[db.schema.name], tsq))
    finally:
        ctx.close()
    return records


def run_detail_sweep(tasks: TaskSet,
                     details: Sequence[str],
                     config: Optional[SimulationConfig] = None
                     ) -> List[SimTaskRecord]:
    """The Table 6 experiment: vary TSQ specification detail.

    Each task runs once per detail level; records carry the level in
    ``detail`` for :func:`repro.eval.reports.table6_report`. Cache
    sharing/persistence and pool leasing work as in
    :func:`run_simulation`.
    """
    config = config or SimulationConfig()
    ctx = _context_for(config)
    model = ctx.guidance
    records: List[SimTaskRecord] = []
    caches = ctx.caches
    pools = _pool_manager_for(config, ctx)
    try:
        for task in tasks:
            db = tasks.database_for(task)
            for detail in details:
                tsq = synthesize_tsq(task, db, detail=detail,
                                     seed=config.seed)
                system = Duoquest(db, model=model,
                                  config=config.enumerator_config(),
                                  probe_cache=caches.cache_for(db),
                                  pool_manager=pools)
                records.append(run_gpqe_task(task, db, system, tsq,
                                             "Duoquest", detail))
    finally:
        ctx.close()
    return records


def run_ablations(tasks: TaskSet,
                  variants: Sequence[str] = ("Duoquest", "NoPQ", "NoGuide"),
                  config: Optional[SimulationConfig] = None
                  ) -> List[SimTaskRecord]:
    """The Figure 12 experiment: time-to-solution per GPQE variant.

    Every task runs once per ablation variant (see
    ``repro.baselines.ablations.ABLATION_VARIANTS``). Cache
    sharing/persistence and pool leasing work as in
    :func:`run_simulation` — with sharing on, the second and third
    variants of each task hit the first one's probes.
    """
    config = config or SimulationConfig()
    ctx = _context_for(config)
    model = ctx.guidance
    records: List[SimTaskRecord] = []
    caches = ctx.caches
    pools = _pool_manager_for(config, ctx)
    try:
        for task in tasks:
            db = tasks.database_for(task)
            tsq = synthesize_tsq(task, db, detail=DETAIL_FULL,
                                 seed=config.seed)
            for variant in variants:
                factory = ABLATION_VARIANTS[variant]
                system = factory(db, model, config.enumerator_config(),
                                 probe_cache=caches.cache_for(db),
                                 pool_manager=pools)
                records.append(run_gpqe_task(task, db, system, tsq, variant))
    finally:
        ctx.close()
    return records


def run_cost_order_audit(tasks: TaskSet,
                         config: Optional[SimulationConfig] = None,
                         mode: str = "order") -> Dict[str, object]:
    """Audit a cost-order mode against the ``off`` baseline.

    Runs every task twice — once with ``cost_order="off"`` and once with
    ``cost_order=mode`` — under otherwise-identical configuration, each
    sweep with its own guidance model and probe-cache registry so
    neither contaminates the other. The audit backs the cost-order
    stream contract:

    * ``mode="order"`` must keep the **final answer set** of every task
      identical (compared by canonical query signature, rank-blind) and
      must never execute more probes — the returned ``answers_match``
      and ``probes_off``/``probes_cost`` expose both halves.
    * ``mode="abort"`` may change answers; the returned
      ``accuracy_delta`` (top-10 gold hits under the cost mode minus
      under ``off``) quantifies exactly how much.

    Returns a flat dict ready for CLI printing: ``mode``, ``tasks``,
    ``answers_match``, ``answer_mismatches`` (task ids), ``probes_off``,
    ``probes_cost``, ``cost_ordered``, ``probe_timeouts``,
    ``cost_aborts``, ``top10_off``, ``top10_cost``, ``accuracy_delta``.
    """
    config = config or SimulationConfig()
    # A wall-clock cutoff makes the emitted answer set nondeterministic
    # (a task at 90% of budget lands on either side from run to run),
    # which would fail the contract for reasons that have nothing to do
    # with cost ordering. Lift it far enough that the *deterministic*
    # budgets — max_candidates / max_expansions — bound every task, so
    # both sweeps terminate at exactly the same point. (probe_timeout_ms
    # is intentionally kept: per-probe timeouts are what the abort
    # cascade reacts to, and the audit must measure that behaviour.)
    audit_timeout = max(60.0, config.timeout * 10.0)

    def sweep(cost_order: str):
        cfg = replace(config, cost_order=cost_order,
                      timeout=audit_timeout)
        ctx = _context_for(cfg)
        model = ctx.guidance
        caches = ctx.caches
        pools = _pool_manager_for(cfg, ctx)
        answers: Dict[str, frozenset] = {}
        probes = 0
        top10 = 0
        counters = {"cost_ordered": 0, "probe_timeouts": 0,
                    "cost_aborts": 0}
        try:
            for task in tasks:
                db = tasks.database_for(task)
                tsq = synthesize_tsq(task, db, detail=DETAIL_FULL,
                                     seed=cfg.seed)
                system = Duoquest(db, model=model,
                                  config=cfg.enumerator_config(),
                                  probe_cache=caches.cache_for(db),
                                  pool_manager=pools)
                # No stop_when: the contract is about the *full* emitted
                # answer set, not the prefix up to the gold query.
                result = system.synthesize(task.nlq, tsq, gold=task.gold,
                                           task_id=task.task_id)
                answers[task.task_id] = frozenset(
                    signature(c.query) for c in result.candidates)
                if any(queries_equal(c.query, task.gold)
                       for c in result.top(10)):
                    top10 += 1
                if result.telemetry is not None:
                    stats = result.telemetry.as_dict()
                    probes += stats.get("probe_misses", 0)
                    for key in counters:
                        counters[key] += stats.get(key, 0)
        finally:
            ctx.close()
        return answers, probes, top10, counters

    answers_off, probes_off, top10_off, _ = sweep("off")
    answers_cost, probes_cost, top10_cost, counters = sweep(mode)
    mismatches = sorted(task_id for task_id in answers_off
                        if answers_off[task_id]
                        != answers_cost.get(task_id, frozenset()))
    return {
        "mode": mode,
        "tasks": len(answers_off),
        "answers_match": not mismatches,
        "answer_mismatches": mismatches,
        "probes_off": probes_off,
        "probes_cost": probes_cost,
        "cost_ordered": counters["cost_ordered"],
        "probe_timeouts": counters["probe_timeouts"],
        "cost_aborts": counters["cost_aborts"],
        "top10_off": top10_off,
        "top10_cost": top10_cost,
        "accuracy_delta": top10_cost - top10_off,
    }


# ----------------------------------------------------------------------
# User studies (Figures 5-9)
# ----------------------------------------------------------------------
@dataclass
class UserStudyConfig:
    seed: int = 0
    cohort_size: int = 16
    novices: int = 6
    fact_bank_size: int = 10
    system_budget: float = 12.0
    max_candidates: int = 50
    #: The user studies run on MAS, far outside the Spider training
    #: domain; SyntaxSQLNet's per-decision accuracy degrades accordingly
    #: (the paper's NLI completed only 23.4% of trials). The scaled
    #: profile models that domain shift.
    profile: AccuracyProfile = field(
        default_factory=lambda: AccuracyProfile().scaled(0.82))


def _simulator(db: Database, config: UserStudyConfig,
               with_pbe: bool) -> UserSimulator:
    def factory(task: Task, variant: int) -> Duoquest:
        # One model draw per (study seed, user): each participant phrases
        # the NLQ in their own words, so the guidance model's mistakes
        # vary across users for the same task.
        model = CalibratedOracleModel(profile=config.profile,
                                      seed=config.seed * 1000 + variant)
        return Duoquest(db, model=model, config=EnumeratorConfig())

    pbe = SquidPBE(db) if with_pbe else None
    return UserSimulator(db, duoquest_factory=factory, pbe=pbe,
                         seed=config.seed,
                         system_budget=config.system_budget,
                         max_candidates=config.max_candidates)


def run_nli_user_study(db: Database, tasks: TaskSet,
                       config: Optional[UserStudyConfig] = None
                       ) -> List[TrialRecord]:
    """The 128-trial study vs. the NLI baseline (Section 5.2).

    Counterbalanced within subjects: half the cohort performs set A on
    Duoquest and set B on the NLI, the other half the reverse, so every
    task is attempted by 8 users on each system.
    """
    config = config or UserStudyConfig()
    cohort = make_cohort(config.cohort_size, config.novices, config.seed)
    simulator = _simulator(db, config, with_pbe=False)
    facts = {task.task_id: build_fact_bank(task, db,
                                           size=config.fact_bank_size,
                                           seed=config.seed)
             for task in tasks}
    set_a = {spec.task_id for spec in NLI_TASK_SPECS
             if spec.task_id.startswith("A")}
    trials: List[TrialRecord] = []
    for idx, user in enumerate(cohort):
        duoquest_first_half = idx < len(cohort) // 2
        for task in tasks:
            in_set_a = task.task_id in set_a
            use_duoquest = in_set_a == duoquest_first_half
            trials.append(simulator.run_ranked_list_trial(
                user, task, facts[task.task_id], use_tsq=use_duoquest))
    return trials


def run_pbe_user_study(db: Database, tasks: TaskSet,
                       config: Optional[UserStudyConfig] = None
                       ) -> List[TrialRecord]:
    """The 96-trial study vs. the PBE system (Section 5.3)."""
    config = config or UserStudyConfig()
    cohort = make_cohort(config.cohort_size, config.novices, config.seed)
    simulator = _simulator(db, config, with_pbe=True)
    facts = {task.task_id: build_fact_bank(task, db,
                                           size=config.fact_bank_size,
                                           seed=config.seed)
             for task in tasks}
    set_c = {spec.task_id for spec in PBE_TASK_SPECS
             if spec.task_id.startswith("C")}
    trials: List[TrialRecord] = []
    for idx, user in enumerate(cohort):
        duoquest_first_half = idx < len(cohort) // 2
        for task in tasks:
            in_set_c = task.task_id in set_c
            use_duoquest = in_set_c == duoquest_first_half
            if use_duoquest:
                trials.append(simulator.run_ranked_list_trial(
                    user, task, facts[task.task_id], use_tsq=True))
            else:
                trials.append(simulator.run_pbe_trial(
                    user, task, facts[task.task_id]))
    return trials
