"""Evaluation metrics and small formatting helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple


@dataclass
class SimTaskRecord:
    """Outcome of one simulated task run for one system.

    ``rank`` is the 1-based rank of the desired query in the returned
    candidate list (None when not found before timeout); ``time_to_gold``
    the seconds until the desired query was emitted. The PBE fields follow
    the paper's protocol: ``supported`` is False when the task is outside
    SQuID's envelope, ``correct`` records the subset judgment.
    """

    task_id: str
    difficulty: str
    system: str
    detail: str = "full"
    rank: Optional[int] = None
    time_to_gold: Optional[float] = None
    num_candidates: int = 0
    elapsed: float = 0.0
    expansions: int = 0
    supported: bool = True
    correct: Optional[bool] = None
    #: search telemetry snapshot (SearchTelemetry.as_dict()), GPQE only
    telemetry: Optional[Dict[str, object]] = None

    @property
    def solved(self) -> bool:
        return self.rank is not None


def top_k_accuracy(records: Sequence[SimTaskRecord], k: int
                   ) -> Tuple[int, float]:
    """(# tasks with gold in top-k, proportion) over ``records``."""
    if not records:
        return (0, 0.0)
    hits = sum(1 for r in records if r.rank is not None and r.rank <= k)
    return hits, hits / len(records)


def correct_counts(records: Sequence[SimTaskRecord]) -> Tuple[int, float]:
    """(# correct, proportion) for PBE-style judged records."""
    if not records:
        return (0, 0.0)
    hits = sum(1 for r in records if r.correct)
    return hits, hits / len(records)


def unsupported_counts(records: Sequence[SimTaskRecord]) -> Tuple[int, float]:
    if not records:
        return (0, 0.0)
    count = sum(1 for r in records if not r.supported)
    return count, count / len(records)


def completion_curve(records: Sequence[SimTaskRecord],
                     grid: Sequence[float]) -> List[float]:
    """% of tasks whose gold query appeared by each time point (Fig. 12)."""
    total = len(records)
    if total == 0:
        return [0.0 for _ in grid]
    times = sorted(r.time_to_gold for r in records
                   if r.time_to_gold is not None)
    curve = []
    for point in grid:
        done = sum(1 for t in times if t <= point)
        curve.append(100.0 * done / total)
    return curve


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def std_error(values: Sequence[float]) -> float:
    values = list(values)
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    variance = sum((v - mu) ** 2 for v in values) / (n - 1)
    return (variance / n) ** 0.5


def format_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Plain-text aligned table (the benches print paper tables this way)."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = ["  ".join(h.ljust(widths[i]) for i, h in enumerate(headers))]
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(widths[i])
                               for i, cell in enumerate(row)))
    return "\n".join(lines)


def pct(value: float) -> str:
    return f"{100.0 * value:.1f}"
