"""SQL intermediate representation: AST, rendering, parsing, equivalence."""

from .ast import (
    HOLE,
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    Hole,
    JoinEdge,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    STAR,
    SelectItem,
    Where,
)
from .canon import normalize_value, queries_equal, signature
from .parser import parse_sql
from .render import quote_ident, quote_literal, to_debug_sql, to_sql
from .types import ColumnType, Value, coerce_value, value_type

__all__ = [
    "HOLE",
    "AggOp",
    "ColumnRef",
    "ColumnType",
    "CompOp",
    "Direction",
    "Hole",
    "JoinEdge",
    "JoinPath",
    "LogicOp",
    "OrderItem",
    "Predicate",
    "Query",
    "STAR",
    "SelectItem",
    "Value",
    "Where",
    "coerce_value",
    "normalize_value",
    "parse_sql",
    "queries_equal",
    "quote_ident",
    "quote_literal",
    "signature",
    "to_debug_sql",
    "to_sql",
    "value_type",
]
