"""Canonical signatures for query equivalence.

The simulation study (Section 5.4) judges a candidate correct when it
exactly matches the gold query. Following the Spider benchmark's component
matching, the comparison is order-insensitive for SELECT items, selection
predicates and GROUP BY columns, and order-sensitive for ORDER BY, with
literal values normalised (numeric strings compare equal to numbers).
"""

from __future__ import annotations

from typing import Hashable, Optional, Tuple, Union

from ..errors import QueryError
from .ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    Hole,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    SelectItem,
    Where,
)
from .types import Value


def normalize_value(value: Union[Value, Tuple[Value, Value]]) -> Hashable:
    """Normalise a literal for comparison.

    Numbers (and numeric strings) normalise to ``float``; strings compare
    case-insensitively with surrounding whitespace stripped; BETWEEN pairs
    normalise element-wise with (low, high) ordering.
    """
    if isinstance(value, tuple):
        low, high = (normalize_value(v) for v in value)
        key = (repr(low), repr(high))
        return tuple(sorted((low, high), key=repr)) \
            if key[0] > key[1] else (low, high)
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip()
    try:
        return float(text)
    except ValueError:
        return text.casefold()


def _column_key(col: ColumnRef) -> Tuple[str, str]:
    return (col.table.casefold(), col.column.casefold())


def _select_item_key(item: SelectItem) -> Hashable:
    assert isinstance(item.column, ColumnRef)
    return (item.agg.value, _column_key(item.column), item.distinct)


def _predicate_key(pred: Predicate) -> Hashable:
    assert isinstance(pred.column, ColumnRef)
    assert isinstance(pred.op, CompOp)
    assert not isinstance(pred.value, Hole)
    return (pred.agg.value, _column_key(pred.column), pred.op.value,
            normalize_value(pred.value))


def signature(query: Query) -> Hashable:
    """A hashable canonical signature; equal signatures mean equal queries.

    Raises :class:`QueryError` if the query is incomplete.
    """
    if not query.is_complete:
        raise QueryError("cannot canonicalise a partial query")
    assert not isinstance(query.select, Hole)
    assert isinstance(query.join_path, JoinPath)

    group_key: Hashable = None
    if query.group_by is not None and not isinstance(query.group_by, Hole):
        group_key = frozenset(
            _column_key(c) for c in query.group_by
            if isinstance(c, ColumnRef))

    select_key = frozenset(
        _select_item_key(item) for item in query.select
        if isinstance(item, SelectItem))
    select_count = len(query.select)
    # DISTINCT is redundant (and thus ignored) when the projected rows are
    # already grouped; gold queries occasionally carry it (e.g. task A4).
    effective_distinct = query.distinct and group_key is None

    tables_key = frozenset(t.casefold() for t in query.join_path.tables)
    edges_key = frozenset(
        tuple(part.casefold() for part in edge.canonical())
        for edge in query.join_path.edges)

    where_key: Hashable = None
    if isinstance(query.where, Where):
        preds = frozenset(
            _predicate_key(p) for p in query.where.predicates
            if isinstance(p, Predicate))
        logic = query.where.logic
        # The connective is only observable with two or more predicates.
        logic_key = logic.value if (
            isinstance(logic, LogicOp) and len(query.where.predicates) > 1
        ) else LogicOp.AND.value
        where_key = (logic_key, preds)

    having_key: Hashable = None
    if query.having is not None and not isinstance(query.having, Hole):
        having_key = frozenset(
            _predicate_key(p) for p in query.having
            if isinstance(p, Predicate))

    order_key: Hashable = None
    if query.order_by is not None and not isinstance(query.order_by, Hole):
        order_key = tuple(
            (item.agg.value, _column_key(item.column), item.direction.value)
            for item in query.order_by
            if isinstance(item, OrderItem)
            and isinstance(item.column, ColumnRef)
            and isinstance(item.direction, Direction))

    limit_key: Optional[int] = None
    if query.limit is not None and not isinstance(query.limit, Hole):
        limit_key = int(query.limit)

    return (
        ("select", select_key, select_count, effective_distinct),
        ("from", tables_key, edges_key),
        ("where", where_key),
        ("group", group_key),
        ("having", having_key),
        ("order", order_key),
        ("limit", limit_key),
    )


def queries_equal(left: Query, right: Query) -> bool:
    """True when two complete queries have the same canonical signature."""
    return signature(left) == signature(right)
