"""Canonical signatures for query equivalence and probe canonicalisation.

The simulation study (Section 5.4) judges a candidate correct when it
exactly matches the gold query. Following the Spider benchmark's component
matching, the comparison is order-insensitive for SELECT items, selection
predicates and GROUP BY columns, and order-sensitive for ORDER BY, with
literal values normalised (numeric strings compare equal to numbers).

A second, lower-level canonicaliser lives here too:
:func:`canonicalize_probe` strips the literal values out of a rendered
probe statement (``SELECT 1 ... LIMIT 1``, the verifier cascade's hot
path) into ``?`` placeholders plus a parameter tuple, so that sibling
probes differing only in their literals share one parameterised SQL
string — one SQLite prepared plan, and (via :func:`probe_plan_key`) one
probe-cache entry. It is consumed by
:class:`repro.core.search.planner.ProbePlanner`.
"""

from __future__ import annotations

import re
from typing import Hashable, List, Optional, Sequence, Tuple, Union

from ..errors import QueryError
from .ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    Hole,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    SelectItem,
    Where,
)
from .types import Value


def normalize_value(value: Union[Value, Tuple[Value, Value]]) -> Hashable:
    """Normalise a literal for comparison.

    Numbers (and numeric strings) normalise to ``float``; strings compare
    case-insensitively with surrounding whitespace stripped; BETWEEN pairs
    normalise element-wise with (low, high) ordering.
    """
    if isinstance(value, tuple):
        low, high = (normalize_value(v) for v in value)
        key = (repr(low), repr(high))
        return tuple(sorted((low, high), key=repr)) \
            if key[0] > key[1] else (low, high)
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    text = str(value).strip()
    try:
        return float(text)
    except ValueError:
        return text.casefold()


def _column_key(col: ColumnRef) -> Tuple[str, str]:
    return (col.table.casefold(), col.column.casefold())


def _select_item_key(item: SelectItem) -> Hashable:
    assert isinstance(item.column, ColumnRef)
    return (item.agg.value, _column_key(item.column), item.distinct)


def _predicate_key(pred: Predicate) -> Hashable:
    assert isinstance(pred.column, ColumnRef)
    assert isinstance(pred.op, CompOp)
    assert not isinstance(pred.value, Hole)
    return (pred.agg.value, _column_key(pred.column), pred.op.value,
            normalize_value(pred.value))


def signature(query: Query) -> Hashable:
    """A hashable canonical signature; equal signatures mean equal queries.

    Raises :class:`QueryError` if the query is incomplete.
    """
    if not query.is_complete:
        raise QueryError("cannot canonicalise a partial query")
    assert not isinstance(query.select, Hole)
    assert isinstance(query.join_path, JoinPath)

    group_key: Hashable = None
    if query.group_by is not None and not isinstance(query.group_by, Hole):
        group_key = frozenset(
            _column_key(c) for c in query.group_by
            if isinstance(c, ColumnRef))

    select_key = frozenset(
        _select_item_key(item) for item in query.select
        if isinstance(item, SelectItem))
    select_count = len(query.select)
    # DISTINCT is redundant (and thus ignored) when the projected rows are
    # already grouped; gold queries occasionally carry it (e.g. task A4).
    effective_distinct = query.distinct and group_key is None

    tables_key = frozenset(t.casefold() for t in query.join_path.tables)
    edges_key = frozenset(
        tuple(part.casefold() for part in edge.canonical())
        for edge in query.join_path.edges)

    where_key: Hashable = None
    if isinstance(query.where, Where):
        preds = frozenset(
            _predicate_key(p) for p in query.where.predicates
            if isinstance(p, Predicate))
        logic = query.where.logic
        # The connective is only observable with two or more predicates.
        logic_key = logic.value if (
            isinstance(logic, LogicOp) and len(query.where.predicates) > 1
        ) else LogicOp.AND.value
        where_key = (logic_key, preds)

    having_key: Hashable = None
    if query.having is not None and not isinstance(query.having, Hole):
        having_key = frozenset(
            _predicate_key(p) for p in query.having
            if isinstance(p, Predicate))

    order_key: Hashable = None
    if query.order_by is not None and not isinstance(query.order_by, Hole):
        order_key = tuple(
            (item.agg.value, _column_key(item.column), item.direction.value)
            for item in query.order_by
            if isinstance(item, OrderItem)
            and isinstance(item.column, ColumnRef)
            and isinstance(item.direction, Direction))

    limit_key: Optional[int] = None
    if query.limit is not None and not isinstance(query.limit, Hole):
        limit_key = int(query.limit)

    return (
        ("select", select_key, select_count, effective_distinct),
        ("from", tables_key, edges_key),
        ("where", where_key),
        ("group", group_key),
        ("having", having_key),
        ("order", order_key),
        ("limit", limit_key),
    )


def queries_equal(left: Query, right: Query) -> bool:
    """True when two complete queries have the same canonical signature."""
    return signature(left) == signature(right)


# ----------------------------------------------------------------------
# Probe canonicalisation (literal stripping for the probe planner)
# ----------------------------------------------------------------------
#: Lexer for the probe SQL the renderer emits: string literals (with
#: ``''`` escapes), quoted identifiers, numeric literals (including
#: ``repr(float)`` exponent forms), bare words, whitespace runs, and any
#: other single character (operators, punctuation).
_PROBE_TOKEN = re.compile(
    r"'(?:[^']|'')*'"
    r'|"(?:[^"]|"")*"'
    r"|-?\d+(?:\.\d+)?(?:[eE][-+]?\d+)?"
    r"|[A-Za-z_][A-Za-z_0-9]*"
    r"|\s+"
    r"|.",
    re.DOTALL)

#: Keywords whose following integer is *structure*, not data: ``SELECT 1``
#: and ``LIMIT 1`` are constant across every probe, and parameterising a
#: LIMIT would change the statement's shape for no sharing gain.
_STRUCTURAL_NUMBER_AFTER = frozenset({"select", "limit", "offset"})


def canonicalize_probe(sql: str) -> Tuple[str, Tuple[Value, ...]]:
    """Strip the literals out of a rendered probe statement.

    Returns ``(param_sql, params)``: the statement with every data
    literal replaced by a ``?`` placeholder (string literals unescaped,
    numerics parsed to ``int``/``float``), whitespace collapsed to
    single spaces. Two probes that differ only in literal values — or
    in whitespace — canonicalise to the same ``param_sql``, so they
    share one SQLite prepared plan; executing ``param_sql`` with
    ``params`` is equivalent to executing ``sql``.

    The grammar covered is the one the verifier's probe builders emit
    (``SELECT 1 FROM ... WHERE ... LIMIT 1``): quoted identifiers are
    kept verbatim (they are structure, not data), integers directly
    after ``SELECT``/``LIMIT``/``OFFSET`` stay inline (they are the
    constant probe scaffolding), and a ``-`` sign folds into the bound
    parameter — sound because probe predicates are always ``column op
    literal``, never column arithmetic — so signatures are invariant
    under *any* literal substitution, negative values included.
    """
    parts: List[str] = []
    params: List[Value] = []
    previous_word = ""
    for match in _PROBE_TOKEN.finditer(sql):
        token = match.group(0)
        first = token[0]
        if first == "'":
            params.append(token[1:-1].replace("''", "'"))
            parts.append("?")
            previous_word = ""
        elif first.isdigit() or (first == "-" and len(token) > 1):
            if previous_word in _STRUCTURAL_NUMBER_AFTER:
                parts.append(token)
            else:
                if "." in token or "e" in token or "E" in token:
                    number: Value = float(token)
                else:
                    number = int(token)
                    if not -2**63 <= number < 2**63:
                        # SQLite itself parses an oversized integer
                        # literal as REAL; binding the float keeps the
                        # parameterised probe equivalent to the raw one
                        # (a 64-bit-overflowing int cannot be bound).
                        number = float(token)
                params.append(number)
                parts.append("?")
            previous_word = ""
        elif token.isspace():
            if parts and parts[-1] != " ":
                parts.append(" ")
            continue
        else:
            parts.append(token)
            previous_word = token.casefold() \
                if (first.isalpha() or first == "_" or first == '"') else ""
    return "".join(parts).strip(), tuple(params)


def _normalise_param(value: Value) -> str:
    """One parameter's contribution to the shared cache key.

    Type-exact (``repr``): an int and a float of equal numeric value
    keep *distinct* keys. Folding ``2005`` and ``2005.0`` together
    would be sound only under numeric-affinity comparison — against a
    TEXT-affinity column SQLite text-converts the operand, and
    ``c >= 5`` vs ``c >= 5.0`` genuinely differ — and the SQL text
    cannot tell the planner which case it is in. A missed share costs
    one redundant probe; a collision would cache a wrong answer. The
    same reasoning keeps text exact (no case folding: unsound without
    ``COLLATE NOCASE``). Cross-rendering sharing therefore comes from
    the signature (whitespace, literal position) — where it is provably
    outcome-preserving — not from value coercion.
    """
    return repr(value)


def probe_plan_key(param_sql: str, params: Sequence[Value]) -> str:
    """The probe-cache key for a canonicalised probe.

    A plain string (so it flows through the probe cache's export/seed/
    journal machinery and the persistent store unchanged): the
    parameterised SQL plus the normalised parameters, joined with unit
    separators that cannot occur in either side.
    """
    return param_sql + "\x1f\x1f" + "\x1f".join(
        _normalise_param(value) for value in params)


# ----------------------------------------------------------------------
# Grouped probe-set rendering (the planner's fuse mode)
# ----------------------------------------------------------------------
def split_probe(param_sql: str) -> Optional[Tuple[str, str]]:
    """Split a canonicalised probe into ``(skeleton, condition)``.

    The probe grammar the verifier emits is ``SELECT 1 FROM <skeleton>
    WHERE <condition> LIMIT 1``; the skeleton is the join structure the
    fuse planner groups by, the condition becomes one aggregate arm of
    the grouped statement. Returns ``None`` when the statement does not
    match the grammar — the caller then leaves that probe to the
    per-arm paths (``UNION ALL`` fusion or the cascade), which accept
    any shape.
    """
    start = param_sql.find(" FROM ")
    where = param_sql.rfind(" WHERE ")
    limit = param_sql.rfind(" LIMIT ")
    if start < 0 or where <= start or limit <= where:
        return None
    return param_sql[start + 6:where], param_sql[where + 7:limit]


def fused_group_sql(skeleton: str, conditions: Sequence[str],
                    minmax_columns: Sequence[str] = ()) -> str:
    """Render one single-scan grouped statement for a probe group.

    One aggregate row over one scan of ``skeleton``: a ``COUNT(*)
    FILTER (WHERE <condition>)`` arm per existence probe (nonzero iff
    the probe's ``SELECT 1 ... LIMIT 1`` would find a row — NULL
    conditions exclude a row from the filter exactly as they would from
    a WHERE clause) and a ``MIN``/``MAX`` pair per by-column AVG-range
    column (``minmax_columns`` are already-quoted column names, and the
    pair matches ``Database.column_min_max`` aggregate for aggregate).
    Parameters are the conditions' placeholders concatenated in arm
    order, exactly as the caller collected them.
    """
    parts = [f"COUNT(*) FILTER (WHERE {condition})"
             for condition in conditions]
    for column in minmax_columns:
        parts.append(f"MIN({column})")
        parts.append(f"MAX({column})")
    return f"SELECT {', '.join(parts)} FROM {skeleton}"


def fused_group_key(skeleton: str, arm_sqls: Sequence[str]) -> str:
    """A stable identity for one fused group's rendered statement.

    Keys the planner's rendered-statement cache the same way
    :func:`probe_plan_key` keys single probes: the skeleton plus the
    arms' parameterised signatures, joined with a record separator that
    occurs in neither — so an expansion round that re-derives the same
    group (same shapes, different literals) reuses the rendered SQL
    string and its prepared plan.
    """
    return skeleton + "\x1e" + "\x1e".join(arm_sqls)
