"""Scalar data types used throughout the SQL intermediate representation.

The paper restricts table sketch query (TSQ) type annotations to ``text``
and ``number`` (Table 2), so the IR uses the same two-valued type system.
SQLite storage classes are mapped onto these two types when a schema is
ingested.
"""

from __future__ import annotations

import enum
from typing import Union

#: Python value types that may appear as literals in queries and TSQ cells.
Value = Union[str, int, float]


class ColumnType(enum.Enum):
    """Logical type of a column or a projected expression."""

    TEXT = "text"
    NUMBER = "number"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @classmethod
    def from_sqlite(cls, declared: str) -> "ColumnType":
        """Map a SQLite declared type to a logical column type.

        Follows SQLite's own type-affinity rules: anything containing
        INT/REAL/FLOA/DOUB/NUM/DEC is numeric, everything else is text.
        """
        upper = (declared or "").upper()
        numeric_markers = ("INT", "REAL", "FLOA", "DOUB", "NUM", "DEC", "BOOL")
        if any(marker in upper for marker in numeric_markers):
            return cls.NUMBER
        return cls.TEXT

    def to_sqlite(self) -> str:
        """Render this logical type as a SQLite declared type."""
        return "TEXT" if self is ColumnType.TEXT else "REAL"


def value_type(value: Value) -> ColumnType:
    """Infer the :class:`ColumnType` of a Python literal value."""
    if isinstance(value, bool):
        return ColumnType.NUMBER
    if isinstance(value, (int, float)):
        return ColumnType.NUMBER
    return ColumnType.TEXT


def coerce_value(value: Value, target: ColumnType) -> Value:
    """Best-effort coercion of ``value`` to ``target``.

    Used when matching user-provided TSQ cells (always typed as strings in
    a UI) against typed database columns. Returns the value unchanged when
    no sensible coercion exists; verification will then simply fail to
    match, which is the correct behaviour.
    """
    if target is ColumnType.NUMBER and isinstance(value, str):
        text = value.strip()
        try:
            return int(text)
        except ValueError:
            try:
                return float(text)
            except ValueError:
                return value
    if target is ColumnType.TEXT and isinstance(value, (int, float)):
        return str(value)
    return value
