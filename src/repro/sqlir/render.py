"""Rendering of query ASTs to executable SQLite SQL.

Complete queries render to runnable SQL with ``t1 .. tn`` table aliases (the
style used in the paper's Tables 7-8). Partial queries can be rendered for
display with ``?`` placeholders via :func:`to_debug_sql`, but only complete
queries may be rendered for execution.
"""

from __future__ import annotations

from typing import Dict, Tuple, Union

from ..errors import RenderError
from .ast import (
    HOLE,
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    Hole,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    SelectItem,
    Where,
)
from .types import Value


def quote_literal(value: Value) -> str:
    """Render a Python literal as a SQL literal, escaping quotes."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, (int, float)):
        return repr(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def quote_ident(name: str) -> str:
    """Quote an identifier when it is not a plain lowercase word."""
    if name.isidentifier() and name == name.lower():
        return name
    escaped = name.replace('"', '""')
    return f'"{escaped}"'


def _alias_map(join_path: JoinPath) -> Dict[str, str]:
    """Assign ``t1..tn`` aliases to the tables of a join path."""
    return {table: f"t{i + 1}" for i, table in enumerate(join_path.tables)}


def _render_column(col: Union[ColumnRef, Hole], aliases: Dict[str, str]) -> str:
    if isinstance(col, Hole):
        raise RenderError("cannot render a column hole to SQL")
    if col.is_star:
        return "*"
    alias = aliases.get(col.table)
    if alias is None:
        raise RenderError(
            f"column {col!r} references table {col.table!r} absent from the "
            f"join path")
    return f"{alias}.{quote_ident(col.column)}"


def _render_expr(agg: AggOp, col: Union[ColumnRef, Hole],
                 aliases: Dict[str, str], distinct: bool = False) -> str:
    rendered = _render_column(col, aliases)
    if distinct and not agg.is_aggregate:
        raise RenderError("DISTINCT inside an expression requires an aggregate")
    if agg.is_aggregate:
        inner = f"DISTINCT {rendered}" if distinct else rendered
        return f"{agg.value}({inner})"
    return rendered


def _render_predicate(pred: Predicate, aliases: Dict[str, str]) -> str:
    if not pred.is_complete:
        raise RenderError(f"cannot render incomplete predicate {pred!r}")
    lhs = _render_expr(pred.agg, pred.column, aliases)
    assert not isinstance(pred.op, Hole)
    if pred.op is CompOp.BETWEEN:
        if not isinstance(pred.value, tuple) or len(pred.value) != 2:
            raise RenderError("BETWEEN requires a (low, high) value pair")
        low, high = pred.value
        return f"{lhs} BETWEEN {quote_literal(low)} AND {quote_literal(high)}"
    if isinstance(pred.value, tuple):
        raise RenderError(f"operator {pred.op.value} takes a scalar value")
    assert not isinstance(pred.value, Hole)
    return f"{lhs} {pred.op.value} {quote_literal(pred.value)}"


def _render_from(join_path: JoinPath, aliases: Dict[str, str]) -> str:
    if not join_path.tables:
        raise RenderError("join path has no tables")
    first = join_path.tables[0]
    parts = [f"{quote_ident(first)} AS {aliases[first]}"]
    joined = {first}
    remaining = list(join_path.edges)
    # Attach edges in an order where one endpoint is already joined; the
    # join paths produced by Algorithm 2 are trees so this always succeeds.
    progress = True
    while remaining and progress:
        progress = False
        for edge in list(remaining):
            if edge.src_table in joined and edge.dst_table not in joined:
                new_table, cond = edge.dst_table, edge
            elif edge.dst_table in joined and edge.src_table not in joined:
                new_table, cond = edge.src_table, edge
            elif edge.src_table in joined and edge.dst_table in joined:
                remaining.remove(edge)
                progress = True
                continue
            else:
                continue
            on = (f"{aliases[cond.src_table]}.{quote_ident(cond.src_column)} = "
                  f"{aliases[cond.dst_table]}.{quote_ident(cond.dst_column)}")
            parts.append(f"JOIN {quote_ident(new_table)} AS "
                         f"{aliases[new_table]} ON {on}")
            joined.add(new_table)
            remaining.remove(edge)
            progress = True
    if len(joined) != len(join_path.tables):
        raise RenderError(
            f"join path {join_path!r} is disconnected: joined {sorted(joined)}")
    return " ".join(parts)


def alias_map(join_path: JoinPath) -> Dict[str, str]:
    """Public alias assignment for probe-query construction."""
    return _alias_map(join_path)


def render_from(join_path: JoinPath, aliases: Dict[str, str]) -> str:
    """Render a FROM clause for probe queries (Verifier, Section 3.4)."""
    return _render_from(join_path, aliases)


def render_predicate(pred: Predicate, aliases: Dict[str, str]) -> str:
    """Render one complete predicate for probe queries."""
    return _render_predicate(pred, aliases)


def render_column(col: Union[ColumnRef, Hole], aliases: Dict[str, str]) -> str:
    """Render one column reference for probe queries."""
    return _render_column(col, aliases)


def to_sql(query: Query) -> str:
    """Render a complete query to executable SQLite SQL.

    Raises :class:`RenderError` when the query still contains holes.
    """
    if not query.is_complete:
        holes = ", ".join(query.iter_holes())
        raise RenderError(f"query contains holes: {holes}")
    assert isinstance(query.join_path, JoinPath)
    aliases = _alias_map(query.join_path)

    assert not isinstance(query.select, Hole)
    select_items = []
    for item in query.select:
        assert isinstance(item, SelectItem)
        select_items.append(
            _render_expr(item.agg, item.column, aliases, item.distinct))
    distinct = "DISTINCT " if query.distinct else ""
    sql = [f"SELECT {distinct}{', '.join(select_items)}"]
    sql.append(f"FROM {_render_from(query.join_path, aliases)}")

    if isinstance(query.where, Where):
        logic = query.where.logic
        sep = f" {LogicOp.AND.value} " if isinstance(logic, Hole) \
            else f" {logic.value} "
        rendered = sep.join(
            _render_predicate(p, aliases) for p in query.where.predicates
            if isinstance(p, Predicate))
        sql.append(f"WHERE {rendered}")

    if query.group_by is not None and not isinstance(query.group_by, Hole):
        cols = ", ".join(_render_column(c, aliases) for c in query.group_by)
        sql.append(f"GROUP BY {cols}")

    if query.having is not None and not isinstance(query.having, Hole):
        rendered = " AND ".join(
            _render_predicate(p, aliases) for p in query.having
            if isinstance(p, Predicate))
        sql.append(f"HAVING {rendered}")

    if query.order_by is not None and not isinstance(query.order_by, Hole):
        items = []
        for item in query.order_by:
            assert isinstance(item, OrderItem)
            assert isinstance(item.direction, Direction)
            expr = _render_expr(item.agg, item.column, aliases)
            items.append(f"{expr} {item.direction.value}")
        sql.append(f"ORDER BY {', '.join(items)}")

    if query.limit is not None and not isinstance(query.limit, Hole):
        sql.append(f"LIMIT {int(query.limit)}")

    return " ".join(sql)


def to_debug_sql(query: Query) -> str:
    """Render a possibly-partial query for display, with ``?`` for holes."""
    def col(c: object) -> str:
        return "?" if isinstance(c, Hole) else repr(c)

    parts = []
    if isinstance(query.select, Hole):
        parts.append("SELECT ?")
    else:
        rendered = ", ".join(
            "?" if isinstance(i, Hole) else repr(i) for i in query.select)
        distinct = "DISTINCT " if query.distinct else ""
        parts.append(f"SELECT {distinct}{rendered}")
    parts.append("FROM ?" if isinstance(query.join_path, Hole)
                 else f"FROM {query.join_path!r}")
    if isinstance(query.where, Hole):
        parts.append("WHERE ?")
    elif query.where is not None:
        parts.append(f"WHERE {query.where!r}")
    if isinstance(query.group_by, Hole):
        parts.append("GROUP BY ?")
    elif query.group_by is not None:
        parts.append("GROUP BY " + ", ".join(col(c) for c in query.group_by))
    if isinstance(query.having, Hole):
        parts.append("HAVING ?")
    elif query.having is not None:
        parts.append("HAVING " + " AND ".join(
            "?" if isinstance(p, Hole) else repr(p) for p in query.having))
    if isinstance(query.order_by, Hole):
        parts.append("ORDER BY ?")
    elif query.order_by is not None:
        parts.append("ORDER BY " + ", ".join(
            "?" if isinstance(i, Hole) else repr(i) for i in query.order_by))
    if isinstance(query.limit, Hole):
        parts.append("LIMIT ?")
    elif query.limit is not None:
        parts.append(f"LIMIT {query.limit}")
    return " ".join(parts)
