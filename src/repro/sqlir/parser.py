"""A recursive-descent parser for the supported SPJA SQL subset.

The parser exists so that gold queries (e.g. the user-study tasks in Tables
7-8 of the paper) can be written as ordinary SQL strings and converted into
:class:`~repro.sqlir.ast.Query` ASTs. It covers exactly the task scope of
Section 2.5: SELECT [DISTINCT] with optional aggregates, inner joins with
``ON a.x = b.y`` conditions, a WHERE clause with a single logical
connective, GROUP BY, HAVING, ORDER BY and LIMIT.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

from ..errors import ParseError
from .ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    JoinEdge,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    STAR,
    SelectItem,
    Where,
)
from .types import Value

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<qident>"(?:[^"]|"")*")
      | (?P<number>\d+\.\d+|\d+)
      | (?P<op><=|>=|<>|!=|=|<|>)
      | (?P<punct>[(),.*])
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "SELECT", "DISTINCT", "FROM", "AS", "JOIN", "INNER", "ON", "WHERE",
    "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "AND", "OR", "NOT",
    "BETWEEN", "LIKE", "ASC", "DESC",
}

_AGGS = {agg.value: agg for agg in AggOp if agg.is_aggregate}


class _Token:
    __slots__ = ("kind", "text")

    def __init__(self, kind: str, text: str):
        self.kind = kind
        self.text = text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.kind}:{self.text}>"


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    pos = 0
    while pos < len(sql):
        if sql[pos].isspace():
            pos += 1
            continue
        if sql[pos] == ";":
            pos += 1
            continue
        match = _TOKEN_RE.match(sql, pos)
        if match is None or match.start() != pos:
            raise ParseError(f"unexpected character {sql[pos]!r} at {pos}")
        pos = match.end()
        kind = match.lastgroup
        text = match.group(kind)
        if kind == "word":
            upper = text.upper()
            if upper in _KEYWORDS or upper in _AGGS:
                tokens.append(_Token("kw", upper))
            else:
                tokens.append(_Token("ident", text))
        elif kind == "qident":
            tokens.append(_Token("ident", text[1:-1].replace('""', '"')))
        elif kind == "string":
            tokens.append(_Token("string", text[1:-1].replace("''", "'")))
        else:
            tokens.append(_Token(kind, text))
    return tokens


class _Parser:
    """Single-statement recursive-descent parser over the token stream."""

    def __init__(self, tokens: Sequence[_Token], schema: Optional[object]):
        self._tokens = list(tokens)
        self._pos = 0
        self._schema = schema
        # alias -> table name, filled while parsing FROM
        self._aliases: dict[str, str] = {}
        self._from_tables: List[str] = []

    # -- token stream helpers ------------------------------------------
    def _peek(self, offset: int = 0) -> Optional[_Token]:
        index = self._pos + offset
        return self._tokens[index] if index < len(self._tokens) else None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of input")
        self._pos += 1
        return token

    def _accept_kw(self, *words: str) -> bool:
        token = self._peek()
        if token is not None and token.kind == "kw" and token.text in words:
            self._pos += 1
            return True
        return False

    def _expect_kw(self, word: str) -> None:
        if not self._accept_kw(word):
            raise ParseError(f"expected {word} at token {self._peek()!r}")

    def _expect(self, kind: str, text: Optional[str] = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text != text):
            raise ParseError(f"expected {text or kind}, got {token!r}")
        return token

    # -- grammar productions -------------------------------------------
    def parse_query(self) -> Query:
        self._expect_kw("SELECT")
        distinct = self._accept_kw("DISTINCT")
        # SELECT items reference columns, but aliases are declared in FROM,
        # which comes later; parse select items as raw pieces first.
        raw_select = self._parse_raw_select_items()
        self._expect_kw("FROM")
        join_path = self._parse_from()

        select = tuple(
            SelectItem(agg=agg, column=self._resolve(raw), distinct=item_distinct)
            for agg, raw, item_distinct in raw_select
        )

        where: Union[Where, None] = None
        if self._accept_kw("WHERE"):
            where = self._parse_where()

        group_by = None
        if self._accept_kw("GROUP"):
            self._expect_kw("BY")
            group_by = tuple(self._parse_column_list())

        having = None
        if self._accept_kw("HAVING"):
            having = tuple(self._parse_predicate_list(connective="AND"))

        order_by = None
        if self._accept_kw("ORDER"):
            self._expect_kw("BY")
            order_by = tuple(self._parse_order_items())

        limit = None
        if self._accept_kw("LIMIT"):
            limit = int(self._expect("number").text)

        if self._peek() is not None:
            raise ParseError(f"trailing tokens starting at {self._peek()!r}")

        return Query(select=select, join_path=join_path, where=where,
                     group_by=group_by, having=having, order_by=order_by,
                     limit=limit, distinct=distinct)

    def _parse_raw_select_items(
        self,
    ) -> List[Tuple[AggOp, Tuple[Optional[str], str], bool]]:
        items = [self._parse_raw_expr(allow_distinct=True)]
        while self._peek() is not None and self._peek().kind == "punct" \
                and self._peek().text == ",":
            self._next()
            items.append(self._parse_raw_expr(allow_distinct=True))
        return items

    def _parse_raw_expr(
        self, allow_distinct: bool = False,
    ) -> Tuple[AggOp, Tuple[Optional[str], str], bool]:
        """Parse ``[AGG(] [DISTINCT] col [)]`` without resolving aliases."""
        token = self._peek()
        agg = AggOp.NONE
        distinct = False
        if token is not None and token.kind == "kw" and token.text in _AGGS:
            agg = _AGGS[self._next().text]
            self._expect("punct", "(")
            if allow_distinct and self._accept_kw("DISTINCT"):
                distinct = True
            raw = self._parse_raw_column()
            self._expect("punct", ")")
            return agg, raw, distinct
        return agg, self._parse_raw_column(), distinct

    def _parse_raw_column(self) -> Tuple[Optional[str], str]:
        token = self._next()
        if token.kind == "punct" and token.text == "*":
            return (None, "*")
        if token.kind != "ident":
            raise ParseError(f"expected column reference, got {token!r}")
        qualifier: Optional[str] = None
        name = token.text
        nxt = self._peek()
        if nxt is not None and nxt.kind == "punct" and nxt.text == ".":
            self._next()
            qualifier = name
            after = self._next()
            if after.kind == "punct" and after.text == "*":
                name = "*"
            elif after.kind == "ident":
                name = after.text
            else:
                raise ParseError(f"expected column name, got {after!r}")
        return (qualifier, name)

    def _resolve(self, raw: Tuple[Optional[str], str]) -> ColumnRef:
        qualifier, name = raw
        if name == "*":
            return STAR
        if qualifier is not None:
            table = self._aliases.get(qualifier, qualifier)
            if table not in self._from_tables:
                raise ParseError(
                    f"unknown table or alias {qualifier!r} in column "
                    f"{qualifier}.{name}")
            return ColumnRef(table=table, column=name)
        # Unqualified: resolve against FROM tables, preferring schema info.
        candidates = []
        for table in self._from_tables:
            if self._schema is not None:
                if self._schema.has_column(table, name):
                    candidates.append(table)
            else:
                candidates.append(table)
        if self._schema is None and len(self._from_tables) == 1:
            return ColumnRef(table=self._from_tables[0], column=name)
        if len(candidates) == 1:
            return ColumnRef(table=candidates[0], column=name)
        if not candidates:
            raise ParseError(f"column {name!r} not found in FROM tables")
        raise ParseError(f"ambiguous column {name!r}: found in {candidates}")

    def _parse_from(self) -> JoinPath:
        tables: List[str] = []
        edges: List[JoinEdge] = []
        self._parse_table_ref(tables)
        while True:
            if self._accept_kw("INNER"):
                self._expect_kw("JOIN")
            elif not self._accept_kw("JOIN"):
                break
            self._parse_table_ref(tables)
            self._expect_kw("ON")
            left = self._resolve(self._parse_raw_column())
            self._expect("op", "=")
            right = self._resolve(self._parse_raw_column())
            edges.append(JoinEdge(src_table=left.table, src_column=left.column,
                                  dst_table=right.table, dst_column=right.column))
        return JoinPath(tables=tuple(tables), edges=tuple(edges))

    def _parse_table_ref(self, tables: List[str]) -> None:
        name = self._expect("ident").text
        if self._schema is not None and not self._schema.has_table(name):
            raise ParseError(f"unknown table {name!r}")
        alias = None
        if self._accept_kw("AS"):
            alias = self._expect("ident").text
        else:
            nxt = self._peek()
            if nxt is not None and nxt.kind == "ident":
                alias = self._next().text
        tables.append(name)
        self._from_tables.append(name)
        if alias is not None:
            self._aliases[alias] = name

    def _parse_where(self) -> Where:
        predicates = [self._parse_predicate()]
        logic: Optional[LogicOp] = None
        while True:
            if self._accept_kw("AND"):
                new_logic = LogicOp.AND
            elif self._accept_kw("OR"):
                new_logic = LogicOp.OR
            else:
                break
            if logic is not None and new_logic is not logic:
                raise ParseError(
                    "mixed AND/OR connectives are outside the supported "
                    "task scope (Section 2.5 of the paper)")
            logic = new_logic
            predicates.append(self._parse_predicate())
        return Where(logic=logic if logic is not None else LogicOp.AND,
                     predicates=tuple(predicates))

    def _parse_predicate_list(self, connective: str) -> List[Predicate]:
        predicates = [self._parse_predicate()]
        while self._accept_kw(connective):
            predicates.append(self._parse_predicate())
        return predicates

    def _parse_predicate(self) -> Predicate:
        if self._peek() is not None and self._peek().kind == "punct" \
                and self._peek().text == "(":
            self._next()
            pred = self._parse_predicate()
            self._expect("punct", ")")
            return pred
        agg, raw, _ = self._parse_raw_expr()
        column = self._resolve(raw)
        token = self._next()
        if token.kind == "op":
            op = {"=": CompOp.EQ, "!=": CompOp.NE, "<>": CompOp.NE,
                  "<": CompOp.LT, ">": CompOp.GT, "<=": CompOp.LE,
                  ">=": CompOp.GE}[token.text]
            value = self._parse_value()
            return Predicate(agg=agg, column=column, op=op, value=value)
        if token.kind == "kw" and token.text == "LIKE":
            value = self._parse_value()
            return Predicate(agg=agg, column=column, op=CompOp.LIKE,
                             value=value)
        if token.kind == "kw" and token.text == "BETWEEN":
            low = self._parse_value()
            self._expect_kw("AND")
            high = self._parse_value()
            return Predicate(agg=agg, column=column, op=CompOp.BETWEEN,
                             value=(low, high))
        raise ParseError(f"expected comparison operator, got {token!r}")

    def _parse_value(self) -> Value:
        token = self._next()
        if token.kind == "string":
            return token.text
        if token.kind == "number":
            text = token.text
            return float(text) if "." in text else int(text)
        raise ParseError(f"expected literal value, got {token!r}")

    def _parse_column_list(self) -> List[ColumnRef]:
        columns = [self._resolve(self._parse_raw_column())]
        while self._peek() is not None and self._peek().kind == "punct" \
                and self._peek().text == ",":
            self._next()
            columns.append(self._resolve(self._parse_raw_column()))
        return columns

    def _parse_order_items(self) -> List[OrderItem]:
        items = []
        while True:
            agg, raw, _ = self._parse_raw_expr()
            column = self._resolve(raw)
            direction = Direction.ASC
            if self._accept_kw("DESC"):
                direction = Direction.DESC
            else:
                self._accept_kw("ASC")
            items.append(OrderItem(agg=agg, column=column,
                                   direction=direction))
            nxt = self._peek()
            if nxt is not None and nxt.kind == "punct" and nxt.text == ",":
                self._next()
                continue
            break
        return items


def parse_sql(sql: str, schema: Optional[object] = None) -> Query:
    """Parse a SQL string in the supported SPJA subset into a query AST.

    ``schema`` (a :class:`repro.db.schema.Schema`) is optional but enables
    resolution of unqualified column names in multi-table queries and
    validation of table names.
    """
    tokens = _tokenize(sql)
    if not tokens:
        raise ParseError("empty SQL string")
    return _Parser(tokens, schema).parse_query()
