"""SPJA query AST with placeholder support.

This module implements the *partial query* (PQ) representation from
Definition 3.1 of the paper: a SQL query in which any query element (a
clause, expression, column reference, aggregate function, or constant) may
be replaced by a placeholder (:data:`HOLE`).

The AST covers the paper's task scope (Section 2.5): select-project-join-
aggregate queries with grouping, sorting and limit; selection predicates in
a clause share a single logical connective (``AND`` or ``OR``); joins are
inner joins along foreign key-primary key edges.

All nodes are immutable (frozen dataclasses) so that partial queries can be
shared between search states and used as dictionary keys.
"""

from __future__ import annotations

import dataclasses
import enum
from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union

from .types import ColumnType, Value


class Hole:
    """Singleton placeholder marking an undecided query element."""

    _instance: Optional["Hole"] = None

    def __new__(cls) -> "Hole":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "?"

    def __deepcopy__(self, memo: dict) -> "Hole":
        return self

    def __reduce__(self):
        return (Hole, ())


#: The placeholder instance used throughout the package.
HOLE = Hole()


class AggOp(enum.Enum):
    """Aggregate functions supported by the AGG guidance module (Table 3)."""

    NONE = ""
    MAX = "MAX"
    MIN = "MIN"
    COUNT = "COUNT"
    SUM = "SUM"
    AVG = "AVG"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_aggregate(self) -> bool:
        return self is not AggOp.NONE

    def output_type(self, input_type: ColumnType) -> ColumnType:
        """Logical type of ``agg(column)`` given the column's type."""
        if self is AggOp.COUNT:
            return ColumnType.NUMBER
        if self in (AggOp.SUM, AggOp.AVG):
            return ColumnType.NUMBER
        return input_type


class CompOp(enum.Enum):
    """Comparison operators supported by the OP guidance module."""

    EQ = "="
    NE = "!="
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    LIKE = "LIKE"
    BETWEEN = "BETWEEN"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def is_inequality(self) -> bool:
        return self in (CompOp.LT, CompOp.GT, CompOp.LE, CompOp.GE,
                        CompOp.BETWEEN)


class LogicOp(enum.Enum):
    """Logical connective for a predicate list (AND/OR module)."""

    AND = "AND"
    OR = "OR"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


class Direction(enum.Enum):
    """ORDER BY direction (DESC/ASC module)."""

    ASC = "ASC"
    DESC = "DESC"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A reference to ``table.column`` in the schema.

    The special reference :data:`STAR` (``*``) is used for ``COUNT(*)``.
    """

    table: str
    column: str

    def __repr__(self) -> str:
        if self.is_star:
            return "*"
        return f"{self.table}.{self.column}"

    @property
    def is_star(self) -> bool:
        return self.column == "*"


#: The ``*`` column reference used by ``COUNT(*)``.
STAR = ColumnRef(table="", column="*")

#: A predicate value: a literal, a (low, high) pair for BETWEEN, or a hole.
PredValue = Union[Value, Tuple[Value, Value], Hole]


@dataclass(frozen=True)
class SelectItem:
    """One projected expression: ``agg(column)`` with optional DISTINCT.

    ``agg`` may be a hole while the AGG module has not yet fired on this
    projection.
    """

    agg: Union[AggOp, Hole]
    column: Union[ColumnRef, Hole]
    distinct: bool = False

    def __repr__(self) -> str:
        inner = f"DISTINCT {self.column!r}" if self.distinct else repr(self.column)
        if isinstance(self.agg, Hole):
            return f"?({inner})"
        if self.agg.is_aggregate:
            return f"{self.agg.value}({inner})"
        return inner

    @property
    def is_complete(self) -> bool:
        return (not isinstance(self.column, Hole)
                and not isinstance(self.agg, Hole))

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.agg, AggOp) and self.agg.is_aggregate


@dataclass(frozen=True)
class Predicate:
    """A comparison predicate ``agg(column) op value``.

    WHERE predicates have ``agg == AggOp.NONE``; HAVING predicates carry an
    aggregate function (e.g. ``COUNT(*) > 5``).
    """

    agg: AggOp
    column: Union[ColumnRef, Hole]
    op: Union[CompOp, Hole]
    value: PredValue

    def __repr__(self) -> str:
        lhs = repr(self.column)
        if self.agg.is_aggregate:
            lhs = f"{self.agg.value}({lhs})"
        if isinstance(self.op, Hole):
            return f"{lhs} ? ?"
        if self.op is CompOp.BETWEEN and isinstance(self.value, tuple):
            low, high = self.value
            return f"{lhs} BETWEEN {low!r} AND {high!r}"
        return f"{lhs} {self.op.value} {self.value!r}"

    @property
    def is_complete(self) -> bool:
        return (not isinstance(self.column, Hole)
                and not isinstance(self.op, Hole)
                and not isinstance(self.value, Hole))

    @property
    def is_aggregate(self) -> bool:
        return self.agg.is_aggregate


@dataclass(frozen=True)
class Where:
    """A selection clause: predicates joined by a single logical operator.

    Per Section 2.5 of the paper, nested expressions mixing ``AND`` and
    ``OR`` are out of scope, so a single connective applies to the whole
    clause. ``logic`` may be a hole while the AND/OR module has not yet
    fired; it is irrelevant (conventionally ``AND``) for single-predicate
    clauses.
    """

    logic: Union[LogicOp, Hole]
    predicates: Tuple[Union[Predicate, Hole], ...]

    def __repr__(self) -> str:
        sep = " ? " if isinstance(self.logic, Hole) else f" {self.logic.value} "
        return sep.join(repr(p) for p in self.predicates)

    @property
    def is_complete(self) -> bool:
        if not self.predicates:
            return False  # present but size still undecided
        if len(self.predicates) > 1 and isinstance(self.logic, Hole):
            return False
        return all(
            not isinstance(p, Hole) and p.is_complete for p in self.predicates
        )


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY expression: ``agg(column) direction``.

    ``agg`` may be a hole while the AGG module has not yet fired.
    """

    agg: Union[AggOp, Hole]
    column: Union[ColumnRef, Hole]
    direction: Union[Direction, Hole]

    def __repr__(self) -> str:
        lhs = repr(self.column)
        if isinstance(self.agg, Hole):
            lhs = f"?({lhs})"
        elif self.agg.is_aggregate:
            lhs = f"{self.agg.value}({lhs})"
        direction = "?" if isinstance(self.direction, Hole) else self.direction.value
        return f"{lhs} {direction}"

    @property
    def is_complete(self) -> bool:
        return (not isinstance(self.column, Hole)
                and not isinstance(self.agg, Hole)
                and not isinstance(self.direction, Hole))


@dataclass(frozen=True)
class JoinEdge:
    """A foreign key-primary key join condition between two tables."""

    src_table: str
    src_column: str
    dst_table: str
    dst_column: str

    def __repr__(self) -> str:
        return (f"{self.src_table}.{self.src_column}="
                f"{self.dst_table}.{self.dst_column}")

    def canonical(self) -> Tuple[str, str, str, str]:
        """Direction-insensitive form, for equality of join paths."""
        a = (self.src_table, self.src_column)
        b = (self.dst_table, self.dst_column)
        return (*a, *b) if a <= b else (*b, *a)


@dataclass(frozen=True)
class JoinPath:
    """The FROM clause: an ordered set of tables and the FK-PK edges joining
    them. A single-table query has one table and no edges."""

    tables: Tuple[str, ...]
    edges: Tuple[JoinEdge, ...] = ()

    def __repr__(self) -> str:
        if not self.edges:
            return " x ".join(self.tables)
        return " JOIN ".join(self.tables)

    def __len__(self) -> int:
        return len(self.tables)

    def contains_table(self, table: str) -> bool:
        return table in self.tables

    def canonical(self) -> Tuple[Tuple[str, ...], Tuple[Tuple[str, ...], ...]]:
        """Order-insensitive form for join path equality."""
        return (
            tuple(sorted(self.tables)),
            tuple(sorted(edge.canonical() for edge in self.edges)),
        )


#: A clause slot: undecided (HOLE), absent (None), or a concrete value.
ClauseSlot = Union[Hole, None, object]


@dataclass(frozen=True)
class Query:
    """A (possibly partial) SPJA query.

    Clause-level fields follow a three-way convention:

    * :data:`HOLE` — the clause's presence has not been decided yet;
    * ``None`` — the clause was decided to be absent;
    * a concrete value — the clause is present (its elements may still
      contain nested holes).
    """

    select: Union[Tuple[Union[SelectItem, Hole], ...], Hole]
    join_path: Union[JoinPath, Hole]
    where: Union[Where, None, Hole]
    group_by: Union[Tuple[Union[ColumnRef, Hole], ...], None, Hole]
    having: Union[Tuple[Union[Predicate, Hole], ...], None, Hole]
    order_by: Union[Tuple[Union[OrderItem, Hole], ...], None, Hole]
    limit: Union[int, None, Hole]
    distinct: bool = False

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "Query":
        """The root of the search space: every element is a hole."""
        return cls(select=HOLE, join_path=HOLE, where=HOLE, group_by=HOLE,
                   having=HOLE, order_by=HOLE, limit=HOLE)

    def replace(self, **changes: object) -> "Query":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_complete(self) -> bool:
        """True when the query contains no holes anywhere."""
        return not any(True for _ in self.iter_holes())

    def iter_holes(self) -> Iterator[str]:
        """Yield a dotted path for every hole in the query."""
        if isinstance(self.select, Hole):
            yield "select"
        else:
            for i, item in enumerate(self.select):
                if isinstance(item, Hole):
                    yield f"select[{i}]"
                elif not item.is_complete:
                    yield f"select[{i}].column"
        if isinstance(self.join_path, Hole):
            yield "join_path"
        if isinstance(self.where, Hole):
            yield "where"
        elif self.where is not None:
            if not self.where.predicates:
                yield "where.predicates"
            if len(self.where.predicates) > 1 and isinstance(self.where.logic, Hole):
                yield "where.logic"
            for i, pred in enumerate(self.where.predicates):
                if isinstance(pred, Hole):
                    yield f"where[{i}]"
                    continue
                if isinstance(pred.column, Hole):
                    yield f"where[{i}].column"
                if isinstance(pred.op, Hole):
                    yield f"where[{i}].op"
                if isinstance(pred.value, Hole):
                    yield f"where[{i}].value"
        if isinstance(self.group_by, Hole):
            yield "group_by"
        elif self.group_by is not None:
            if not self.group_by:
                yield "group_by.columns"
            for i, col in enumerate(self.group_by):
                if isinstance(col, Hole):
                    yield f"group_by[{i}]"
        if isinstance(self.having, Hole):
            yield "having"
        elif self.having is not None:
            if not self.having:
                yield "having.predicates"
            for i, pred in enumerate(self.having):
                if isinstance(pred, Hole):
                    yield f"having[{i}]"
                    continue
                if isinstance(pred.column, Hole):
                    yield f"having[{i}].column"
                if isinstance(pred.op, Hole):
                    yield f"having[{i}].op"
                if isinstance(pred.value, Hole):
                    yield f"having[{i}].value"
        if isinstance(self.order_by, Hole):
            yield "order_by"
        elif self.order_by is not None:
            if not self.order_by:
                yield "order_by.items"
            for i, item in enumerate(self.order_by):
                if isinstance(item, Hole):
                    yield f"order_by[{i}]"
                elif not item.is_complete:
                    yield f"order_by[{i}].*"
        if isinstance(self.limit, Hole):
            yield "limit"

    def column_refs(self) -> Tuple[ColumnRef, ...]:
        """All concrete, non-star column references used by the query."""
        refs: list[ColumnRef] = []

        def add(col: object) -> None:
            if isinstance(col, ColumnRef) and not col.is_star:
                refs.append(col)

        if not isinstance(self.select, Hole):
            for item in self.select:
                if not isinstance(item, Hole):
                    add(item.column)
        if self.where is not None and not isinstance(self.where, Hole):
            for pred in self.where.predicates:
                if not isinstance(pred, Hole):
                    add(pred.column)
        if self.group_by is not None and not isinstance(self.group_by, Hole):
            for col in self.group_by:
                add(col)
        if self.having is not None and not isinstance(self.having, Hole):
            for pred in self.having:
                if not isinstance(pred, Hole):
                    add(pred.column)
        if self.order_by is not None and not isinstance(self.order_by, Hole):
            for item in self.order_by:
                if not isinstance(item, Hole):
                    add(item.column)
        return tuple(refs)

    def referenced_tables(self) -> Tuple[str, ...]:
        """Distinct tables referenced by columns, in first-use order."""
        seen: dict[str, None] = {}
        for ref in self.column_refs():
            seen.setdefault(ref.table, None)
        return tuple(seen)

    @property
    def has_aggregate(self) -> bool:
        """True if any projection or ORDER BY expression is aggregated."""
        if not isinstance(self.select, Hole):
            for item in self.select:
                if not isinstance(item, Hole) and item.is_aggregate:
                    return True
        if self.order_by is not None and not isinstance(self.order_by, Hole):
            for item in self.order_by:
                if (not isinstance(item, Hole)
                        and isinstance(item.agg, AggOp)
                        and item.agg.is_aggregate):
                    return True
        if self.having is not None and not isinstance(self.having, Hole):
            return len(self.having) > 0
        return False

    def __repr__(self) -> str:
        parts = [f"SELECT {self.select!r}"]
        parts.append(f"FROM {self.join_path!r}")
        if isinstance(self.where, Hole) or self.where is not None:
            parts.append(f"WHERE {self.where!r}")
        if isinstance(self.group_by, Hole) or self.group_by is not None:
            parts.append(f"GROUP BY {self.group_by!r}")
        if isinstance(self.having, Hole) or self.having is not None:
            parts.append(f"HAVING {self.having!r}")
        if isinstance(self.order_by, Hole) or self.order_by is not None:
            parts.append(f"ORDER BY {self.order_by!r}")
        if isinstance(self.limit, Hole) or self.limit is not None:
            parts.append(f"LIMIT {self.limit!r}")
        return "<Query " + " ".join(parts) + ">"
