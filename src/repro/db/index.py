"""Master inverted column index over all text columns of a database.

Section 4 of the paper: literal text values typed into the NLQ search bar
(after a double-quote) and into TSQ cells trigger an autocomplete search
over "a master inverted column index containing all text columns in the
database". The same index also lets the PBE baseline locate which columns
could have produced an example cell.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..sqlir.ast import ColumnRef
from ..sqlir.types import ColumnType, Value
from .database import Database


@dataclass(frozen=True)
class IndexHit:
    """One autocomplete/lookup hit: a value and the column containing it."""

    value: str
    column: ColumnRef

    def __repr__(self) -> str:
        return f"<IndexHit {self.value!r} in {self.column!r}>"


class InvertedColumnIndex:
    """Token- and prefix-searchable index of every text value in a DB."""

    def __init__(self) -> None:
        # full value (casefolded) -> set of columns containing it
        self._by_value: Dict[str, Set[ColumnRef]] = defaultdict(set)
        # token (casefolded) -> set of full values containing the token
        self._by_token: Dict[str, Set[str]] = defaultdict(set)
        # casefolded value -> one original spelling (for display)
        self._display: Dict[str, str] = {}
        self._num_values = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(cls, db: Database,
              max_values_per_column: Optional[int] = None
              ) -> "InvertedColumnIndex":
        """Index every distinct value of every text column in ``db``."""
        index = cls()
        for table in db.schema.tables:
            for column in table.columns:
                if column.type is not ColumnType.TEXT:
                    continue
                ref = ColumnRef(table=table.name, column=column.name)
                values = db.distinct_values(ref, limit=max_values_per_column)
                index.add_column(ref, values)
        return index

    def add_column(self, ref: ColumnRef, values: Iterable[Value]) -> None:
        for value in values:
            if value is None:
                continue
            text = str(value)
            key = text.casefold()
            self._by_value[key].add(ref)
            self._display.setdefault(key, text)
            for token in key.split():
                self._by_token[token].add(key)
            self._num_values += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def columns_for_value(self, value: Value) -> List[ColumnRef]:
        """All text columns containing ``value`` exactly (case-insensitive)."""
        key = str(value).casefold()
        return sorted(self._by_value.get(key, ()),)

    def contains_value(self, value: Value) -> bool:
        return str(value).casefold() in self._by_value

    def complete(self, prefix: str, limit: int = 10) -> List[IndexHit]:
        """Autocomplete: values whose text or any token starts with ``prefix``.

        This backs the front-end's double-quote literal tagging and the TSQ
        cell editor (Figure 4).
        """
        prefix_key = prefix.casefold().strip()
        if not prefix_key:
            return []
        matches: Set[str] = set()
        for key in self._by_value:
            if key.startswith(prefix_key):
                matches.add(key)
        first = prefix_key.split()[0]
        for token, keys in self._by_token.items():
            if token.startswith(first):
                for key in keys:
                    if prefix_key in key:
                        matches.add(key)
        hits: List[IndexHit] = []
        for key in sorted(matches)[:limit]:
            for column in sorted(self._by_value[key]):
                hits.append(IndexHit(value=self._display[key], column=column))
                if len(hits) >= limit:
                    return hits
        return hits

    @property
    def num_values(self) -> int:
        """Number of (value, column) postings in the index."""
        return self._num_values

    def __len__(self) -> int:
        return len(self._by_value)

    def __repr__(self) -> str:
        return (f"<InvertedColumnIndex {len(self)} values, "
                f"{self._num_values} postings>")
