"""Database substrate: schema model, SQLite wrapper, population, indexing."""

from .catalog import (
    introspect_sqlite,
    load_schema,
    open_database,
    save_database,
    save_schema,
    schema_from_dict,
    schema_to_dict,
)
from .database import Database, ExecutionStats, Row
from .index import IndexHit, InvertedColumnIndex
from .populate import ColumnSpec, DataGenerator, PopulationPlan
from .schema import Column, ForeignKey, Schema, Table, make_schema

__all__ = [
    "Column",
    "ColumnSpec",
    "DataGenerator",
    "Database",
    "ExecutionStats",
    "ForeignKey",
    "IndexHit",
    "InvertedColumnIndex",
    "PopulationPlan",
    "Row",
    "Schema",
    "Table",
    "introspect_sqlite",
    "load_schema",
    "make_schema",
    "open_database",
    "save_database",
    "save_schema",
    "schema_from_dict",
    "schema_to_dict",
]
