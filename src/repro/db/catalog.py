"""Schema ingestion and persistence.

Section 4.1: "New databases should have foreign key-primary key
constraints explicitly defined on the schema for the system to ingest (or
these can be manually specified on our administrator's interface)". This
module provides both paths:

* :func:`introspect_sqlite` reads an existing SQLite database's schema —
  tables, column affinities, primary keys and declared foreign keys — via
  the ``PRAGMA`` interface, producing a :class:`Schema` the system can
  run against directly;
* :func:`schema_to_dict` / :func:`schema_from_dict` serialise a schema to
  plain JSON-compatible dictionaries (the administrator's interface
  format), including manually added foreign keys and display names;
* :func:`save_database` / :func:`open_database` persist and reopen a
  populated database as a SQLite file.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import SchemaError
from ..sqlir.types import ColumnType
from .database import Database
from .schema import Column, ForeignKey, Schema, Table


def table_cardinalities(db: Database) -> Dict[str, int]:
    """Row counts for every table of ``db``'s schema.

    The catalog statistic behind the search subsystem's cost model
    (``repro.core.search.costmodel``): one ``COUNT(*)`` per table,
    issued as ``kind="meta"`` statements so probe-count accounting is
    untouched. Callers are expected to memoise — databases here are
    immutable during a synthesis run.
    """
    return {table.name: db.row_count(table.name)
            for table in db.schema.tables}


def introspect_sqlite(connection: sqlite3.Connection,
                      name: str = "ingested") -> Schema:
    """Build a :class:`Schema` from a live SQLite connection.

    Column types map through SQLite's affinity rules onto the two-valued
    text/number system; ``INTEGER PRIMARY KEY`` and single-column
    ``PRIMARY KEY`` declarations become primary keys; declared
    ``FOREIGN KEY`` constraints become FK-PK edges. Multi-column primary
    keys (typical of link tables) are treated as having no primary key,
    matching the paper's modelling of MAS.
    """
    cursor = connection.execute(
        "SELECT name FROM sqlite_master WHERE type = 'table' "
        "AND name NOT LIKE 'sqlite_%' ORDER BY name")
    table_names = [row[0] for row in cursor.fetchall()]
    if not table_names:
        raise SchemaError("database contains no tables")

    tables: List[Table] = []
    foreign_keys: List[ForeignKey] = []
    for table_name in table_names:
        info = connection.execute(
            f"PRAGMA table_info({_quote(table_name)})").fetchall()
        pk_columns = [row[1] for row in info if row[5]]
        single_pk = pk_columns[0] if len(pk_columns) == 1 else None
        columns = tuple(
            Column(name=row[1],
                   type=ColumnType.from_sqlite(row[2] or ""),
                   is_primary_key=(row[1] == single_pk))
            for row in info)
        tables.append(Table(name=table_name, columns=columns))

        for fk in connection.execute(
                f"PRAGMA foreign_key_list({_quote(table_name)})"):
            # columns: id, seq, table, from, to, on_update, on_delete, match
            dst_table, src_column, dst_column = fk[2], fk[3], fk[4]
            if dst_column is None:
                # implicit reference to the target's primary key
                target_info = connection.execute(
                    f"PRAGMA table_info({_quote(dst_table)})").fetchall()
                pks = [row[1] for row in target_info if row[5]]
                if len(pks) != 1:
                    continue
                dst_column = pks[0]
            foreign_keys.append(ForeignKey(
                src_table=table_name, src_column=src_column,
                dst_table=dst_table, dst_column=dst_column))

    return Schema(name=name, tables=tuple(tables),
                  foreign_keys=tuple(foreign_keys))


def _quote(identifier: str) -> str:
    escaped = identifier.replace('"', '""')
    return f'"{escaped}"'


# ----------------------------------------------------------------------
# JSON serialisation (the administrator's interface format)
# ----------------------------------------------------------------------
def schema_to_dict(schema: Schema) -> Dict:
    """A JSON-compatible description of a schema."""
    return {
        "name": schema.name,
        "tables": {
            table.name: [
                {"name": col.name, "type": col.type.value,
                 "primary_key": col.is_primary_key}
                for col in table.columns
            ]
            for table in schema.tables
        },
        "foreign_keys": [
            [fk.src_table, fk.src_column, fk.dst_table, fk.dst_column]
            for fk in schema.foreign_keys
        ],
        "display_names": dict(schema.display_names),
    }


def schema_from_dict(data: Dict) -> Schema:
    """Inverse of :func:`schema_to_dict`."""
    try:
        tables = tuple(
            Table(name=table_name, columns=tuple(
                Column(name=col["name"],
                       type=ColumnType(col["type"]),
                       is_primary_key=bool(col.get("primary_key")))
                for col in columns))
            for table_name, columns in data["tables"].items())
        foreign_keys = tuple(ForeignKey(*fk)
                             for fk in data.get("foreign_keys", ()))
        return Schema(name=data["name"], tables=tables,
                      foreign_keys=foreign_keys,
                      display_names=dict(data.get("display_names", {})))
    except (KeyError, TypeError, ValueError) as exc:
        raise SchemaError(f"malformed schema description: {exc}") from exc


def save_schema(schema: Schema, path: Union[str, Path]) -> None:
    """Write a schema description to a JSON file."""
    Path(path).write_text(json.dumps(schema_to_dict(schema), indent=2))


def load_schema(path: Union[str, Path]) -> Schema:
    """Read a schema description from a JSON file."""
    return schema_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# Database persistence
# ----------------------------------------------------------------------
def save_database(db: Database, path: Union[str, Path]) -> None:
    """Persist a (possibly in-memory) database to a SQLite file."""
    target = sqlite3.connect(str(path))
    try:
        db._conn.backup(target)
        target.commit()
    finally:
        target.close()


def open_database(path: Union[str, Path],
                  schema: Optional[Schema] = None,
                  name: Optional[str] = None) -> Database:
    """Open a SQLite file as a :class:`Database`.

    When no schema is given it is introspected from the file; pass an
    explicit schema to attach manually curated FK-PK constraints or
    display names.
    """
    connection = sqlite3.connect(str(path))
    if schema is None:
        schema = introspect_sqlite(connection,
                                   name=name or Path(path).stem)
    return Database(schema, connection=connection)
