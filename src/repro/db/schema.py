"""Relational schema model and the FK-PK schema graph.

The schema model backs every part of the system: the COL guidance module
enumerates its columns, progressive join path construction (Algorithm 2)
computes Steiner trees over its foreign key graph, and the verifier checks
projected column types against TSQ annotations.

Per Section 4.1 of the paper, foreign key-primary key constraints must be
explicitly declared on the schema for the system to ingest.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from ..errors import SchemaError
from ..sqlir.ast import ColumnRef, JoinEdge
from ..sqlir.types import ColumnType


@dataclass(frozen=True)
class Column:
    """A column: name, logical type, and primary-key marker."""

    name: str
    type: ColumnType
    is_primary_key: bool = False

    def __repr__(self) -> str:
        pk = " PK" if self.is_primary_key else ""
        return f"<Column {self.name}:{self.type}{pk}>"


@dataclass(frozen=True)
class Table:
    """A table and its ordered list of columns."""

    name: str
    columns: Tuple[Column, ...]

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"table {self.name!r} has duplicate columns")

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"no column {name!r} in table {self.name!r}")

    def has_column(self, name: str) -> bool:
        return any(col.name == name for col in self.columns)

    @property
    def primary_key(self) -> Optional[Column]:
        for col in self.columns:
            if col.is_primary_key:
                return col
        return None

    def __repr__(self) -> str:
        return f"<Table {self.name} ({len(self.columns)} cols)>"


@dataclass(frozen=True)
class ForeignKey:
    """A declared FK-PK relationship between two tables."""

    src_table: str
    src_column: str
    dst_table: str
    dst_column: str

    def as_join_edge(self) -> JoinEdge:
        return JoinEdge(src_table=self.src_table, src_column=self.src_column,
                        dst_table=self.dst_table, dst_column=self.dst_column)

    def __repr__(self) -> str:
        return (f"<FK {self.src_table}.{self.src_column} -> "
                f"{self.dst_table}.{self.dst_column}>")


@dataclass
class Schema:
    """A database schema: tables plus declared foreign keys.

    ``name`` identifies the database (e.g. ``mas`` or a synthetic Spider
    database id). Natural-language friendly names (Section 4.1 recommends
    complete words over abbreviations) can be attached per table/column via
    ``display_names``; the guidance model falls back to identifier
    splitting when absent.
    """

    name: str
    tables: Tuple[Table, ...]
    foreign_keys: Tuple[ForeignKey, ...] = ()
    display_names: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        names = [t.name for t in self.tables]
        if len(set(names)) != len(names):
            raise SchemaError(f"schema {self.name!r} has duplicate tables")
        self._tables_by_name = {t.name: t for t in self.tables}
        for fk in self.foreign_keys:
            self._check_fk(fk)
        self._graph: Optional[nx.MultiGraph] = None

    def _check_fk(self, fk: ForeignKey) -> None:
        src = self.table(fk.src_table)
        dst = self.table(fk.dst_table)
        if not src.has_column(fk.src_column):
            raise SchemaError(f"foreign key {fk!r}: missing source column")
        if not dst.has_column(fk.dst_column):
            raise SchemaError(f"foreign key {fk!r}: missing target column")

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self._tables_by_name[name]
        except KeyError:
            raise SchemaError(
                f"no table {name!r} in schema {self.name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables_by_name

    def has_column(self, table: str, column: str) -> bool:
        return self.has_table(table) and self.table(table).has_column(column)

    def column(self, ref: ColumnRef) -> Column:
        """Resolve a :class:`ColumnRef` to its :class:`Column`."""
        return self.table(ref.table).column(ref.column)

    def column_type(self, ref: ColumnRef) -> ColumnType:
        if ref.is_star:
            return ColumnType.NUMBER  # COUNT(*) is the only use of star
        return self.column(ref).type

    def iter_column_refs(self) -> Iterator[ColumnRef]:
        """All columns of the schema as :class:`ColumnRef`, in schema order.

        This is the enumeration order used by the NoGuide ablation
        (Section 5.4.3: "column attributes were enumerated following the
        order of the schema metadata").
        """
        for table in self.tables:
            for col in table.columns:
                yield ColumnRef(table=table.name, column=col.name)

    def display_name(self, key: str) -> str:
        """Human-readable name of ``table`` or ``table.column``."""
        if key in self.display_names:
            return self.display_names[key]
        base = key.split(".")[-1]
        return base.replace("_", " ")

    # ------------------------------------------------------------------
    # Statistics (Table 5 of the paper)
    # ------------------------------------------------------------------
    @property
    def num_tables(self) -> int:
        return len(self.tables)

    @property
    def num_columns(self) -> int:
        return sum(len(t.columns) for t in self.tables)

    @property
    def num_foreign_keys(self) -> int:
        return len(self.foreign_keys)

    # ------------------------------------------------------------------
    # Graph view (for Steiner-tree join path construction)
    # ------------------------------------------------------------------
    def graph(self) -> nx.MultiGraph:
        """The schema graph: nodes are tables, edges are FK-PK links.

        Edge weights default to 1 as in Section 3.3.4 ("by default, all
        edge weights are set to 1"). A multigraph is used because two
        tables may be linked by more than one foreign key.
        """
        if self._graph is None:
            graph = nx.MultiGraph()
            graph.add_nodes_from(t.name for t in self.tables)
            for fk in self.foreign_keys:
                graph.add_edge(fk.src_table, fk.dst_table,
                               foreign_key=fk, weight=1)
            self._graph = graph
        return self._graph

    def foreign_keys_between(self, left: str, right: str) -> List[ForeignKey]:
        """All declared FKs connecting two tables, in either direction."""
        found = []
        for fk in self.foreign_keys:
            if {fk.src_table, fk.dst_table} == {left, right}:
                found.append(fk)
        return found

    def foreign_keys_from(self, table: str) -> List[ForeignKey]:
        """FKs whose source (referencing side) is ``table``."""
        return [fk for fk in self.foreign_keys if fk.src_table == table]

    def foreign_keys_into(self, table: str) -> List[ForeignKey]:
        """FKs whose destination (referenced side) is ``table``."""
        return [fk for fk in self.foreign_keys if fk.dst_table == table]

    # ------------------------------------------------------------------
    # DDL
    # ------------------------------------------------------------------
    def ddl(self) -> List[str]:
        """CREATE TABLE statements for SQLite."""
        from ..sqlir.render import quote_ident

        statements = []
        for table in self.tables:
            pieces = []
            for col in table.columns:
                decl = f"{quote_ident(col.name)} {col.type.to_sqlite()}"
                if col.is_primary_key:
                    decl += " PRIMARY KEY"
                pieces.append(decl)
            for fk in self.foreign_keys:
                if fk.src_table != table.name:
                    continue
                pieces.append(
                    f"FOREIGN KEY ({quote_ident(fk.src_column)}) REFERENCES "
                    f"{quote_ident(fk.dst_table)}({quote_ident(fk.dst_column)})")
            statements.append(
                f"CREATE TABLE {quote_ident(table.name)} "
                f"({', '.join(pieces)})")
        statements.extend(self._index_ddl())
        return statements

    def _index_ddl(self) -> List[str]:
        """Secondary indexes on FK columns and text columns.

        Verification issues many ``SELECT 1 ... WHERE col = value LIMIT 1``
        probes (Section 3.4); these indexes keep each probe sub-millisecond
        on the evaluation databases.
        """
        from ..sqlir.render import quote_ident
        from ..sqlir.types import ColumnType

        indexed: set = set()
        statements = []

        def add(table: str, column: str) -> None:
            key = (table, column)
            if key in indexed:
                return
            indexed.add(key)
            statements.append(
                f"CREATE INDEX idx_{table}_{column} ON "
                f"{quote_ident(table)}({quote_ident(column)})")

        for fk in self.foreign_keys:
            add(fk.src_table, fk.src_column)
        for table in self.tables:
            for col in table.columns:
                if col.type is ColumnType.TEXT and not col.is_primary_key:
                    add(table.name, col.name)
        return statements

    def __repr__(self) -> str:
        return (f"<Schema {self.name}: {self.num_tables} tables, "
                f"{self.num_columns} columns, {self.num_foreign_keys} FKs>")


def make_schema(
    name: str,
    tables: Dict[str, Sequence[Tuple[str, ColumnType]]],
    foreign_keys: Sequence[Tuple[str, str, str, str]] = (),
    primary_keys: Optional[Dict[str, str]] = None,
    display_names: Optional[Dict[str, str]] = None,
) -> Schema:
    """Convenience constructor from plain dictionaries.

    ``tables`` maps table name to ``[(column, type), ...]``; ``primary_keys``
    maps table name to its PK column — map a table to ``None`` explicitly
    for link tables without a PK; unmapped tables default to the first
    column when its name ends with ``id``. ``foreign_keys`` is a list of
    ``(src_table, src_column, dst_table, dst_column)`` tuples.
    """
    primary_keys = primary_keys or {}
    table_objs = []
    for table_name, cols in tables.items():
        if table_name in primary_keys:
            pk = primary_keys[table_name]
        elif cols and cols[0][0].endswith("id"):
            pk = cols[0][0]
        else:
            pk = None
        columns = tuple(
            Column(name=col_name, type=col_type,
                   is_primary_key=(col_name == pk))
            for col_name, col_type in cols)
        table_objs.append(Table(name=table_name, columns=columns))
    fks = tuple(ForeignKey(*fk) for fk in foreign_keys)
    return Schema(name=name, tables=tuple(table_objs), foreign_keys=fks,
                  display_names=dict(display_names or {}))
