"""Synthetic data population for schemas.

Stands in for the real database contents (MAS, Spider) that the paper's
evaluation queries run against. Generation is deterministic given a seed,
respects declared FK-PK constraints (foreign key columns only take values
that exist in the referenced primary key), and gives every text column a
vocabulary drawn from a per-column word pool so that TSQ example tuples and
autocomplete behave realistically.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import DatasetError
from ..sqlir.types import ColumnType, Value
from .database import Database
from .schema import Column, Schema, Table

#: Base lexicon used to synthesise text values. Kept intentionally small
#: and word-like so NLQ literal tagging and autocomplete have realistic
#: token statistics.
_LEXICON = (
    "amber basil cedar delta ember fable garnet harbor indigo juniper "
    "keystone lumen meadow nectar onyx prairie quartz russet sierra timber "
    "umbra velvet willow xenon yonder zephyr apex bramble crescent dusk "
    "elm fjord grove hollow isle jade knoll lagoon mesa nook orchard pine "
    "quarry ridge summit thicket upland vale wharf yarrow zenith arbor "
    "breeze cinder drift eddy flare gleam haze iris jetty kelp loam mist "
    "north opal pearl quill reef shoal tide vista wren"
).split()


@dataclass
class ColumnSpec:
    """Optional per-column generation directives.

    ``pool`` fixes the candidate value set; ``low``/``high`` bound numeric
    values; ``unique`` forces distinct values; ``null_rate`` introduces
    NULLs (kept at 0 by default because the paper's verification probes
    treat NULL cells as unmatchable).
    """

    pool: Optional[Sequence[Value]] = None
    low: int = 0
    high: int = 10_000
    unique: bool = False
    null_rate: float = 0.0


@dataclass
class PopulationPlan:
    """Sizing and per-column directives for a schema population run."""

    rows_per_table: Dict[str, int] = field(default_factory=dict)
    default_rows: int = 100
    column_specs: Dict[str, ColumnSpec] = field(default_factory=dict)

    def rows_for(self, table: str) -> int:
        return self.rows_per_table.get(table, self.default_rows)

    def spec_for(self, table: str, column: str) -> ColumnSpec:
        return self.column_specs.get(f"{table}.{column}", ColumnSpec())


class DataGenerator:
    """Deterministic synthetic data generator for a schema."""

    def __init__(self, schema: Schema, seed: int = 0):
        self.schema = schema
        self._rng = random.Random(seed)
        # Map table -> planned primary key values, computed before any rows
        # are generated so FK columns can reference them even across cycles.
        self._pk_values: Dict[str, List[Value]] = {}

    # ------------------------------------------------------------------
    def populate(self, db: Database,
                 plan: Optional[PopulationPlan] = None) -> Dict[str, int]:
        """Fill ``db`` with synthetic rows; returns rows inserted per table."""
        plan = plan or PopulationPlan()
        self._plan_primary_keys(plan)
        inserted: Dict[str, int] = {}
        for table in self._insertion_order():
            rows = self._generate_rows(table, plan)
            inserted[table.name] = db.insert_rows(table.name, rows)
        return inserted

    # ------------------------------------------------------------------
    def _plan_primary_keys(self, plan: PopulationPlan) -> None:
        for table in self.schema.tables:
            count = plan.rows_for(table.name)
            pk = table.primary_key
            if pk is None:
                continue
            if pk.type is ColumnType.NUMBER:
                values: List[Value] = list(range(1, count + 1))
            else:
                values = [f"{table.name}_{i}" for i in range(1, count + 1)]
            self._pk_values[table.name] = values

    def _insertion_order(self) -> List[Table]:
        """Referenced tables first so FK constraints hold at insert time.

        Cycles (rare in practice) fall back to declaration order; SQLite
        enforcement is deferred until commit in that case.
        """
        order: List[Table] = []
        placed: set[str] = set()
        remaining = list(self.schema.tables)
        while remaining:
            progressed = False
            for table in list(remaining):
                deps = {fk.dst_table
                        for fk in self.schema.foreign_keys_from(table.name)
                        if fk.dst_table != table.name}
                if deps <= placed:
                    order.append(table)
                    placed.add(table.name)
                    remaining.remove(table)
                    progressed = True
            if not progressed:
                order.extend(remaining)
                break
        return order

    def _generate_rows(self, table: Table,
                       plan: PopulationPlan) -> List[Tuple[Value, ...]]:
        count = plan.rows_for(table.name)
        columns = table.columns
        fk_by_column = {
            fk.src_column: fk
            for fk in self.schema.foreign_keys_from(table.name)
        }
        generators = [
            self._column_generator(table, col, fk_by_column, plan, count)
            for col in columns
        ]
        rows = []
        seen: set[Tuple[Value, ...]] = set()
        attempts = 0
        while len(rows) < count and attempts < count * 20:
            attempts += 1
            row = tuple(gen() for gen in generators)
            # Avoid duplicate PKs (the PK generator is already unique, but
            # link tables without PKs need whole-row dedup).
            if table.primary_key is None:
                if row in seen:
                    continue
                seen.add(row)
            rows.append(row)
        return rows

    def _column_generator(self, table: Table, column: Column,
                          fk_by_column: Dict[str, object],
                          plan: PopulationPlan, count: int):
        rng = self._rng
        spec = plan.spec_for(table.name, column.name)

        if column.is_primary_key:
            values = iter(self._pk_values[table.name])
            return lambda: next(values)

        fk = fk_by_column.get(column.name)
        if fk is not None:
            parent_values = self._pk_values.get(fk.dst_table)
            if not parent_values:
                raise DatasetError(
                    f"table {fk.dst_table!r} referenced by "
                    f"{table.name}.{column.name} has no primary key values")
            return lambda: rng.choice(parent_values)

        if spec.pool is not None:
            pool = list(spec.pool)
            if spec.unique:
                if len(pool) < count:
                    raise DatasetError(
                        f"unique pool for {table.name}.{column.name} is "
                        f"smaller than the requested row count")
                rng.shuffle(pool)
                values = iter(pool)
                return lambda: next(values)
            return lambda: rng.choice(pool)

        if column.type is ColumnType.NUMBER:
            low, high = spec.low, spec.high
            if spec.unique:
                choices = rng.sample(range(low, max(high, low + count * 2)),
                                     count)
                values = iter(choices)
                return lambda: next(values)
            return lambda: rng.randint(low, high)

        # Text column: compose two lexicon words plus a discriminating
        # suffix so values are unique-ish but share token statistics.
        prefix = column.name[:3]
        if spec.unique:
            made: set[str] = set()

            def unique_text() -> str:
                while True:
                    value = (f"{rng.choice(_LEXICON)} "
                             f"{rng.choice(_LEXICON)} {prefix}{rng.randint(1, 99999)}")
                    if value not in made:
                        made.add(value)
                        return value

            return unique_text
        pool_size = max(4, count // 3)
        pool = [f"{rng.choice(_LEXICON)} {rng.choice(_LEXICON)}"
                for _ in range(pool_size)]
        return lambda: rng.choice(pool)
