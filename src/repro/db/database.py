"""SQLite-backed database wrapper.

The verifier issues many small probe queries (``SELECT 1 ... LIMIT 1``,
Section 3.4), so this wrapper keeps a single connection per database,
counts executed statements (used to measure verification cost in the
ablation benchmarks), and supports per-statement execution budgets via
SQLite progress handlers.
"""

from __future__ import annotations

import hashlib
import sqlite3
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .. import faults
from ..errors import ExecutionError, ExecutionTimeout
from ..faults import RetryPolicy
from ..sqlir.ast import ColumnRef, Query
from ..sqlir.render import quote_ident, to_sql
from ..sqlir.types import Value
from .schema import Schema

#: Rows returned by query execution.
Row = Tuple[object, ...]


@dataclass
class ExecutionStats:
    """Counters describing database work done so far."""

    statements: int = 0
    rows_fetched: int = 0
    timeouts: int = 0
    retries: int = 0
    per_kind: Dict[str, int] = field(default_factory=dict)

    def record(self, kind: str, rows: int) -> None:
        self.statements += 1
        self.rows_fetched += rows
        self.per_kind[kind] = self.per_kind.get(kind, 0) + 1

    def snapshot(self) -> "ExecutionStats":
        return ExecutionStats(statements=self.statements,
                              rows_fetched=self.rows_fetched,
                              timeouts=self.timeouts,
                              retries=self.retries,
                              per_kind=dict(self.per_kind))

    def delta_since(self, before: "ExecutionStats") -> "ExecutionStats":
        """Counters accrued since ``before`` (a prior :meth:`snapshot`)."""
        per_kind = {}
        for kind, count in self.per_kind.items():
            delta = count - before.per_kind.get(kind, 0)
            if delta:
                per_kind[kind] = delta
        return ExecutionStats(statements=self.statements - before.statements,
                              rows_fetched=self.rows_fetched
                              - before.rows_fetched,
                              timeouts=self.timeouts - before.timeouts,
                              retries=self.retries - before.retries,
                              per_kind=per_kind)


class Database:
    """A SQLite database together with its declared :class:`Schema`."""

    #: Progress-handler granularity (VM instructions between checks).
    _PROGRESS_STEP = 10_000

    #: Per-connection prepared-statement cache size. The probe planner
    #: collapses probe families onto shared parameterised SQL strings,
    #: which the sqlite3 module maps to cached prepared statements —
    #: sized well above the distinct probe structures of a task so plans
    #: survive interleaved probe/meta traffic (the stdlib default of 128
    #: thrashes on wide schemas).
    _STATEMENT_CACHE = 512

    def __init__(self, schema: Schema,
                 connection: Optional[sqlite3.Connection] = None):
        self.schema = schema
        self._conn = connection or sqlite3.connect(
            ":memory:", cached_statements=self._STATEMENT_CACHE)
        self._conn.execute("PRAGMA foreign_keys = ON")
        self.stats = ExecutionStats()
        self._content_hash: Optional[str] = None
        #: True while an :meth:`interruptible` guard is installed on this
        #: connection — lets probe-level error handling distinguish a
        #: budget interrupt (must propagate, nothing may be cached) from
        #: a genuinely failing statement (draws no conclusion, sound to
        #: treat as satisfied).
        self.interrupt_armed = False

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, schema: Schema) -> "Database":
        """Create an empty in-memory database from a schema."""
        db = cls(schema)
        for statement in schema.ddl():
            db._conn.execute(statement)
        db._conn.commit()
        return db

    # ------------------------------------------------------------------
    # Forking (per-thread connections for the parallel verifier stage)
    # ------------------------------------------------------------------
    @staticmethod
    def supports_snapshots() -> bool:
        """Whether this sqlite3 build can serialize in-memory databases."""
        return hasattr(sqlite3.Connection, "serialize")

    def snapshot(self) -> bytes:
        """Serialize the database contents to bytes.

        Must be called from the thread that owns this connection; the
        returned payload can be rehydrated from any thread with
        :meth:`from_snapshot`.
        """
        try:
            return self._conn.serialize()
        except (AttributeError, sqlite3.Error) as exc:
            raise ExecutionError(f"cannot snapshot database: {exc}") from exc

    @classmethod
    def from_snapshot(cls, schema: Schema, payload: bytes) -> "Database":
        """Rehydrate a snapshot into a fresh in-memory connection.

        SQLite connections are bound to their creating thread, so worker
        threads call this themselves to get an independent read view of
        the same data — no locks, and probe statements run truly
        concurrently because SQLite releases the GIL while stepping.
        """
        # check_same_thread=False lets the pool close forked connections
        # after shutdown; each fork is still used by only one thread.
        connection = sqlite3.connect(":memory:", check_same_thread=False,
                                     cached_statements=cls._STATEMENT_CACHE)
        connection.deserialize(payload)
        return cls(schema, connection=connection)

    def fork(self) -> "Database":
        """An independent same-thread copy (snapshot + rehydrate)."""
        return Database.from_snapshot(self.schema, self.snapshot())

    def content_hash(self) -> str:
        """A stable hex digest of the schema DDL plus every table's rows.

        Two databases with the same schema and the same row *sets* hash
        identically regardless of insertion order, so the digest can key
        persisted artifacts (the disk-backed probe cache) across
        processes: probe answers are facts of the database contents, and
        the hash changing is exactly the signal that they went stale.

        The digest is memoised and invalidated by :meth:`insert_rows`;
        statements issued here bypass :attr:`stats` so hashing a database
        never perturbs execution counters.
        """
        if self._content_hash is None:
            digest = hashlib.sha256()
            for statement in self.schema.ddl():
                digest.update(statement.encode("utf-8"))
                digest.update(b"\x00")
            for table in self.schema.tables:
                digest.update(table.name.encode("utf-8"))
                digest.update(b"\x1e")
                cursor = self._conn.execute(
                    f"SELECT * FROM {quote_ident(table.name)}")
                for row in sorted(repr(r) for r in cursor.fetchall()):
                    digest.update(row.encode("utf-8"))
                    digest.update(b"\x1f")
            self._content_hash = digest.hexdigest()
        return self._content_hash

    def merge_stats(self, other: "ExecutionStats") -> None:
        """Fold a forked connection's counters into this one's stats."""
        self.stats.statements += other.statements
        self.stats.rows_fetched += other.rows_fetched
        self.stats.timeouts += other.timeouts
        self.stats.retries += other.retries
        for kind, count in other.per_kind.items():
            self.stats.per_kind[kind] = \
                self.stats.per_kind.get(kind, 0) + count

    def insert_rows(self, table: str, rows: Iterable[Sequence[Value]]) -> int:
        """Bulk-insert rows into ``table``; returns the number inserted."""
        table_obj = self.schema.table(table)
        columns = ", ".join(quote_ident(c.name) for c in table_obj.columns)
        holes = ", ".join("?" for _ in table_obj.columns)
        sql = f"INSERT INTO {quote_ident(table)} ({columns}) VALUES ({holes})"
        rows = list(rows)
        try:
            self._conn.executemany(sql, rows)
        except sqlite3.Error as exc:
            raise ExecutionError(f"insert into {table!r} failed: {exc}") from exc
        self._conn.commit()
        self._content_hash = None  # contents changed: digest is stale
        return len(rows)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    #: Bounded backoff for transient failures (lock contention and
    #: injected faults). Short delays: probes are sub-millisecond, and a
    #: locked in-memory database clears as soon as the writer commits.
    RETRY_POLICY = RetryPolicy(attempts=3, base_delay=0.01, max_delay=0.25)

    def execute(self, sql: str, params: Sequence[Value] = (),
                max_rows: Optional[int] = None,
                kind: str = "query") -> List[Row]:
        """Execute a SELECT statement and fetch (up to ``max_rows``) rows.

        Transient failures ("database is locked"/busy, and injected
        faults marked ``transient``) are retried under
        :attr:`RETRY_POLICY`; an exhausted budget propagates the
        transient error so callers never mistake it for a query-shape
        failure (in particular the probe cache must not memoise it).
        Budget interrupts ("interrupted") always propagate immediately —
        the ``interruptible()`` guard turns them into
        :class:`ExecutionTimeout` at scope exit.
        """
        # The memoised content hash keys persisted probe caches, so it
        # must notice *any* mutation — including UPDATE/DELETE routed
        # through here despite the SELECT contract. total_changes is a
        # cheap connection-level write counter.
        changes_before = self._conn.total_changes
        delays = None
        try:
            while True:
                injector = faults.ACTIVE
                try:
                    if injector is not None:
                        faults.fire_db_execute(
                            injector, armed=self.interrupt_armed)
                    cursor = self._conn.execute(sql, tuple(params))
                    if max_rows is None:
                        rows = cursor.fetchall()
                    else:
                        rows = cursor.fetchmany(max_rows)
                    break
                except (sqlite3.Error, faults.InjectedFault) as exc:
                    if isinstance(exc, faults.InjectedFault):
                        error = exc
                    else:
                        error = ExecutionError(
                            f"failed to execute {sql!r}: {exc}")
                    if (faults.is_transient(error)
                            and "interrupted" not in str(error)):
                        if delays is None:
                            delays = self.RETRY_POLICY.delays()
                        delay = next(delays, None)
                        if delay is not None:
                            self.stats.retries += 1
                            if (injector is not None
                                    and isinstance(exc,
                                                   faults.InjectedFault)):
                                injector.note_absorbed(exc.point)
                            time.sleep(delay)
                            continue
                    if (injector is not None
                            and isinstance(exc, faults.InjectedFault)):
                        injector.note_surfaced(exc.point)
                        raise
                    raise error from exc
        finally:
            if self._conn.total_changes != changes_before:
                self._content_hash = None
        self.stats.record(kind, len(rows))
        return rows

    def execute_query(self, query: Query,
                      max_rows: Optional[int] = None) -> List[Row]:
        """Render and execute a complete query AST."""
        return self.execute(to_sql(query), max_rows=max_rows, kind="full")

    def exists(self, sql: str, params: Sequence[Value] = ()) -> bool:
        """Run a ``SELECT 1 ... LIMIT 1`` style probe; True if non-empty."""
        return bool(self.execute(sql, params, max_rows=1, kind="probe"))

    def interruptible(self, budget_ms: int):
        """Context manager interrupting statements after ``budget_ms``.

        Usage::

            with db.interruptible(200):
                rows = db.execute(sql)

        Raises :class:`ExecutionTimeout` when the budget is exceeded.
        """
        return _InterruptGuard(self, budget_ms)

    # ------------------------------------------------------------------
    # Introspection helpers used by the PBE baseline and autocomplete
    # ------------------------------------------------------------------
    def row_count(self, table: str) -> int:
        rows = self.execute(
            f"SELECT COUNT(*) FROM {quote_ident(table)}", kind="meta")
        return int(rows[0][0])

    def distinct_values(self, ref: ColumnRef,
                        limit: Optional[int] = None) -> List[Value]:
        """Distinct non-null values of a column, optionally limited."""
        sql = (f"SELECT DISTINCT {quote_ident(ref.column)} "
               f"FROM {quote_ident(ref.table)} "
               f"WHERE {quote_ident(ref.column)} IS NOT NULL")
        if limit is not None:
            sql += f" LIMIT {int(limit)}"
        return [row[0] for row in self.execute(sql, kind="meta")]

    def column_min_max(self, ref: ColumnRef) -> Tuple[Optional[Value],
                                                      Optional[Value]]:
        """The (min, max) of a column; used for AVG range verification."""
        sql = (f"SELECT MIN({quote_ident(ref.column)}), "
               f"MAX({quote_ident(ref.column)}) "
               f"FROM {quote_ident(ref.table)}")
        rows = self.execute(sql, kind="meta")
        return (rows[0][0], rows[0][1]) if rows else (None, None)

    def value_exists(self, ref: ColumnRef, value: Value) -> bool:
        """True when ``value`` appears in the given column."""
        sql = (f"SELECT 1 FROM {quote_ident(ref.table)} "
               f"WHERE {quote_ident(ref.column)} = ? LIMIT 1")
        return self.exists(sql, (value,))

    def close(self) -> None:
        self._conn.close()

    def __repr__(self) -> str:
        return f"<Database {self.schema.name}>"


class _InterruptGuard:
    """Installs a progress handler that interrupts long statements."""

    def __init__(self, db: Database, budget_ms: int):
        self._db = db
        self._budget_ms = budget_ms

    def __enter__(self) -> Database:
        import time

        deadline = time.monotonic() + self._budget_ms / 1000.0

        def handler() -> int:
            return 1 if time.monotonic() > deadline else 0

        self._db._conn.set_progress_handler(handler, Database._PROGRESS_STEP)
        self._db.interrupt_armed = True
        return self._db

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._db._conn.set_progress_handler(None, 0)
        self._db.interrupt_armed = False
        if (exc_type is not None
                and issubclass(exc_type, ExecutionError)
                and not issubclass(exc_type, ExecutionTimeout)
                and "interrupted" in str(exc)):
            self._db.stats.timeouts += 1
            raise ExecutionTimeout(str(exc)) from exc
        return False
