"""Baseline systems: NLI, SQuID-like PBE, and GPQE ablations."""

from .ablations import (
    ABLATION_VARIANTS,
    make_duoquest,
    make_noguide,
    make_nopq,
)
from .nli import NLIBaseline
from .squid import SquidOutcome, SquidPBE

__all__ = [
    "ABLATION_VARIANTS",
    "NLIBaseline",
    "SquidOutcome",
    "SquidPBE",
    "make_duoquest",
    "make_noguide",
    "make_nopq",
]
