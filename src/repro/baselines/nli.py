"""The NLI baseline: SyntaxSQLNet adapted for ranked enumeration.

Section 5.1.1 of the paper compares Duoquest against SyntaxSQLNet "as a
representative end-to-end neural network NLI", modified (as described in
Section 3.3.2) to produce a ranked list of candidate queries rather than a
single output. That is precisely GPQE run *without* a table sketch query:
the same guidance model, the same enumeration order, semantic pruning, and
literal-coverage filtering (the NLI is given the NLQ and literals,
Section 5.4.1), but no TSQ verification of any kind.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Optional

from ..core.duoquest import Duoquest, SynthesisResult
from ..core.enumerator import Candidate, EnumeratorConfig
from ..db.database import Database
from ..guidance.base import GuidanceModel
from ..nlq.literals import NLQuery
from ..sqlir.ast import Query


class NLIBaseline:
    """Ranked-list NLI: guided enumeration with no TSQ."""

    name = "NLI"

    def __init__(self, db: Database, model: GuidanceModel,
                 config: Optional[EnumeratorConfig] = None):
        self._system = Duoquest(db, model=model, config=config)

    @property
    def config(self) -> EnumeratorConfig:
        return self._system.config

    def synthesize(self, nlq: NLQuery,
                   gold: Optional[Query] = None,
                   task_id: str = "",
                   stop_when: Optional[Callable[[Candidate], bool]] = None,
                   ) -> SynthesisResult:
        """Enumerate candidates for the NLQ alone (no TSQ)."""
        return self._system.synthesize(nlq, tsq=None, gold=gold,
                                       task_id=task_id, stop_when=stop_when)
