"""SQuID-like programming-by-example baseline.

Stands in for SQuID (Fariha & Meliou, 2019), the PBE system of the paper's
user study and simulation: an *abductive*, open-world PBE engine that takes
example output tuples (no schema knowledge required) and produces a set of
projection columns plus candidate selection-predicate "filters".

Capability envelope (Section 5.4.2 of the paper): no projected aggregates,
no numeric projections, no negation/LIKE predicates, no sorting/limit.
Tasks outside the envelope are reported *unsupported*, which reproduces the
U# columns of Figures 10 and 11.

Correctness judgment follows the paper: a supported task counts as Correct
when the selection predicates of the desired query are a subset of the
produced candidate filters (ignoring differences in specific literal
values) and the projection matches.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.joins import JoinPathBuilder
from ..db.database import Database
from ..db.index import InvertedColumnIndex
from ..errors import UnsupportedTaskError
from ..sqlir.ast import (
    ColumnRef,
    CompOp,
    Hole,
    JoinPath,
    Predicate,
    Query,
    SelectItem,
    Where,
)
from ..sqlir.render import alias_map, quote_ident, render_from
from ..sqlir.types import ColumnType, Value


@dataclass
class SquidOutcome:
    """What the PBE system produced for one set of examples."""

    projections: List[Tuple[ColumnRef, ...]] = field(default_factory=list)
    join_path: Optional[JoinPath] = None
    #: filter column -> candidate values shared by all examples
    filters: Dict[ColumnRef, Set[Value]] = field(default_factory=dict)
    #: link table -> minimum related-row count across examples (SQuID's
    #: abduced cardinality filters, e.g. "has at least N papers")
    count_filters: Dict[str, int] = field(default_factory=dict)
    runtime: float = 0.0
    failure: str = ""

    @property
    def produced(self) -> bool:
        return bool(self.projections)


class SquidPBE:
    """Abductive PBE over exact example tuples."""

    name = "PBE"

    def __init__(self, db: Database,
                 index: Optional[InvertedColumnIndex] = None,
                 max_projection_combos: int = 8):
        self.db = db
        self.schema = db.schema
        self.index = index or InvertedColumnIndex.build(db)
        self.joins = JoinPathBuilder(self.schema, max_extensions=1)
        self.max_projection_combos = max_projection_combos

    # ------------------------------------------------------------------
    # Capability envelope
    # ------------------------------------------------------------------
    def supports_task(self, gold: Query) -> Tuple[bool, str]:
        """Whether the desired query is inside SQuID's envelope."""
        assert not isinstance(gold.select, Hole)
        for item in gold.select:
            assert isinstance(item, SelectItem)
            if item.is_aggregate:
                return False, "projected aggregate"
            assert isinstance(item.column, ColumnRef)
            if self.schema.column_type(item.column) is ColumnType.NUMBER:
                return False, "numeric projection"
        if isinstance(gold.where, Where):
            for pred in gold.where.predicates:
                if isinstance(pred, Predicate) and pred.op in (
                        CompOp.NE, CompOp.LIKE):
                    return False, f"{pred.op.value} predicate"
        # HAVING-style cardinality constraints (e.g. "authors with more
        # than 5 papers") are inside SQuID's envelope: only *projected*
        # aggregates are unsupported (footnote 3 of the paper).
        if gold.order_by is not None and not isinstance(gold.order_by, Hole):
            return False, "sorted output"
        if isinstance(gold.limit, int):
            return False, "top-k output"
        return True, ""

    def supports_examples(self, examples: Sequence[Sequence[Value]]
                          ) -> Tuple[bool, str]:
        """Examples with numeric or missing cells are outside the envelope."""
        if not examples:
            return False, "no examples provided"
        for example in examples:
            for value in example:
                if value is None:
                    return False, "partial tuple"
                if isinstance(value, (int, float)):
                    return False, "numeric example cell"
        return True, ""

    # ------------------------------------------------------------------
    # Synthesis
    # ------------------------------------------------------------------
    def run(self, examples: Sequence[Sequence[Value]]) -> SquidOutcome:
        """Abduce projections, a join path and candidate filters."""
        start = time.monotonic()
        ok, reason = self.supports_examples(examples)
        if not ok:
            raise UnsupportedTaskError(reason)

        width = len(examples[0])
        per_position = self._candidate_columns(examples, width)
        if any(not cands for cands in per_position):
            return SquidOutcome(
                runtime=time.monotonic() - start,
                failure="no column contains every example value for some "
                        "position")

        combos = self._projection_combos(per_position)
        outcome = SquidOutcome()
        for combo in combos:
            join_path = self._join_for(combo)
            if join_path is None:
                continue
            outcome.projections.append(combo)
            if outcome.join_path is None:
                outcome.join_path = join_path
                outcome.filters = self._abduce_filters(combo, join_path,
                                                       examples)
                outcome.count_filters = self._abduce_count_filters(
                    combo, join_path, examples)
        if not outcome.projections:
            outcome.failure = ("candidate projection columns span tables "
                               "with no join path")
        outcome.runtime = time.monotonic() - start
        return outcome

    # ------------------------------------------------------------------
    def _candidate_columns(self, examples: Sequence[Sequence[Value]],
                           width: int) -> List[List[ColumnRef]]:
        """Columns containing every example value at each position."""
        per_position: List[List[ColumnRef]] = []
        for j in range(width):
            candidate_sets = []
            for example in examples:
                candidate_sets.append(set(
                    self.index.columns_for_value(example[j])))
            common = set.intersection(*candidate_sets) if candidate_sets \
                else set()
            per_position.append(sorted(common))
        return per_position

    def _projection_combos(self, per_position: List[List[ColumnRef]]
                           ) -> List[Tuple[ColumnRef, ...]]:
        """Cartesian combinations of per-position candidates, fewest-table
        combos first, capped for tractability."""
        import itertools

        combos = list(itertools.product(*per_position))
        combos.sort(key=lambda combo: (len({c.table for c in combo}), combo))
        return combos[: self.max_projection_combos]

    def _join_for(self, combo: Tuple[ColumnRef, ...]) -> Optional[JoinPath]:
        tables = tuple(dict.fromkeys(c.table for c in combo))
        paths = self.joins.paths_for_tables(tables)
        return paths[0] if paths else None

    def _abduce_filters(self, combo: Tuple[ColumnRef, ...],
                        join_path: JoinPath,
                        examples: Sequence[Sequence[Value]]
                        ) -> Dict[ColumnRef, Set[Value]]:
        """Values shared by all example-matching rows, per text column.

        For each candidate filter column (text columns of the join path's
        tables, plus text columns one FK hop away), collect the distinct
        values co-occurring with each example tuple; a column whose value
        sets have a non-empty intersection across all examples yields
        candidate equality filters — SQuID's "checkable filter" list.
        """
        filters: Dict[ColumnRef, Set[Value]] = {}
        projection_set = set(combo)
        for column, extended_path in self._filter_columns(join_path):
            if column in projection_set:
                continue
            value_sets: List[Set[Value]] = []
            for example in examples:
                values = self._covalues(column, extended_path, combo,
                                        example)
                if not values:
                    value_sets = []
                    break
                value_sets.append(values)
            if not value_sets:
                continue
            common = set.intersection(*value_sets)
            if common:
                filters[column] = common
        return filters

    #: How many FK hops beyond the projection join path filters may live
    #: (SQuID precomputes such entity-to-concept associations; "authors in
    #: domain D" needs author -> domain_author -> domain = 2 hops).
    FILTER_HOPS = 3
    MAX_FILTER_COLUMNS = 80

    def _filter_columns(self, join_path: JoinPath
                        ) -> List[Tuple[ColumnRef, JoinPath]]:
        """Candidate filter columns with the join path reaching them."""
        results: List[Tuple[ColumnRef, JoinPath]] = []
        covered: Set[str] = set()

        def add_table(table_name: str, path: JoinPath) -> None:
            if table_name in covered:
                return
            covered.add(table_name)
            table = self.schema.table(table_name)
            for col in table.columns:
                if col.type is ColumnType.TEXT:
                    results.append((ColumnRef(table=table_name,
                                              column=col.name), path))

        for table_name in join_path.tables:
            add_table(table_name, join_path)
        frontier = [join_path]
        for _ in range(self.FILTER_HOPS):
            next_frontier: List[JoinPath] = []
            for path in frontier:
                for extension in self.joins._extend(path):
                    new_table = next(t for t in extension.tables
                                     if t not in set(path.tables))
                    if new_table in covered:
                        continue
                    add_table(new_table, extension)
                    next_frontier.append(extension)
                    if len(results) >= self.MAX_FILTER_COLUMNS:
                        return results
            frontier = next_frontier
        return results

    def _covalues(self, column: ColumnRef, join_path: JoinPath,
                  combo: Tuple[ColumnRef, ...],
                  example: Sequence[Value]) -> Set[Value]:
        """Distinct values of ``column`` in rows matching ``example``."""
        aliases = alias_map(join_path)
        try:
            from_clause = render_from(join_path, aliases)
        except Exception:
            return set()
        conditions = []
        for ref, value in zip(combo, example):
            alias = aliases.get(ref.table)
            if alias is None:
                return set()
            escaped = str(value).replace("'", "''")
            conditions.append(
                f"{alias}.{quote_ident(ref.column)} = '{escaped}' "
                f"COLLATE NOCASE")
        alias = aliases.get(column.table)
        if alias is None:
            return set()
        sql = (f"SELECT DISTINCT {alias}.{quote_ident(column.column)} "
               f"FROM {from_clause} WHERE {' AND '.join(conditions)} "
               f"LIMIT 200")
        try:
            rows = self.db.execute(sql, kind="pbe")
        except Exception:
            return set()
        return {row[0] for row in rows if row[0] is not None}

    def _abduce_count_filters(self, combo: Tuple[ColumnRef, ...],
                              join_path: JoinPath,
                              examples: Sequence[Sequence[Value]]
                              ) -> Dict[str, int]:
        """Cardinality filters: minimum related-row counts per link table.

        For every table one FK hop from the join path, count the rows
        related to each example entity; the minimum across examples is a
        candidate "has at least N related rows" filter (SQuID's semantic
        cardinality property).
        """
        counts: Dict[str, int] = {}
        present = set(join_path.tables)
        for extension in self.joins._extend(join_path):
            new_table = next(t for t in extension.tables if t not in present)
            per_example: List[int] = []
            aliases = alias_map(extension)
            try:
                from_clause = render_from(extension, aliases)
            except Exception:
                continue
            for example in examples:
                conditions = []
                ok = True
                for ref, value in zip(combo, example):
                    alias = aliases.get(ref.table)
                    if alias is None:
                        ok = False
                        break
                    escaped = str(value).replace("'", "''")
                    conditions.append(
                        f"{alias}.{quote_ident(ref.column)} = '{escaped}' "
                        f"COLLATE NOCASE")
                if not ok or not conditions:
                    break
                sql = (f"SELECT COUNT(*) FROM {from_clause} "
                       f"WHERE {' AND '.join(conditions)}")
                try:
                    rows = self.db.execute(sql, kind="pbe")
                except Exception:
                    break
                per_example.append(int(rows[0][0]))
            if len(per_example) == len(examples) and min(per_example) > 0:
                counts[new_table] = min(per_example)
        return counts

    # ------------------------------------------------------------------
    # Judgment (the paper's Correct criterion, Section 5.4.2)
    # ------------------------------------------------------------------
    def judge(self, outcome: SquidOutcome, gold: Query) -> bool:
        """Correct when the gold projection matches a produced combo and
        every gold selection predicate column appears among the candidate
        filters (literal values are ignored, as in the paper)."""
        if not outcome.produced:
            return False
        assert not isinstance(gold.select, Hole)
        gold_projection = frozenset(
            item.column for item in gold.select
            if isinstance(item, SelectItem)
            and isinstance(item.column, ColumnRef))
        if not any(frozenset(combo) == gold_projection
                   for combo in outcome.projections):
            return False
        if isinstance(gold.where, Where):
            filter_columns = set(outcome.filters)
            for pred in gold.where.predicates:
                if not isinstance(pred, Predicate):
                    continue
                if pred.column not in filter_columns:
                    return False
        if gold.having is not None and not isinstance(gold.having, Hole):
            # A gold cardinality constraint needs an abduced count filter
            # over a table of the gold join path.
            gold_tables = (set(gold.join_path.tables)
                           if not isinstance(gold.join_path, Hole) else set())
            if not any(table in gold_tables
                       for table in outcome.count_filters):
                return False
        return True
