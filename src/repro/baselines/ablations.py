"""GPQE ablations from Section 5.4.3 of the paper.

* **NoPQ** disables pruning of partial queries: enumeration is still
  guided, but only complete queries are verified against the TSQ. This is
  identical to the naive *chaining* approach of Section 3.5 (NLI output
  piped into a PBE verifier).
* **NoGuide** disables guided enumeration: a naive breadth-first search
  ignoring confidence scores, with simpler queries enumerated first and
  columns following schema metadata order, while partial-query pruning
  stays on.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from ..core.duoquest import Duoquest
from ..core.enumerator import EnumeratorConfig
from ..core.search import PoolManager
from ..core.verifier import SharedProbeCache
from ..db.database import Database
from ..guidance.base import GuidanceModel


def make_duoquest(db: Database, model: GuidanceModel,
                  config: Optional[EnumeratorConfig] = None,
                  probe_cache: Optional[SharedProbeCache] = None,
                  pool_manager: Optional[PoolManager] = None
                  ) -> Duoquest:
    """The full system (both GPQE components enabled)."""
    return Duoquest(db, model=model, config=config or EnumeratorConfig(),
                    probe_cache=probe_cache, pool_manager=pool_manager)


def make_nopq(db: Database, model: GuidanceModel,
              config: Optional[EnumeratorConfig] = None,
              probe_cache: Optional[SharedProbeCache] = None,
              pool_manager: Optional[PoolManager] = None) -> Duoquest:
    """GPQE without partial-query pruning (the chaining approach)."""
    base = config or EnumeratorConfig()
    return Duoquest(db, model=model,
                    config=replace(base, verify_partial=False),
                    probe_cache=probe_cache, pool_manager=pool_manager)


def make_noguide(db: Database, model: GuidanceModel,
                 config: Optional[EnumeratorConfig] = None,
                 probe_cache: Optional[SharedProbeCache] = None,
                 pool_manager: Optional[PoolManager] = None
                 ) -> Duoquest:
    """GPQE without guidance: breadth-first enumeration with pruning."""
    base = config or EnumeratorConfig()
    return Duoquest(db, model=model, config=replace(base, guided=False),
                    probe_cache=probe_cache, pool_manager=pool_manager)


#: Variant name -> factory, as plotted in Figure 12.
ABLATION_VARIANTS = {
    "Duoquest": make_duoquest,
    "NoPQ": make_nopq,
    "NoGuide": make_noguide,
}
