"""Ascending-cost cascading verification (Algorithm 3 of the paper).

Verification stages are ordered by cost: checks that need no database
access run first (clauses, semantics, column types), then column-wise
probes (cheap ``SELECT 1 ... LIMIT 1`` queries on single tables), then
row-wise probes (probes retaining the candidate's FROM/WHERE/GROUP BY),
and finally — for complete queries only — literal coverage and the full
satisfaction check of Definition 2.4 including order verification.

Probe results are memoised across candidates, since sibling partial
queries repeat most probes.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..db.database import Database
from ..db.schema import Schema
from ..errors import ExecutionError, ExecutionTimeout
from ..faults import ensure_installed as _ensure_faults_installed
from ..faults import is_transient as _is_transient_failure
from ..nlq.literals import Literal
from ..sqlir.ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Hole,
    JoinPath,
    LogicOp,
    Predicate,
    Query,
    SelectItem,
    Where,
)
from ..sqlir.canon import canonicalize_probe, normalize_value, probe_plan_key
from ..sqlir.render import (
    alias_map,
    quote_ident,
    quote_literal,
    render_from,
    render_predicate,
    to_sql,
)
from ..sqlir.types import ColumnType, Value, coerce_value
from .semantics import RuleSet
from .tsq import Cell, EmptyCell, ExactCell, RangeCell, TableSketchQuery

#: Stage names, in cascade order (used in stats and failure reports).
STAGE_CLAUSES = "clauses"
STAGE_SEMANTICS = "semantics"
STAGE_COLUMN_TYPES = "column_types"
STAGE_BY_COLUMN = "by_column"
STAGE_BY_ROW = "by_row"
STAGE_LITERALS = "literals"
STAGE_FULL = "full_satisfaction"

ALL_STAGES = (STAGE_CLAUSES, STAGE_SEMANTICS, STAGE_COLUMN_TYPES,
              STAGE_BY_COLUMN, STAGE_BY_ROW, STAGE_LITERALS, STAGE_FULL)


@dataclass(frozen=True)
class VerifyResult:
    """Outcome of one Verify call."""

    ok: bool
    failed_stage: Optional[str] = None
    detail: str = ""
    #: True when a probe or the full check hit its execution budget
    #: while verifying this candidate. The flag never changes ``ok`` by
    #: itself (a timed-out probe draws no conclusion, so the candidate
    #: stays alive); it is the signal the cost-order abort cascade
    #: propagates to costlier siblings.
    timed_out: bool = False

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.ok


PASS = VerifyResult(ok=True)


@dataclass
class VerifierConfig:
    """Stage toggles (for the ablations of Section 5.4.3) and limits."""

    check_semantics: bool = True
    verify_partial: bool = True  # False reproduces the NoPQ ablation
    max_result_rows: int = 5000
    enforce_literal_use: bool = True
    #: Wall-clock budget for executing one complete candidate during the
    #: full satisfaction check; candidates that blow the budget (typically
    #: runaway join paths) are rejected.
    execution_budget_ms: int = 250
    #: Probe-planner mode ("off", "plan", "batch", or "fuse" — see
    #: :mod:`repro.core.search.planner`). Part of the verifier config so
    #: it ships to process-pool workers with the rest of the verifier
    #: state; worker verifiers rebuild their own planner from it.
    probe_planner: str = "off"
    #: Wall-clock budget for executing one probe statement; ``None``
    #: (the seed behaviour) leaves probes uncapped. A timed-out probe
    #: draws no conclusion — the candidate stays alive — but stamps
    #: ``timed_out`` on the :class:`VerifyResult`, which is what the
    #: cost-order abort cascade keys on.
    probe_timeout_ms: Optional[int] = None
    #: Cost-order mode ("off", "order", or "abort" — see
    #: :mod:`repro.core.search.costmodel`). Part of the verifier config
    #: so it ships to process-pool workers: worker verifiers attach the
    #: cost model to their rebuilt planner, ordering fused batch arms
    #: cheapest-first on the worker side too.
    cost_order: str = "off"
    #: Deterministic fault-injection plan spec (see :mod:`repro.faults`),
    #: or ``None`` for production behaviour. Part of the verifier config
    #: so the plan ships to process-pool workers: a worker rebuilding its
    #: verifier from this config arms the same injector as the primary.
    fault_plan: Optional[str] = None


@dataclass(frozen=True)
class PendingProbes:
    """One candidate's probe workload, split by cascade stage.

    Produced by :meth:`Verifier.pending_probe_stages` for the planner's
    staged ``fuse`` prefetch: ``column_probes`` are the by-column
    existence probes, ``avg_columns`` the columns whose MIN/MAX bounds
    the AVG range checks will need, and ``row_probes`` a lazy thunk
    compiling the (strictly costlier) row-stage probes — invoked only
    for candidates the fused column-stage answers did not refute.
    """

    column_probes: Tuple[str, ...]
    avg_columns: Tuple["ColumnRef", ...]
    row_probes: Callable[[], Tuple[str, ...]]


class SharedProbeCache:
    """Thread-safe memo for probe and min/max queries.

    Lifted out of :class:`Verifier` so one cache can back many verifier
    instances at once — the per-thread verifier forks of the parallel
    search engine, and (via the eval harness) every enumeration over the
    same database, where sibling partial queries and sibling *tasks*
    repeat most probes. Lookups and stores take a lock; the probe itself
    runs outside it, so two workers may race to compute the same
    (idempotent) entry, which costs one redundant probe but never
    corrupts the cache.

    Entries are stamped with a *task generation*: callers (the search
    engine) bump :meth:`begin_task` once per enumeration, and a hit on
    an entry written by an earlier generation is counted separately as a
    cross-task hit, which is how the harness-level cache reuse shows up
    in telemetry. The process-pool verification backend additionally
    uses :meth:`export`/:meth:`seed` to warm worker caches, a journal to
    collect probes answered inside workers, and :meth:`merge_remote` to
    fold worker counters and entries back into the primary cache.

    Entries seeded from a *persisted* store (an earlier process, via
    ``seed(..., warm=True)``) carry the sentinel :data:`WARM_GENERATION`
    stamp; hits on them increment ``warm_start_hits`` instead of
    ``cross_task_hits``, so telemetry can distinguish reuse within a
    harness run from disk-backed warm starts across runs.

    **Bounded mode.** By default the cache grows without bound — probe
    answers are facts of the database, and a short-lived harness run
    wants every one of them. A long-lived service does not: pass
    ``max_entries`` to cap the total probe + minmax entry count with LRU
    eviction (hits refresh recency). Eviction is *persistence-aware*:
    with an eviction sink attached (:meth:`set_eviction_sink`, wired to
    the :class:`~repro.core.search.PersistentProbeCache` store), evicted
    entries are buffered and flushed to disk in batches, so a bounded
    in-memory cache still warm-starts later sessions from the store.
    Warm-generation entries came *from* disk, so their eviction drops
    them silently — nothing is lost. Bounded mode never changes answers
    (an evicted entry merely costs a re-probe); only memory and the
    ``evictions`` / ``evicted_flushed`` counters differ from unbounded
    runs.
    """

    #: Generation stamp for entries loaded from a persisted cache store
    #: (an earlier *process*); disjoint from real task generations, which
    #: start at 0.
    WARM_GENERATION = -1

    #: Evicted-entry buffer size that triggers an opportunistic flush to
    #: the eviction sink (forced flushes drain any remainder).
    FLUSH_BATCH = 256

    #: Rough per-entry dict/bookkeeping overhead for
    #: :meth:`approx_bytes` (two dict slots, a generation int, LRU slot).
    _ENTRY_OVERHEAD = 120

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be a positive integer")
        self._probes: Dict[str, bool] = {}
        self._minmax: Dict[ColumnRef, Tuple[Optional[Value],
                                            Optional[Value]]] = {}
        #: entry key -> task generation that wrote it
        self._probe_gen: Dict[str, int] = {}
        self._minmax_gen: Dict[ColumnRef, int] = {}
        self._generation = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        #: hits on entries written by an earlier task generation
        self.cross_task_hits = 0
        #: hits on entries loaded from a persisted store (earlier process)
        self.warm_start_hits = 0
        #: LRU bound on total probe + minmax entries (None = unbounded)
        self.max_entries = max_entries
        #: entries dropped to stay under ``max_entries``
        self.evictions = 0
        #: evicted entries persisted through the eviction sink
        self.evicted_flushed = 0
        #: recency order over live entries; maintained only in bounded
        #: mode (key -> "probe" | "minmax"; str and ColumnRef keys never
        #: collide, so one ordered map covers both tables)
        self._lru: "OrderedDict[object, str]" = OrderedDict()
        #: persistence hook for evicted entries: called *outside* the
        #: cache lock with (probes, minmax) dicts, returns entries saved
        self._eviction_sink: Optional[
            Callable[[Dict[str, bool], Dict[ColumnRef, Tuple]], int]] = None
        self._evicted_probes: Dict[str, bool] = {}
        self._evicted_minmax: Dict[ColumnRef, Tuple] = {}
        self._journal: Optional[Tuple[List[Tuple[str, bool]],
                                      List[Tuple[ColumnRef, Tuple]]]] = None
        #: key -> Event for probes currently executing, or None when
        #: single-flight dedup is off (see :meth:`enable_single_flight`)
        self._inflight: Optional[Dict[str, threading.Event]] = None
        #: True once a warm seed loaded canonical ``(signature, params)``
        #: keys — raw-SQL lookups then fall back to their canonical twin
        #: (see :meth:`probe`), so a store persisted under a planner mode
        #: still warm-starts a planner-off run.
        self._canonical_fallback = False

    def __len__(self) -> int:
        with self._lock:
            return len(self._probes) + len(self._minmax)

    def approx_bytes(self) -> int:
        """Rough in-memory footprint of the cached entries.

        Sums the probe keys' string sizes plus a fixed per-entry
        bookkeeping overhead — an estimate for load monitoring (the
        daemon's ``stats`` verb), not an exact accounting.
        """
        with self._lock:
            total = 0
            for sql in self._probes:
                total += sys.getsizeof(sql) + self._ENTRY_OVERHEAD
            total += len(self._minmax) * (self._ENTRY_OVERHEAD + 160)
            return total

    # ------------------------------------------------------------------
    # Bounded mode (LRU accounting, eviction, persistence-aware flush)
    # ------------------------------------------------------------------
    def set_eviction_sink(
            self, sink: Optional[Callable[[Dict[str, bool],
                                           Dict[ColumnRef, Tuple]],
                                          int]]) -> None:
        """Attach a persistence hook for evicted entries.

        ``sink(probes, minmax)`` is invoked outside the cache lock with
        the batched evicted entries and returns how many it saved
        (0 on a failed save — the entries are then simply lost to a
        re-probe, never to a crash). Without a sink, evicted entries are
        dropped outright.
        """
        with self._lock:
            self._eviction_sink = sink

    def _touch_locked(self, key: object, kind: str) -> None:
        """Refresh ``key``'s recency (bounded mode only; lock held)."""
        if self.max_entries is None:
            return
        if key in self._lru:
            self._lru.move_to_end(key)
        else:
            self._lru[key] = kind

    def _evict_over_bound_locked(self) -> None:
        """Drop LRU entries until the bound holds (lock held).

        Non-warm evictions are moved to the flush buffers when a sink is
        attached; warm-generation entries already live on disk, so they
        are dropped silently.
        """
        if self.max_entries is None:
            return
        while (len(self._probes) + len(self._minmax) > self.max_entries
               and self._lru):
            key, kind = self._lru.popitem(last=False)
            if kind == "probe":
                if key not in self._probes:
                    continue
                outcome = self._probes.pop(key)
                generation = self._probe_gen.pop(key, None)
                self.evictions += 1
                if (self._eviction_sink is not None
                        and generation != self.WARM_GENERATION):
                    self._evicted_probes[key] = outcome
            else:
                if key not in self._minmax:
                    continue
                bounds = self._minmax.pop(key)
                generation = self._minmax_gen.pop(key, None)
                self.evictions += 1
                if (self._eviction_sink is not None
                        and generation != self.WARM_GENERATION):
                    self._evicted_minmax[key] = bounds

    def _maybe_flush_evicted(self, force: bool = False) -> int:
        """Persist buffered evictions through the sink; returns count.

        Runs the sink *outside* the lock (it does SQLite writes); a
        non-forced call waits for :data:`FLUSH_BATCH` buffered entries
        so steady-state eviction amortises the store transaction cost.
        """
        sink = self._eviction_sink
        if sink is None:
            return 0
        if (not force and len(self._evicted_probes)
                + len(self._evicted_minmax) < self.FLUSH_BATCH):
            # Unsynchronised size peek: worst case we defer one batch by
            # one insert, which the next (or a forced) flush picks up.
            return 0
        with self._lock:
            pending = len(self._evicted_probes) + len(self._evicted_minmax)
            if not pending or (not force and pending < self.FLUSH_BATCH):
                return 0
            probes, self._evicted_probes = self._evicted_probes, {}
            minmax, self._evicted_minmax = self._evicted_minmax, {}
        flushed = sink(probes, minmax)
        with self._lock:
            self.evicted_flushed += flushed
        return flushed

    def flush_evicted(self) -> int:
        """Force-persist any buffered evicted entries (scope teardown)."""
        return self._maybe_flush_evicted(force=True)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ------------------------------------------------------------------
    # Task generations (cross-task reuse accounting)
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        return self._generation

    def begin_task(self) -> int:
        """Start a new task generation; returns the new generation.

        Entries already cached belong to earlier generations, so hits on
        them from now on are counted as ``cross_task_hits``.
        """
        with self._lock:
            self._generation += 1
            return self._generation

    # ------------------------------------------------------------------
    # Worker-process support (export / seed / journal / merge)
    # ------------------------------------------------------------------
    def export(self) -> Tuple[Dict[str, bool], Dict[ColumnRef, Tuple],
                              Tuple[frozenset, frozenset]]:
        """Copies of the cached entries, for seeding worker caches.

        Returns ``(probes, minmax, warm_keys)`` where ``warm_keys`` holds
        the probe/minmax keys stamped :data:`WARM_GENERATION`, so a
        seeded worker cache counts warm-start hits the same way the
        primary does.

        A *bounded* cache exports in LRU order (least recently used
        first): dict insertion order is the only recency channel that
        survives export → store → seed, and a bounded re-seed truncates
        from the front — so the hottest entries are the ones a bounded
        warm start keeps.
        """
        with self._lock:
            warm = (frozenset(k for k, g in self._probe_gen.items()
                              if g == self.WARM_GENERATION),
                    frozenset(k for k, g in self._minmax_gen.items()
                              if g == self.WARM_GENERATION))
            if self.max_entries is not None:
                probes: Dict[str, bool] = {}
                minmax: Dict[ColumnRef, Tuple] = {}
                for key, kind in self._lru.items():
                    if kind == "probe":
                        probes[key] = self._probes[key]
                    else:
                        minmax[key] = self._minmax[key]
                return probes, minmax, warm
            return dict(self._probes), dict(self._minmax), warm

    def seed(self, probes: Dict[str, bool],
             minmax: Dict[ColumnRef, Tuple],
             warm_keys: Optional[Tuple[frozenset, frozenset]] = None,
             warm: bool = False) -> int:
        """Pre-populate entries; returns the number actually inserted.

        Entries are stamped with the current generation, except those
        named by ``warm_keys`` (or all of them when ``warm=True``),
        which get the :data:`WARM_GENERATION` stamp — used when loading
        a persisted store, so hits on them count as warm-start hits.
        Already-present entries are never overwritten (probe answers are
        facts of the database, so re-seeding is idempotent).
        """
        warm_probes = warm_keys[0] if warm_keys else frozenset()
        warm_minmax = warm_keys[1] if warm_keys else frozenset()
        inserted = 0
        with self._lock:
            for sql, outcome in probes.items():
                if sql not in self._probes:
                    self._probes[sql] = outcome
                    self._probe_gen[sql] = (
                        self.WARM_GENERATION
                        if warm or sql in warm_probes else self._generation)
                    self._touch_locked(sql, "probe")
                    inserted += 1
                    if (self._probe_gen[sql] == self.WARM_GENERATION
                            and "\x1f\x1f" in sql):
                        # The persisted store was written under a planner
                        # mode (canonical keys); arm the raw-key fallback
                        # so a planner-off run still gets its warm hits.
                        self._canonical_fallback = True
            for column, bounds in minmax.items():
                if column not in self._minmax:
                    self._minmax[column] = bounds
                    self._minmax_gen[column] = (
                        self.WARM_GENERATION
                        if warm or column in warm_minmax
                        else self._generation)
                    self._touch_locked(column, "minmax")
                    inserted += 1
            self._evict_over_bound_locked()
        self._maybe_flush_evicted()
        return inserted

    def enable_journal(self) -> None:
        """Record entries inserted from now on (worker caches only)."""
        with self._lock:
            self._journal = ([], [])

    def drain_journal(self) -> Tuple[List[Tuple[str, bool]],
                                     List[Tuple[ColumnRef, Tuple]]]:
        """Entries inserted since the last drain; resets the journal."""
        with self._lock:
            assert self._journal is not None, "journal not enabled"
            drained, self._journal = self._journal, ([], [])
            return drained

    def merge_remote(self, hits: int, misses: int, cross_task_hits: int,
                     warm_start_hits: int,
                     probes: Sequence[Tuple[str, bool]],
                     minmax: Sequence[Tuple[ColumnRef, Tuple]]) -> None:
        """Fold a worker cache's counters and new entries into this one.

        Newly inserted entries are journalled (when the journal is
        enabled) so a persistent pool manager can ship them to *other*
        workers on the next task sync.
        """
        with self._lock:
            self.hits += hits
            self.misses += misses
            self.cross_task_hits += cross_task_hits
            self.warm_start_hits += warm_start_hits
            for sql, outcome in probes:
                if sql not in self._probes:
                    self._probes[sql] = outcome
                    self._probe_gen[sql] = self._generation
                    self._touch_locked(sql, "probe")
                    if self._journal is not None:
                        self._journal[0].append((sql, outcome))
            for column, bounds in minmax:
                if column not in self._minmax:
                    self._minmax[column] = bounds
                    self._minmax_gen[column] = self._generation
                    self._touch_locked(column, "minmax")
                    if self._journal is not None:
                        self._journal[1].append((column, bounds))
            # Worker deltas re-deliver entries the bound may since have
            # evicted here; the bound, not the delta, wins.
            self._evict_over_bound_locked()
        self._maybe_flush_evicted()

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def enable_single_flight(self) -> None:
        """Deduplicate concurrent identical probes (cost-order modes).

        Once enabled, the first worker to request an uncached key
        becomes its *leader* and executes the probe; concurrent
        requesters for the same key wait on the leader's event instead
        of racing to execute a duplicate. This pins the executed-probe
        count to the number of distinct keys, the invariant behind the
        cost-order "never more probes than serial" contract. Off by
        default: the race costs at most one redundant (idempotent)
        probe per collision, and the seed stream's statement counts are
        pinned bit-for-bit by the equivalence tests.
        """
        with self._lock:
            if self._inflight is None:
                self._inflight = {}

    def probe(self, db: Database, sql: str) -> bool:
        """Answer a raw-SQL probe, keyed by its text (planner off)."""
        if self._canonical_fallback:
            with self._lock:
                if sql not in self._probes:
                    try:
                        twin = probe_plan_key(*canonicalize_probe(sql))
                    except Exception:
                        twin = None
                    if twin is not None and twin in self._probes:
                        # Alias the raw key to its canonical twin's
                        # answer so planner-off runs hit entries a
                        # planner-mode run persisted. Not journalled:
                        # the store re-derives twins at save time.
                        self._probes[sql] = self._probes[twin]
                        self._probe_gen[sql] = self._probe_gen[twin]
                        self._touch_locked(sql, "probe")
                        self._evict_over_bound_locked()
        return self.probe_keyed(db, sql, sql)

    def probe_keyed(self, db: Database, key: str, sql: str,
                    params: Sequence[Value] = ()) -> bool:
        """Answer a probe memoised under an explicit ``key``.

        The probe planner routes probes here with the canonical
        ``(signature, params)`` key and the parameterised statement, so
        every rendering of a semantically identical probe shares one
        cache entry; :meth:`probe` is the degenerate raw-text case.
        """
        leader_event = None
        try:
            while True:
                wait_on = None
                with self._lock:
                    if key in self._probes:
                        self.hits += 1
                        generation = self._probe_gen[key]
                        if generation == self.WARM_GENERATION:
                            self.warm_start_hits += 1
                        elif generation < self._generation:
                            self.cross_task_hits += 1
                        self._touch_locked(key, "probe")
                        return self._probes[key]
                    if self._inflight is not None:
                        wait_on = self._inflight.get(key)
                        if wait_on is None:
                            leader_event = threading.Event()
                            self._inflight[key] = leader_event
                if wait_on is None:
                    break
                # Another worker is executing this probe right now: wait
                # for its insert, then re-check. The timeout guards
                # against a leader that died without inserting (e.g. its
                # probe timed out) — the retry then claims leadership.
                wait_on.wait(timeout=1.0)
            try:
                outcome = db.exists(sql, params)
            except ExecutionError as exc:
                if db.interrupt_armed and "interrupted" in str(exc):
                    # The probe hit its execution budget: no conclusion
                    # was drawn, so nothing may be cached. Propagate so
                    # the surrounding interruptible() guard converts
                    # this to ExecutionTimeout at scope exit.
                    raise
                if _is_transient_failure(exc):
                    # The execute-level retry budget is already spent.
                    # A transient failure draws no conclusion either — a
                    # later attempt may answer truthfully, so memoising
                    # (or persisting) anything here would poison the
                    # cache. Propagate; the pool's degrade ladder reruns
                    # the batch inline with fresh retries.
                    raise
                # A probe that cannot execute draws no conclusion;
                # pruning must stay sound, so treat it as satisfied.
                outcome = True
            with self._lock:
                self.misses += 1
                if key not in self._probes:
                    self._probes[key] = outcome
                    self._probe_gen[key] = self._generation
                    self._touch_locked(key, "probe")
                    if self._journal is not None:
                        self._journal[0].append((key, outcome))
                    self._evict_over_bound_locked()
                return self._probes[key]
        finally:
            if leader_event is not None:
                with self._lock:
                    if self._inflight is not None:
                        self._inflight.pop(key, None)
                leader_event.set()
            self._maybe_flush_evicted()

    def peek(self, key: str) -> Optional[bool]:
        """The cached outcome for ``key``, or ``None`` — no counters
        touched, no probe executed (the planner's prefetch filter)."""
        with self._lock:
            return self._probes.get(key)

    def record_probe(self, key: str, outcome: bool) -> None:
        """Insert a probe answered out of band (a fused prefetch arm).

        Counted as a miss — the answer was computed, not served from
        the cache — and journalled like any other insert, so fused
        answers flow to worker processes and the persistent store.
        """
        with self._lock:
            self.misses += 1
            if key not in self._probes:
                self._probes[key] = outcome
                self._probe_gen[key] = self._generation
                self._touch_locked(key, "probe")
                if self._journal is not None:
                    self._journal[0].append((key, outcome))
                self._evict_over_bound_locked()
        self._maybe_flush_evicted()

    def peek_minmax(self, column: ColumnRef) -> Optional[Tuple]:
        """The cached (min, max) bounds for ``column``, or ``None`` —
        no counters touched, no statement executed. Unambiguous because
        a cached entry is always a 2-tuple (an empty table memoises
        ``(None, None)``, never ``None``)."""
        with self._lock:
            return self._minmax.get(column)

    def record_minmax(self, column: ColumnRef,
                      bounds: Tuple[Optional[Value],
                                    Optional[Value]]) -> None:
        """Insert bounds computed out of band (a fused scan's MIN/MAX
        aggregates). Counted as a miss and journalled, mirroring
        :meth:`record_probe`, so fused bounds flow to worker processes
        and the persistent store exactly like executed ones."""
        with self._lock:
            self.misses += 1
            if column not in self._minmax:
                self._minmax[column] = bounds
                self._minmax_gen[column] = self._generation
                self._touch_locked(column, "minmax")
                if self._journal is not None:
                    self._journal[1].append((column, bounds))
                self._evict_over_bound_locked()
        self._maybe_flush_evicted()

    def minmax(self, db: Database,
               column: ColumnRef) -> Tuple[Optional[Value], Optional[Value]]:
        with self._lock:
            if column in self._minmax:
                self.hits += 1
                generation = self._minmax_gen[column]
                if generation == self.WARM_GENERATION:
                    self.warm_start_hits += 1
                elif generation < self._generation:
                    self.cross_task_hits += 1
                self._touch_locked(column, "minmax")
                return self._minmax[column]
        bounds = db.column_min_max(column)
        with self._lock:
            self.misses += 1
            if column not in self._minmax:
                self._minmax[column] = bounds
                self._minmax_gen[column] = self._generation
                self._touch_locked(column, "minmax")
                if self._journal is not None:
                    self._journal[1].append((column, bounds))
            self._evict_over_bound_locked()
            result = self._minmax.get(column)
        if result is None:
            # The bound is 1 and the insert itself was evicted (a
            # pathological but legal configuration): the computed bounds
            # are still the answer.
            result = bounds
        self._maybe_flush_evicted()
        return result


class Verifier:
    """Implements ``Verify(T, L, q, D)`` with memoised probe queries."""

    def __init__(self, db: Database,
                 tsq: Optional[TableSketchQuery] = None,
                 literals: Sequence[Literal] = (),
                 config: Optional[VerifierConfig] = None,
                 rules: Optional[RuleSet] = None,
                 probe_cache: Optional[SharedProbeCache] = None,
                 planner: Optional[object] = None):
        self.db = db
        self.schema: Schema = db.schema
        self.tsq = tsq if tsq is not None else TableSketchQuery()
        self.literals = tuple(literals)
        self.config = config or VerifierConfig()
        self.rules = rules or RuleSet()
        # Arm the fault injector before any statement can run. Idempotent
        # per spec: in the primary this is a no-op after the first
        # verifier, in a process worker it installs the shipped plan.
        if self.config.fault_plan:
            _ensure_faults_installed(self.config.fault_plan)
        #: failure counts per stage plus "pass"
        self.stats: Dict[str, int] = {}
        # `is None`, not truthiness: an empty SharedProbeCache is falsy
        # (it has __len__), and a shared cache is usually empty when the
        # first verifier attaches to it.
        self.probe_cache = probe_cache if probe_cache is not None \
            else SharedProbeCache()
        #: optional ProbePlanner routing probes through parameterised
        #: plans (see repro.core.search.planner); built from the config
        #: unless a fork/caller shares one. Imported lazily to avoid a
        #: package cycle (core.search imports this module at load time).
        if planner is None and self.config.probe_planner != "off":
            from .search.planner import ProbePlanner
            planner = ProbePlanner(self.config.probe_planner)
        self.planner = planner
        #: set when a probe or the full check times out during the
        #: current :meth:`verify` call; folded into the result there.
        self._timed_out = False
        # Cost-aware scheduling orders the planner's fused batch arms
        # cheapest-first. Attached here (rather than by the engine) so
        # process-pool workers — which rebuild verifier + planner from
        # the pickled config — order their arms too. Lazy import: same
        # package cycle as ProbePlanner above.
        if (self.planner is not None and self.config.cost_order != "off"
                and getattr(self.planner, "cost_key", None) is None):
            from .search.costmodel import CostModel
            model = CostModel(db)
            self.planner.cost_key = model.probe_sql_cost
            # The fuse mode orders whole groups by their one-scan cost.
            self.planner.group_cost_key = model.probe_group_cost

    def fork(self, db: Database) -> "Verifier":
        """A verifier over ``db`` sharing this one's probe cache.

        Used by the parallel verification stage: each worker thread gets
        its own fork bound to its own database connection, while all
        forks memoise probes through the one shared cache (and route
        them through the one shared planner, when configured). Stats are
        per-fork; the search engine records outcomes centrally instead.
        """
        return Verifier(db, tsq=self.tsq, literals=self.literals,
                        config=self.config, rules=self.rules,
                        probe_cache=self.probe_cache,
                        planner=self.planner)

    # ------------------------------------------------------------------
    def verify(self, query: Query, treat_as_partial: bool = False,
               record: bool = True) -> VerifyResult:
        """Run the full ascending-cost cascade on a (partial) query.

        ``treat_as_partial`` forces the partial-query stages even when the
        query has no holes — used when the enumerator attaches a
        provisional probe join path to a partial query whose only
        undecided element is the join path itself. ``record=False`` skips
        the stats update — used for speculative verification, where the
        caller records the outcome only once it is actually consumed.
        """
        self._timed_out = False
        result = self._verify(query, treat_as_partial)
        if self._timed_out and not result.timed_out:
            result = replace(result, timed_out=True)
        return self.record_result(result) if record else result

    def _verify(self, query: Query, treat_as_partial: bool) -> VerifyResult:
        complete = query.is_complete and not treat_as_partial
        if not complete and not self.config.verify_partial:
            return PASS

        result = self._verify_clauses(query, complete)
        if not result.ok:
            return result

        if self.config.check_semantics:
            violations = self.rules.check(query, self.schema)
            if violations:
                return VerifyResult(
                    ok=False, failed_stage=STAGE_SEMANTICS,
                    detail=violations[0].message)

        result = self._verify_column_types(query)
        if not result.ok:
            return result

        result = self._verify_by_column(query)
        if not result.ok:
            return result

        if self._can_check_rows(query, complete):
            result = self._verify_by_row(query)
            if not result.ok:
                return result

        if complete:
            if self.config.enforce_literal_use:
                result = self._verify_literals(query)
                if not result.ok:
                    return result
            result = self._verify_full(query)
            if not result.ok:
                return result

        return PASS

    def record_result(self, result: VerifyResult) -> VerifyResult:
        key = "pass" if result.ok else (result.failed_stage or "unknown")
        self.stats[key] = self.stats.get(key, 0) + 1
        return result

    # ------------------------------------------------------------------
    # Stage 1: VerifyClauses
    # ------------------------------------------------------------------
    def _verify_clauses(self, query: Query, complete: bool) -> VerifyResult:
        tsq = self.tsq
        if tsq.is_empty:
            # No TSQ was provided (the NLI setting): tau and k constrain
            # nothing. A *provided* TSQ with tau = false actively forbids
            # ORDER BY (Example 3.3, CQ5).
            return PASS
        order_present = (query.order_by is not None
                         and not isinstance(query.order_by, Hole))
        if not tsq.sorted and order_present:
            return VerifyResult(ok=False, failed_stage=STAGE_CLAUSES,
                                detail="TSQ forbids ORDER BY (tau is false)")
        if tsq.sorted and complete and query.order_by is None:
            return VerifyResult(ok=False, failed_stage=STAGE_CLAUSES,
                                detail="TSQ requires a sorting operator")
        if isinstance(query.limit, int):
            if tsq.limit == 0 and not tsq.is_empty:
                return VerifyResult(
                    ok=False, failed_stage=STAGE_CLAUSES,
                    detail="TSQ specifies unlimited results but query has "
                           "LIMIT")
            if tsq.limit > 0 and query.limit > tsq.limit:
                return VerifyResult(
                    ok=False, failed_stage=STAGE_CLAUSES,
                    detail=f"LIMIT {query.limit} exceeds TSQ k={tsq.limit}")
        return PASS

    # ------------------------------------------------------------------
    # Stage 3: VerifyColumnTypes
    # ------------------------------------------------------------------
    def _projected_type(self, item: SelectItem) -> Optional[ColumnType]:
        if not item.is_complete:
            return None
        assert isinstance(item.agg, AggOp)
        assert isinstance(item.column, ColumnRef)
        input_type = (ColumnType.NUMBER if item.column.is_star
                      else self.schema.column_type(item.column))
        return item.agg.output_type(input_type)

    def _verify_column_types(self, query: Query) -> VerifyResult:
        width = self.tsq.width
        if width is None or isinstance(query.select, Hole):
            return PASS
        if len(query.select) != width:
            return VerifyResult(
                ok=False, failed_stage=STAGE_COLUMN_TYPES,
                detail=f"query projects {len(query.select)} columns, TSQ "
                       f"has width {width}")
        if self.tsq.types is None:
            return PASS
        for index, item in enumerate(query.select):
            if isinstance(item, Hole) or not isinstance(item, SelectItem):
                continue
            projected = self._projected_type(item)
            if projected is None:
                continue
            if projected is not self.tsq.types[index]:
                return VerifyResult(
                    ok=False, failed_stage=STAGE_COLUMN_TYPES,
                    detail=f"column {index} has type {projected}, TSQ "
                           f"annotation is {self.tsq.types[index]}")
        return PASS

    # ------------------------------------------------------------------
    # Stage 4: VerifyByColumn (Example 3.5)
    # ------------------------------------------------------------------
    def _cell_condition(self, column: ColumnRef, cell: Cell,
                        alias: Optional[str] = None) -> Optional[str]:
        """SQL condition matching ``cell`` on ``column`` (None = no
        constraint)."""
        name = quote_ident(column.column)
        prefix = f"{alias}." if alias else ""
        col_type = self.schema.column_type(column)
        if isinstance(cell, EmptyCell):
            return None
        if isinstance(cell, ExactCell):
            value = coerce_value(cell.value, col_type)
            if col_type is ColumnType.TEXT:
                return (f"{prefix}{name} = {quote_literal(str(value))} "
                        f"COLLATE NOCASE")
            return f"{prefix}{name} = {quote_literal(value)}"
        assert isinstance(cell, RangeCell)
        return (f"{prefix}{name} >= {quote_literal(cell.low)} AND "
                f"{prefix}{name} <= {quote_literal(cell.high)}")

    def _probe(self, sql: str) -> bool:
        budget = self.config.probe_timeout_ms
        try:
            if budget:
                with self.db.interruptible(budget):
                    return self._probe_now(sql)
            return self._probe_now(sql)
        except ExecutionTimeout:
            # No conclusion was drawn, so the candidate stays alive
            # (sound: the probe neither confirmed nor refuted the cell);
            # the flag is what the cost-order abort cascade keys on.
            self._timed_out = True
            return True

    def _probe_now(self, sql: str) -> bool:
        if self.planner is not None:
            return self.planner.probe(self.db, self.probe_cache, sql)
        return self.probe_cache.probe(self.db, sql)

    def _column_minmax(self, column: ColumnRef) -> Tuple[Optional[Value],
                                                         Optional[Value]]:
        return self.probe_cache.minmax(self.db, column)

    def _iter_column_cell_checks(self, query: Query, example):
        """The column-stage checks one example induces, in cell order.

        Yields ``("avg", (column, cell))`` for AVG min/max range checks
        and ``("probe", sql)`` for existence probes. The single source
        of truth for which cells are checkable — consumed by
        :meth:`_verify_by_column` and by the probe planner's prefetch
        (:meth:`pending_probe_sql`), so the two can never drift.
        """
        for index, item in enumerate(query.select):
            if index >= len(example):
                break
            if isinstance(item, Hole) or not isinstance(item, SelectItem):
                continue
            if not item.is_complete:
                continue
            assert isinstance(item.agg, AggOp)
            assert isinstance(item.column, ColumnRef)
            cell = example[index]
            if isinstance(cell, EmptyCell):
                continue
            if item.column.is_star or item.agg in (AggOp.COUNT,
                                                   AggOp.SUM):
                # No conclusion can be drawn for partial queries with
                # COUNT/SUM projections (Section 3.4).
                continue
            if item.agg is AggOp.AVG:
                yield "avg", (item.column, cell)
                continue
            # NONE / MIN / MAX produce an exact value from the column.
            condition = self._cell_condition(item.column, cell)
            if condition is None:
                continue
            yield "probe", (f"SELECT 1 FROM "
                            f"{quote_ident(item.column.table)} "
                            f"WHERE {condition} LIMIT 1")

    def _verify_by_column(self, query: Query) -> VerifyResult:
        if not self.tsq.tuples or isinstance(query.select, Hole):
            return PASS
        failing_examples = 0
        for example in self.tsq.tuples:
            example_failed = False
            for kind, payload in self._iter_column_cell_checks(query,
                                                               example):
                if kind == "avg":
                    if not self._avg_cell_possible(*payload):
                        example_failed = True
                        break
                elif not self._probe(payload):
                    example_failed = True
                    break
            if example_failed:
                failing_examples += 1
                if failing_examples > self.tsq.tolerance:
                    return VerifyResult(
                        ok=False, failed_stage=STAGE_BY_COLUMN,
                        detail=f"example {example!r} has a cell matched "
                               f"by no column value")
        return PASS

    def _avg_cell_possible(self, column: ColumnRef, cell: Cell) -> bool:
        """AVG lies within [min, max]; check intersection with the cell."""
        return self._avg_bounds_possible(self._column_minmax(column), cell)

    @staticmethod
    def _avg_bounds_possible(bounds: Tuple[Optional[Value],
                                           Optional[Value]],
                             cell: Cell) -> bool:
        """The [min, max] intersection check, on already-known bounds.

        Split out of :meth:`_avg_cell_possible` so the planner's staged
        prefetch (:meth:`column_stage_refuted`) can apply the same test
        to *peeked* bounds without triggering a min/max statement."""
        low, high = bounds
        if low is None or high is None:
            return False
        try:
            low_f, high_f = float(low), float(high)
        except (TypeError, ValueError):
            return False
        if isinstance(cell, ExactCell):
            try:
                value = float(cell.value)
            except (TypeError, ValueError):
                return False
            return low_f <= value <= high_f
        if isinstance(cell, RangeCell):
            return cell.low <= high_f and low_f <= cell.high
        return True

    # ------------------------------------------------------------------
    # Stage 5: VerifyByRow (Example 3.6)
    # ------------------------------------------------------------------
    def _can_check_rows(self, query: Query, complete: bool) -> bool:
        """Precondition for row-wise verification (Section 3.4).

        Row probes here cover *unaggregated* cells only. The paper's
        aggregate row probes (Example 3.6, RV2) assume the partial query
        carries its candidate join path; this implementation defers join
        branching to the final step (see the enumerator), and aggregate
        values are not monotone under join projection, so probing them
        against a provisional path would wrongly prune valid branches.
        Aggregated cells are instead verified by the full satisfaction
        check once the query (including its join path) is complete.
        """
        if not self.tsq.tuples:
            return False
        if complete:
            return False  # stage 7 performs the definitive check
        if not isinstance(query.join_path, JoinPath):
            return False
        if isinstance(query.select, Hole):
            return False
        return True

    def _retained_where(self, query: Query) -> List[Predicate]:
        """Predicates safe to AND into a row probe.

        With a complete AND clause (or any complete predicate under AND
        logic) retention is sound: future predicates only shrink the
        result. Under OR (or an undecided connective with several
        predicates) incomplete clauses are dropped entirely, because a
        tuple may be produced via a different disjunct.
        """
        where = query.where
        if not isinstance(where, Where):
            return []
        complete = [p for p in where.predicates
                    if isinstance(p, Predicate) and p.is_complete]
        if where.is_complete:
            return complete
        if len(where.predicates) == 1:
            return complete
        if isinstance(where.logic, LogicOp) and where.logic is LogicOp.AND:
            return complete
        return []

    def _row_probe_context(self, query: Query):
        """The per-query row-probe scaffolding, or ``None`` to skip.

        Returns ``(aliases, from_clause, base_where_parts)`` — the
        pieces identical across every example's probe (the FROM clause
        and the retained/OR-rendered WHERE predicates). ``None`` means
        the join path is disconnected: no conclusion to draw.
        """
        assert isinstance(query.join_path, JoinPath)
        aliases = alias_map(query.join_path)
        try:
            from_clause = render_from(query.join_path, aliases)
        except Exception:  # disconnected path: no conclusion to draw here
            return None
        where_logic_or = (isinstance(query.where, Where)
                          and isinstance(query.where.logic, LogicOp)
                          and query.where.logic is LogicOp.OR
                          and query.where.is_complete
                          and len(query.where.predicates) > 1)
        base_parts: List[str] = []
        if where_logic_or:
            assert isinstance(query.where, Where)
            rendered = " OR ".join(
                render_predicate(p, aliases)
                for p in query.where.predicates
                if isinstance(p, Predicate))
            base_parts.append(f"({rendered})")
        else:
            for pred in self._retained_where(query):
                try:
                    base_parts.append(render_predicate(pred, aliases))
                except Exception:
                    continue
        return aliases, from_clause, base_parts

    def _row_probe_sql(self, query: Query, aliases, from_clause: str,
                       base_parts: List[str], example) -> Optional[str]:
        """One example's row probe, or ``None`` when nothing in the
        example is checkable against this query's projections.

        Shared by :meth:`_verify_by_row` and the planner prefetch
        (:meth:`pending_probe_sql`), so the probes the prefetch fuses
        are character-identical to the ones the cascade would issue.
        """
        where_parts = list(base_parts)
        checkable = False
        for index, item in enumerate(query.select):
            if index >= len(example):
                break
            if not isinstance(item, SelectItem) or not item.is_complete:
                continue
            assert isinstance(item.agg, AggOp)
            assert isinstance(item.column, ColumnRef)
            cell = example[index]
            if isinstance(cell, EmptyCell):
                continue
            if item.agg.is_aggregate:
                # Deferred to the full satisfaction check (see
                # _can_check_rows docstring).
                continue
            alias = aliases.get(item.column.table)
            if alias is None:
                continue
            condition = self._cell_condition(item.column, cell,
                                             alias=alias)
            if condition is not None:
                where_parts.append(f"({condition})")
                checkable = True
        if not checkable:
            return None
        return (f"SELECT 1 FROM {from_clause} "
                f"WHERE {' AND '.join(where_parts)} LIMIT 1")

    def _verify_by_row(self, query: Query) -> VerifyResult:
        assert isinstance(query.join_path, JoinPath)
        assert not isinstance(query.select, Hole)
        context = self._row_probe_context(query)
        if context is None:
            return PASS
        aliases, from_clause, base_parts = context

        failing_examples = 0
        for example in self.tsq.tuples:
            sql = self._row_probe_sql(query, aliases, from_clause,
                                      base_parts, example)
            if sql is None:
                continue
            if not self._probe(sql):
                failing_examples += 1
                if failing_examples > self.tsq.tolerance:
                    return VerifyResult(
                        ok=False, failed_stage=STAGE_BY_ROW,
                        detail=f"no result row satisfies example "
                               f"{example!r}")
        return PASS

    # ------------------------------------------------------------------
    # Probe prefetch support (the planner's round batching / fusing)
    # ------------------------------------------------------------------
    def pending_probe_stages(self, query: Query,
                             treat_as_partial: bool = False
                             ) -> Optional["PendingProbes"]:
        """The probe workload the cascade may issue, staged by cost.

        The staged sibling of :meth:`pending_probe_sql` (same
        short-circuits, same statements — both walk
        :meth:`_iter_column_cell_checks` and :meth:`_row_probe_sql`, so
        they can never drift), but with the strictly costlier row-stage
        probes behind a thunk: the fuse planner executes the column
        stage first and never invokes the thunk for candidates the
        fused answers already refute (:meth:`column_stage_refuted`).
        ``None`` means a probe-free stage (clauses, semantics, column
        types) rejects the query outright — no probes will run at all.
        """
        complete = query.is_complete and not treat_as_partial
        if not complete and not self.config.verify_partial:
            return None
        if not self._verify_clauses(query, complete).ok:
            return None
        if self.config.check_semantics \
                and self.rules.check(query, self.schema):
            return None
        if not self._verify_column_types(query).ok:
            return None
        column_probes: List[str] = []
        avg_columns: List[ColumnRef] = []
        if self.tsq.tuples and not isinstance(query.select, Hole):
            for example in self.tsq.tuples:
                for kind, payload in self._iter_column_cell_checks(
                        query, example):
                    if kind == "probe":
                        column_probes.append(payload)
                    else:
                        column = payload[0]
                        if column not in avg_columns:
                            avg_columns.append(column)

        def row_probes() -> Tuple[str, ...]:
            if not self._can_check_rows(query, complete):
                return ()
            context = self._row_probe_context(query)
            if context is None:
                return ()
            aliases, from_clause, base_parts = context
            sqls: List[str] = []
            for example in self.tsq.tuples:
                sql = self._row_probe_sql(query, aliases, from_clause,
                                          base_parts, example)
                if sql is not None:
                    sqls.append(sql)
            return tuple(sqls)

        return PendingProbes(column_probes=tuple(column_probes),
                             avg_columns=tuple(avg_columns),
                             row_probes=row_probes)

    def pending_probe_sql(self, query: Query,
                          treat_as_partial: bool = False) -> List[str]:
        """The probe statements the cascade may issue for ``query``.

        A superset in execution order: the serial cascade stops probing
        an example (and a stage) at the first failure, so some of these
        probes would never run serially — but probe answers are facts
        of the database, so prefetching them can never change an
        outcome, only statement counts. Returns ``[]`` when one of the
        probe-free stages (clauses, semantics, column types) already
        rejects the query, mirroring the cascade's short-circuit.
        """
        staged = self.pending_probe_stages(query, treat_as_partial)
        if staged is None:
            return []
        return list(staged.column_probes) + list(staged.row_probes())

    def _peek_probe(self, sql: str) -> Optional[bool]:
        """The memoised outcome of probe ``sql``, or ``None`` if it has
        not been answered yet. Read-only: keys the cache exactly as
        :meth:`_probe_now` would (canonical plan key under a planner,
        raw text otherwise) but executes nothing and moves no counter.
        """
        if self.planner is not None:
            key = self.planner.plan_for(sql, count=False).key
        else:
            key = sql
        return self.probe_cache.peek(key)

    def column_stage_refuted(self, query: Query) -> bool:
        """Predict, from cached answers alone, whether the by-column
        stage rejects ``query``.

        A read-only mirror of :meth:`_verify_by_column`'s tolerance
        loop over peeked probe outcomes and peeked min/max bounds: no
        statement executes and no counter moves. An unanswered probe
        (or unknown bounds) conservatively counts as satisfied, so
        ``True`` means the cached facts alone already exceed the
        tolerance. The fuse planner uses this after scattering a
        round's fused column-stage answers to skip compiling the row
        probes of refuted candidates; the cascade re-derives the
        verdict either way, so a stale peek costs statements, never
        correctness.
        """
        if not self.tsq.tuples or isinstance(query.select, Hole):
            return False
        failing_examples = 0
        for example in self.tsq.tuples:
            example_failed = False
            for kind, payload in self._iter_column_cell_checks(query,
                                                               example):
                if kind == "avg":
                    column, cell = payload
                    bounds = self.probe_cache.peek_minmax(column)
                    if bounds is not None and not \
                            self._avg_bounds_possible(bounds, cell):
                        example_failed = True
                        break
                elif self._peek_probe(payload) is False:
                    example_failed = True
                    break
            if example_failed:
                failing_examples += 1
                if failing_examples > self.tsq.tolerance:
                    return True
        return False

    # ------------------------------------------------------------------
    # Stage 6: VerifyLiterals (complete queries only)
    # ------------------------------------------------------------------
    def _used_values(self, query: Query) -> List[object]:
        values: List[object] = []
        if isinstance(query.where, Where):
            for pred in query.where.predicates:
                if isinstance(pred, Predicate) and not isinstance(
                        pred.value, Hole):
                    if isinstance(pred.value, tuple):
                        values.extend(pred.value)
                    else:
                        values.append(pred.value)
        if query.having is not None and not isinstance(query.having, Hole):
            for pred in query.having:
                if isinstance(pred, Predicate) and not isinstance(
                        pred.value, Hole):
                    if isinstance(pred.value, tuple):
                        values.extend(pred.value)
                    else:
                        values.append(pred.value)
        if isinstance(query.limit, int):
            values.append(query.limit)
        return values

    def _verify_literals(self, query: Query) -> VerifyResult:
        if not self.literals:
            return PASS
        used = {normalize_value(v) for v in self._used_values(query)
                if not isinstance(v, Hole)}
        for literal in self.literals:
            if normalize_value(literal.value) not in used:
                return VerifyResult(
                    ok=False, failed_stage=STAGE_LITERALS,
                    detail=f"literal {literal.value!r} unused in query")
        return PASS

    # ------------------------------------------------------------------
    # Stage 7: full Definition 2.4 satisfaction, incl. VerifyByOrder
    # ------------------------------------------------------------------
    def _verify_full(self, query: Query) -> VerifyResult:
        if self.tsq.is_empty:
            return PASS
        cap = self.config.max_result_rows
        try:
            with self.db.interruptible(self.config.execution_budget_ms):
                rows = self.db.execute(to_sql(query), max_rows=cap + 1,
                                       kind="full")
        except ExecutionTimeout as exc:
            self._timed_out = True
            return VerifyResult(ok=False, failed_stage=STAGE_FULL,
                                detail=f"execution failed: {exc}",
                                timed_out=True)
        except ExecutionError as exc:
            if _is_transient_failure(exc):
                # Not a property of the candidate: rejecting here would
                # silently alter the stream. Let the degrade ladder (or
                # the session's terminal-failed state) make it visible.
                raise
            return VerifyResult(ok=False, failed_stage=STAGE_FULL,
                                detail=f"execution failed: {exc}")
        truncated = len(rows) > cap
        if truncated:
            rows = rows[:cap]
        if not self.tsq.satisfied_by_rows(rows, truncated=truncated):
            return VerifyResult(
                ok=False, failed_stage=STAGE_FULL,
                detail="result set does not satisfy the TSQ")
        return PASS
