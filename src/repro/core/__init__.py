"""Duoquest core: TSQs, GPQE enumeration, verification, the system facade."""

from .duoquest import Duoquest, SynthesisResult
from .enumerator import Candidate, Enumerator, EnumeratorConfig
from .joins import JoinPathBuilder
from .search import (
    COST_ORDER_MODES,
    CostModel,
    ENGINES,
    PROBE_PLANNER_MODES,
    ProbePlanner,
    SearchEngine,
    SearchTelemetry,
    VERIFY_BACKENDS,
    make_frontier,
)
from .semantics import (
    DEFAULT_RULES,
    Rule,
    RuleSet,
    Violation,
    check_semantics,
)
from .tsq import (
    Cell,
    EmptyCell,
    ExactCell,
    RangeCell,
    TableSketchQuery,
    cell,
)
from .verifier import (
    ALL_STAGES,
    SharedProbeCache,
    Verifier,
    VerifierConfig,
    VerifyResult,
)

__all__ = [
    "ALL_STAGES",
    "COST_ORDER_MODES",
    "Candidate",
    "Cell",
    "CostModel",
    "DEFAULT_RULES",
    "Duoquest",
    "ENGINES",
    "EmptyCell",
    "Enumerator",
    "EnumeratorConfig",
    "ExactCell",
    "JoinPathBuilder",
    "PROBE_PLANNER_MODES",
    "ProbePlanner",
    "RangeCell",
    "Rule",
    "RuleSet",
    "SearchEngine",
    "SearchTelemetry",
    "SharedProbeCache",
    "SynthesisResult",
    "TableSketchQuery",
    "VERIFY_BACKENDS",
    "Verifier",
    "VerifierConfig",
    "VerifyResult",
    "Violation",
    "cell",
    "check_semantics",
    "make_frontier",
]
