"""Guided partial query enumeration (Algorithm 1 of the paper).

A best-first search over partial queries. Each expansion performs a single
inference decision (EnumNextStep), asks the guidance model for a softmax
distribution over the decision's output classes, and spawns one child state
per class. A state's confidence is the cumulative product of the chosen
classes' probabilities (Section 3.3.3), which satisfies Property 1. Each
child is verified against the TSQ (Algorithm 3) and pruned on failure;
complete children are emitted as candidate queries.

Decision pipeline (adapted from SyntaxSQLNet's module ordering):
clause presence (KW) for WHERE / GROUP BY / ORDER BY -> SELECT size ->
per-projection column (COL) and aggregate (AGG) -> WHERE size, connective
(AND/OR), per-predicate column / operator (OP) / literal value -> GROUP BY
columns -> HAVING presence and predicate -> ORDER BY expressions and
direction (+LIMIT flag, DESC/ASC module) -> LIMIT value -> join path.

Join paths: during partial enumeration, row probes run against the
shortest minimal join path covering the referenced tables (a sound
over-approximation for inner FK joins — a row in a larger join projects
into every smaller one). Once every other element is fixed, progressive
join path construction (Algorithm 2) branches the state into one candidate
per join path, all sharing the confidence score, tie-broken shorter-first
(Section 3.3.4). This defers the per-path state fan-out of the paper to
the final step without changing the candidate set.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

from ..db.database import Database
from ..faults import FaultPlan
from ..guidance.base import (
    Distribution,
    GuidanceContext,
    GuidanceModel,
    GuidanceRequest,
    SLOT_GROUP_BY,
    SLOT_HAVING,
    SLOT_ORDER_BY,
    SLOT_SELECT,
    SLOT_WHERE,
)
from ..errors import GuidanceError
from ..guidance.batched import (
    BatchingGuidanceModel,
    make_guidance_backend,
    parse_server_address,
)
from ..nlq.literals import Literal, NLQuery
from ..sqlir.ast import (
    HOLE,
    AggOp,
    ColumnRef,
    CompOp,
    Direction,
    Hole,
    JoinPath,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    STAR,
    SelectItem,
    Where,
)
from ..sqlir.types import ColumnType
from .joins import JoinPathBuilder
from .search import (
    Candidate,
    CancelToken,
    CostModel,
    PoolManager,
    SearchEngine,
    SearchState,
    SearchTelemetry,
    UNRESOLVED_DECISION,
    make_frontier,
    validate_cost_order,
    validate_probe_planner,
    validate_verification_config,
)
from .tsq import TableSketchQuery
from .verifier import SharedProbeCache, Verifier, VerifierConfig


@dataclass
class EnumeratorConfig:
    """Search-space bounds, engine selection and ablation switches."""

    max_select: int = 3
    max_where: int = 3
    max_group_by: int = 1
    max_having: int = 1
    max_order_by: int = 1
    max_join_extensions: int = 2
    max_expansions: int = 50_000
    max_candidates: Optional[int] = None
    time_budget: Optional[float] = None  # seconds
    guided: bool = True       # False -> NoGuide (breadth-first) ablation
    verify_partial: bool = True  # False -> NoPQ ablation
    check_semantics: bool = True
    min_confidence: float = 1e-12
    #: search strategy: "best-first" (exact, seed-equivalent), "beam", or
    #: "diverse-beam" (see repro.core.search.frontier)
    engine: str = "best-first"
    #: verification workers; 1 = inline (no pool)
    workers: int = 1
    #: verification backend: "threads" (GIL-releasing SQLite probes run
    #: in parallel), "processes" (every cascade stage parallelises over
    #: Database.snapshot() payloads), or "inline" (workers must be 1)
    verify_backend: str = "threads"
    #: frontier truncation width for the beam engines
    beam_width: int = 16
    #: states popped per expansion round; None = engine picks
    #: (max(1, workers) for best-first, the beam width for beams)
    batch_size: Optional[int] = None
    #: wrap the guidance model in a BatchingGuidanceModel: identical
    #: requests within a round are scored once, repeats across rounds
    #: are served from a bounded distribution cache. Never changes the
    #: candidate stream (deterministic models answer equal requests
    #: equally); observable in the GuideCalls/GuideHits telemetry.
    guidance_batch: bool = False
    #: bound (entries) for the guidance distribution cache
    guidance_cache_size: int = 4096
    #: HOST:PORT of an out-of-process guidance scorer (see
    #: examples/guidance_server.py); implies guidance_batch. Server
    #: failures degrade visibly to the local model.
    guidance_server: Optional[str] = None
    #: probe-planner mode (see repro.core.search.planner): "off" keeps
    #: the raw-SQL probe path, "plan" compiles probes into shared
    #: parameterised plans (canonical cache keys), "batch" additionally
    #: fuses each round's sibling probes into multi-probe statements.
    #: Never changes the candidate stream (probe answers are facts of
    #: the database); observable in the probe_compiles/probe_plan_hits/
    #: probe_batch_stmts telemetry and in statement counts.
    probe_planner: str = "off"
    #: cost-order mode (see repro.core.search.costmodel): "off" keeps
    #: the bit-for-bit seed stream; "order" verifies each round
    #: cheapest-first (same final answer set, never more executed
    #: probes — single-flight probe dedup enforces the bound); "abort"
    #: additionally abandons a round's costlier candidates once one
    #: times out (may change answers; gated by the harness
    #: accuracy-delta audit). Observable in the cost_ordered /
    #: probe_timeouts / cost_aborts telemetry.
    cost_order: str = "off"
    #: wall-clock budget (ms) for one probe statement; None = uncapped
    #: (the seed behaviour). Timed-out probes draw no conclusion but
    #: flag the candidate — the signal "abort" mode propagates.
    probe_timeout_ms: Optional[int] = None
    #: LRU bound on the shared probe cache's total entry count; None
    #: (the seed behaviour) grows without bound. Bounded mode never
    #: changes the candidate stream — an evicted entry only costs a
    #: re-probe (or a disk read, when a cache store is attached) —
    #: and is observable in the probe_cache_evictions / evicted_flushed
    #: telemetry. Ignored when the caller supplies its own prebuilt
    #: cache or verifier.
    probe_cache_entries: Optional[int] = None
    #: Deterministic fault-injection plan (``--fault-plan`` /
    #: ``$REPRO_FAULTS``; see :mod:`repro.faults`). None — the seed and
    #: production behaviour — injects nothing and leaves every seam on
    #: its zero-cost fast path. The spec rides ``VerifierConfig`` into
    #: process workers; injections surface in the faults_injected /
    #: transient_retries telemetry and the daemon's [faults] stats.
    fault_plan: Optional[str] = None

    def __post_init__(self) -> None:
        # Reject bad worker counts here, at the configuration boundary,
        # instead of letting the pool silently clamp them to 1 — a
        # `workers=0` that "works" hides real misconfiguration.
        if not isinstance(self.workers, int):
            raise ValueError(f"workers must be a positive integer "
                             f"(got {self.workers!r})")
        validate_verification_config(self.verify_backend, self.workers)
        validate_probe_planner(self.probe_planner)
        validate_cost_order(self.cost_order)
        if self.probe_timeout_ms is not None and (
                not isinstance(self.probe_timeout_ms, int)
                or isinstance(self.probe_timeout_ms, bool)
                or self.probe_timeout_ms < 1):
            raise ValueError(f"probe_timeout_ms must be a positive "
                             f"integer (got {self.probe_timeout_ms!r})")
        if self.probe_cache_entries is not None and (
                not isinstance(self.probe_cache_entries, int)
                or isinstance(self.probe_cache_entries, bool)
                or self.probe_cache_entries < 1):
            raise ValueError(f"probe_cache_entries must be a positive "
                             f"integer (got {self.probe_cache_entries!r})")
        if not isinstance(self.guidance_cache_size, int) \
                or self.guidance_cache_size < 1:
            raise ValueError(f"guidance_cache_size must be a positive "
                             f"integer (got {self.guidance_cache_size!r})")
        if self.fault_plan is not None:
            # Same ValueError boundary as the other knobs: a typo'd
            # plan must fail the run loudly, not inject nothing.
            try:
                FaultPlan.parse(self.fault_plan)
            except ValueError as exc:
                raise ValueError(f"invalid fault plan: {exc}") from None
        if self.guidance_server:
            # Re-raised as ValueError: this is the same configuration
            # boundary that rejects bad worker counts, and callers (the
            # CLI) catch ValueError there.
            try:
                parse_server_address(self.guidance_server)
            except GuidanceError as exc:
                raise ValueError(str(exc)) from None
            # The server backend only pays off through batching (one
            # request per round trip would defeat it), so the flag
            # implies the wrapper.
            self.guidance_batch = True


#: Backwards-compatible alias — the state type now lives in the search
#: subsystem.
_State = SearchState


class Enumerator:
    """GPQE over one database/NLQ/TSQ triple."""

    def __init__(self, db: Database, model: GuidanceModel, nlq: NLQuery,
                 tsq: Optional[TableSketchQuery] = None,
                 config: Optional[EnumeratorConfig] = None,
                 gold: Optional[Query] = None,
                 task_id: str = "",
                 verifier: Optional[Verifier] = None,
                 probe_cache: Optional[SharedProbeCache] = None,
                 pool_manager: Optional[PoolManager] = None,
                 cancel_token: Optional[CancelToken] = None):
        self.db = db
        self.schema = db.schema
        self.nlq = nlq
        self.tsq = tsq if tsq is not None else TableSketchQuery()
        self.config = config or EnumeratorConfig()
        # The guidance-backend config wraps the model here unless the
        # caller (the eval harness) already did — a harness-level
        # wrapper shares its distribution cache across every
        # enumeration of a run, which is where most repeats live.
        if self.config.guidance_batch \
                and not isinstance(model, BatchingGuidanceModel):
            model = make_guidance_backend(
                model, batch=True,
                cache_size=self.config.guidance_cache_size,
                server=self.config.guidance_server)
        self.model = model
        self.joins = JoinPathBuilder(
            self.schema, max_extensions=self.config.max_join_extensions)
        # ``probe_cache`` lets a caller (the eval harness) share one
        # per-database cache across many enumerations, so probe answers
        # from earlier tasks are reused; ignored when a prebuilt
        # verifier is supplied. Without a shared cache, the configured
        # entry bound still applies to the private per-enumeration one.
        if probe_cache is None and verifier is None \
                and self.config.probe_cache_entries is not None:
            probe_cache = SharedProbeCache(
                max_entries=self.config.probe_cache_entries)
        self.verifier = verifier or Verifier(
            db, tsq=self.tsq, literals=nlq.literals,
            config=VerifierConfig(
                check_semantics=self.config.check_semantics,
                verify_partial=self.config.verify_partial,
                probe_planner=self.config.probe_planner,
                probe_timeout_ms=self.config.probe_timeout_ms,
                cost_order=self.config.cost_order,
                fault_plan=self.config.fault_plan),
            probe_cache=probe_cache)
        self._ctx = GuidanceContext(nlq=nlq, schema=self.schema,
                                    gold=gold, task_id=task_id)
        # ``pool_manager`` (the SearchProblem contract's optional hook)
        # lets the eval harness lease warm, long-lived verification
        # workers instead of spawning a pool per enumeration.
        self.pool_manager = pool_manager
        # ``cancel_token`` (also part of the SearchProblem contract) is
        # a cooperative :class:`CancelToken` polled by the engine; a
        # session fires it to stop an in-flight enumeration between
        # expansions.
        self.cancel_token = cancel_token
        self.telemetry = SearchTelemetry()

        self._all_columns = tuple(self.schema.iter_column_refs())
        self._text_columns = tuple(
            ref for ref in self._all_columns
            if self.schema.column_type(ref) is ColumnType.TEXT)
        self._numeric_columns = tuple(
            ref for ref in self._all_columns
            if self.schema.column_type(ref) is ColumnType.NUMBER)
        self._text_values = tuple(
            lit.value for lit in nlq.text_literals)
        self._numeric_values = tuple(
            lit.value for lit in nlq.number_literals)
        self._between_pairs = tuple(
            (min(a, b), max(a, b))
            for a, b in itertools.combinations(self._numeric_values, 2))
        limit_values = sorted({int(v) for v in self._numeric_values
                               if float(v).is_integer()} | {1})
        self._limit_values = tuple(limit_values)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def expansions(self) -> int:
        """States expanded so far (mirrors the search telemetry)."""
        return self.telemetry.expansions

    def enumerate(self) -> Iterator[Candidate]:
        """Yield verified candidate queries (Algorithm 1).

        The loop itself lives in :mod:`repro.core.search`: this method
        builds the configured frontier/scheduler/verification stages and
        streams the engine's candidates. With ``engine="best-first"``
        the stream is identical to the original serial enumerator for
        any ``workers`` setting (see the engine's determinism notes);
        verification runs when a state is popped, not when it is
        generated, so low-confidence branches that never surface are
        never verified.
        """
        self.telemetry = SearchTelemetry()
        cost_model = None
        cost_key = None
        if self.config.cost_order != "off":
            # One model per enumeration: cardinalities are fetched once
            # and the attached verifier supplies pending-probe counts
            # for the engine's per-job estimates. The frontier weights
            # beam truncation by the probe-free structural cost only.
            cost_model = CostModel(self.db, verifier=self.verifier)
            cost_key = cost_model.structure_cost
        frontier = make_frontier(self.config.engine,
                                 beam_width=self.config.beam_width,
                                 cost_key=cost_key)
        engine = SearchEngine(self, frontier,
                              workers=self.config.workers,
                              batch_size=self.config.batch_size,
                              telemetry=self.telemetry,
                              verify_backend=self.config.verify_backend,
                              cost_order=self.config.cost_order,
                              cost_model=cost_model)
        return engine.run()

    # ------------------------------------------------------------------
    # SearchProblem interface (consumed by repro.core.search.engine)
    # ------------------------------------------------------------------
    def root_state(self) -> _State:
        return _State(query=Query.empty(), confidence=1.0, depth=0)

    def priority(self, state: _State) -> Tuple:
        if self.config.guided:
            join_len = (len(state.query.join_path)
                        if isinstance(state.query.join_path, JoinPath)
                        else len(state.query.referenced_tables()))
            return (-state.confidence, join_len, state.depth)
        # NoGuide: naive breadth-first enumeration, simpler queries first.
        return (state.depth, 0, 0)

    def decision_request(self, state: _State) -> Optional[GuidanceRequest]:
        """The pending guidance decision, reified for batch scoring
        (``None`` when the next expansion needs no model call)."""
        return self._expand(state, request_only=True)

    def expand_with(self, state: _State,
                    dist: Optional[Distribution] = None) -> List[_State]:
        """Expand with an externally scored distribution (or score now)."""
        return self._expand(state, dist=dist)

    def probe_query(self, query: Query) -> Optional[Query]:
        """Attach a provisional join path for partial verification.

        Returns ``None`` when the referenced tables cannot be joined —
        the state is unsatisfiable and must be pruned.
        """
        if isinstance(query.join_path, Hole):
            tables = query.referenced_tables()
            if tables:
                paths = self.joins.paths_for_tables(tables)
                if not paths:
                    return None
                return query.replace(join_path=paths[0])
        return query

    # ------------------------------------------------------------------
    # EnumNextStep: one inference decision per expansion
    # ------------------------------------------------------------------
    def _expand(self, state: _State, dist: Optional[Distribution] = None,
                request_only: bool = False):
        """Dispatch the next decision of ``state``.

        ``request_only=True`` returns the decision's
        :class:`GuidanceRequest` (or ``None`` for model-free expansions)
        without building children; ``dist`` supplies an externally
        scored distribution so the handler skips its own model call.

        Both the resolved decision and the reified request are memoised
        on the state: the engine dispatches each state at least twice
        (``decision_request`` while speculating, ``expand_with`` when
        consuming — more with push-backs), and without the memos each
        dispatch would re-walk the query's holes and rebuild the
        decision's candidate list from the schema. With them, only the
        first ``decision_request`` pays; every repeat — including the
        consume-time expansion, which reads the candidates back out of
        the memoised request — is O(1).
        """
        query = state.query
        decision = state.decision
        if decision is UNRESOLVED_DECISION:
            decision = self._next_decision(query)
            state.decision = decision
        if decision is None:
            return None if request_only else []
        kind = decision[0]
        ctx = self._ctx.with_partial(query)
        handler = getattr(self, f"_expand_{kind}")
        if request_only:
            if state.request is UNRESOLVED_DECISION:
                state.request = handler(ctx, state, *decision[1:],
                                        request_only=True)
            return state.request
        return handler(ctx, state, *decision[1:], dist=dist)

    def _next_decision(self, query: Query) -> Optional[Tuple]:
        """Locate the next placeholder to fill, in pipeline order."""
        if isinstance(query.where, Hole):
            return ("kw", SLOT_WHERE)
        if isinstance(query.group_by, Hole):
            return ("kw", SLOT_GROUP_BY)
        if isinstance(query.order_by, Hole):
            return ("kw", SLOT_ORDER_BY)
        if isinstance(query.select, Hole):
            return ("num", SLOT_SELECT)
        for i, item in enumerate(query.select):
            if isinstance(item, Hole):
                return ("col", SLOT_SELECT, i)
            if isinstance(item.agg, Hole):
                return ("agg", SLOT_SELECT, i)
        if isinstance(query.where, Where):
            if not query.where.predicates:
                return ("num", SLOT_WHERE)
            if len(query.where.predicates) > 1 and \
                    isinstance(query.where.logic, Hole):
                return ("logic",)
            for i, pred in enumerate(query.where.predicates):
                if isinstance(pred, Hole):
                    return ("col", SLOT_WHERE, i)
                if isinstance(pred.op, Hole):
                    return ("op", SLOT_WHERE, i)
                if isinstance(pred.value, Hole):
                    return ("val", SLOT_WHERE, i)
        if query.group_by is not None:
            if not query.group_by:
                return ("num", SLOT_GROUP_BY)
            for i, col in enumerate(query.group_by):
                if isinstance(col, Hole):
                    return ("col", SLOT_GROUP_BY, i)
            if isinstance(query.having, Hole):
                return ("having",)
            if query.having is not None:
                if not query.having:
                    return ("col", SLOT_HAVING, 0)
                for i, pred in enumerate(query.having):
                    if isinstance(pred, Hole):
                        return ("col", SLOT_HAVING, i)
                    if isinstance(pred.agg, Hole):
                        return ("agg", SLOT_HAVING, i)
                    if isinstance(pred.op, Hole):
                        return ("op", SLOT_HAVING, i)
                    if isinstance(pred.value, Hole):
                        return ("val", SLOT_HAVING, i)
        if query.order_by is not None:
            if not query.order_by:
                return ("num", SLOT_ORDER_BY)
            for i, item in enumerate(query.order_by):
                if isinstance(item, Hole):
                    return ("col", SLOT_ORDER_BY, i)
                if isinstance(item.agg, Hole):
                    return ("agg", SLOT_ORDER_BY, i)
                if isinstance(item.direction, Hole):
                    return ("dir", i)
        if isinstance(query.limit, Hole):
            return ("limit",)
        if isinstance(query.join_path, Hole):
            return ("join",)
        return None

    # ------------------------------------------------------------------
    # Decision handlers
    # ------------------------------------------------------------------
    def _memoised_candidates(self, state: _State,
                             request_only: bool) -> Optional[List]:
        """Candidates already reified into ``state.request``, if any.

        The candidate-carrying requests put their candidate tuple last
        in ``args``, so a consume-time expansion (and any re-dispatch
        after a push-back) reads the list back instead of rebuilding it
        from the schema. The reify path itself (``request_only=True``)
        and direct ``expand_with`` calls on fresh states return ``None``
        and recompute.
        """
        if request_only:
            return None
        request = state.request
        if isinstance(request, GuidanceRequest) and request.args \
                and isinstance(request.args[-1], tuple):
            return list(request.args[-1])
        return None

    def _children(self, state: _State, dist: Distribution,
                  build) -> List[_State]:
        children = []
        for choice, prob in dist:
            query = build(choice)
            if query is None:
                continue
            children.append(_State(query=query,
                                   confidence=state.confidence * prob,
                                   depth=state.depth + 1))
        return children

    def _expand_kw(self, ctx: GuidanceContext, state: _State,
                   clause: str, dist: Optional[Distribution] = None,
                   request_only: bool = False) -> List[_State]:
        if request_only:
            return GuidanceRequest("clause_presence", ctx, (clause,))
        if dist is None:
            dist = self.model.clause_presence(ctx, clause)

        def build(present: bool) -> Query:
            query = state.query
            if clause == SLOT_WHERE:
                return query.replace(
                    where=Where(logic=HOLE, predicates=()) if present
                    else None)
            if clause == SLOT_GROUP_BY:
                if present:
                    return query.replace(group_by=())
                return query.replace(group_by=None, having=None)
            if present:
                return query.replace(order_by=())
            return query.replace(order_by=None, limit=None)

        return self._children(state, dist, build)

    def _expand_num(self, ctx: GuidanceContext, state: _State,
                    slot: str, dist: Optional[Distribution] = None,
                    request_only: bool = False) -> List[_State]:
        config = self.config
        max_n = {SLOT_SELECT: config.max_select,
                 SLOT_WHERE: config.max_where,
                 SLOT_GROUP_BY: config.max_group_by,
                 SLOT_ORDER_BY: config.max_order_by}[slot]
        # A TSQ with annotations or example tuples fixes the projection
        # width; branches with other widths fail VerifyColumnTypes
        # immediately, so only the matching width is generated.
        if slot == SLOT_SELECT and self.tsq.width is not None:
            max_n = max(max_n, self.tsq.width)
        if request_only:
            return GuidanceRequest("num_items", ctx, (slot, max_n))
        if dist is None:
            dist = self.model.num_items(ctx, slot, max_n)
        if slot == SLOT_SELECT and self.tsq.width is not None:
            width = self.tsq.width
            if width < 1 or dist.prob_of(width) <= 0.0:
                return []
            dist = dist.restrict([width])

        def build(n: int) -> Query:
            holes = (HOLE,) * n
            if slot == SLOT_SELECT:
                return state.query.replace(select=holes)
            if slot == SLOT_WHERE:
                logic = LogicOp.AND if n == 1 else HOLE
                return state.query.replace(
                    where=Where(logic=logic, predicates=holes))
            if slot == SLOT_GROUP_BY:
                return state.query.replace(group_by=holes)
            return state.query.replace(order_by=holes)

        return self._children(state, dist, build)

    def _expand_logic(self, ctx: GuidanceContext, state: _State,
                      dist: Optional[Distribution] = None,
                      request_only: bool = False) -> List[_State]:
        if request_only:
            return GuidanceRequest("logic", ctx)
        if dist is None:
            dist = self.model.logic(ctx)
        where = state.query.where
        assert isinstance(where, Where)

        def build(logic: LogicOp) -> Query:
            return state.query.replace(
                where=Where(logic=logic, predicates=where.predicates))

        return self._children(state, dist, build)

    # -- column decisions -------------------------------------------------
    def _select_column_candidates(self, index: int) -> List[ColumnRef]:
        candidates: List[ColumnRef] = [STAR]
        annotation = None
        if self.tsq.types is not None and index < len(self.tsq.types):
            annotation = self.tsq.types[index]
        if annotation is ColumnType.TEXT:
            # Text output requires a text column projected unaggregated
            # (MIN/MAX on text is forbidden by the semantic rules).
            return list(self._text_columns)
        return candidates + list(self._all_columns)

    def _column_candidates(self, query: Query, slot: str,
                           index: int) -> List[ColumnRef]:
        if slot == SLOT_SELECT:
            candidates = self._select_column_candidates(index)
        elif slot == SLOT_WHERE:
            literal_types = set()
            if self._text_values:
                literal_types.add(ColumnType.TEXT)
            if self._numeric_values:
                literal_types.add(ColumnType.NUMBER)
            candidates = [ref for ref in self._all_columns
                          if self.schema.column_type(ref) in literal_types]
            # Predicates are picked in non-decreasing canonical order so
            # each predicate set is enumerated exactly once.
            assert isinstance(query.where, Where)
            prev: Optional[ColumnRef] = None
            for pred in query.where.predicates[:index]:
                if isinstance(pred, Predicate) and \
                        isinstance(pred.column, ColumnRef):
                    prev = pred.column
            if prev is not None:
                candidates = [c for c in candidates if c >= prev]
        elif slot == SLOT_GROUP_BY:
            # Grouping columns come from the unaggregated projections — the
            # same restriction SyntaxSQLNet's column pointer applies, and
            # one that holds for every query in the task scope.
            candidates = []
            if not isinstance(query.select, Hole):
                for item in query.select:
                    if isinstance(item, SelectItem) \
                            and isinstance(item.column, ColumnRef) \
                            and not item.column.is_star \
                            and not item.is_aggregate:
                        if item.column not in candidates:
                            candidates.append(item.column)
            assert query.group_by is not None
            prev = None
            for col in query.group_by[:index]:
                if isinstance(col, ColumnRef):
                    prev = col
            if prev is not None:
                candidates = [c for c in candidates if c > prev]
        elif slot == SLOT_HAVING:
            # HAVING aggregates COUNT(*) or an aggregate of a projected
            # numeric column.
            candidates = [STAR]
            if not isinstance(query.select, Hole):
                for item in query.select:
                    if isinstance(item, SelectItem) \
                            and isinstance(item.column, ColumnRef) \
                            and not item.column.is_star \
                            and self.schema.column_type(item.column) \
                            is ColumnType.NUMBER:
                        if item.column not in candidates:
                            candidates.append(item.column)
        else:  # SLOT_ORDER_BY
            candidates = [STAR] + list(self._all_columns)
        return candidates

    def _expand_col(self, ctx: GuidanceContext, state: _State,
                    slot: str, index: int,
                    dist: Optional[Distribution] = None,
                    request_only: bool = False) -> List[_State]:
        query = state.query
        candidates = self._memoised_candidates(state, request_only)
        if candidates is None:
            candidates = self._column_candidates(query, slot, index)
        if not candidates:
            return None if request_only else []
        if request_only:
            return GuidanceRequest("column", ctx, (slot, tuple(candidates)))
        if dist is None:
            dist = self.model.column(ctx, slot, candidates)

        def build(column: ColumnRef) -> Optional[Query]:
            if slot == SLOT_SELECT:
                agg = AggOp.COUNT if column.is_star else HOLE
                items = list(query.select)
                items[index] = SelectItem(agg=agg, column=column)
                return query.replace(select=tuple(items))
            if slot == SLOT_WHERE:
                assert isinstance(query.where, Where)
                preds = list(query.where.predicates)
                preds[index] = Predicate(agg=AggOp.NONE, column=column,
                                         op=HOLE, value=HOLE)
                return query.replace(where=Where(logic=query.where.logic,
                                                 predicates=tuple(preds)))
            if slot == SLOT_GROUP_BY:
                cols = list(query.group_by)
                cols[index] = column
                return query.replace(group_by=tuple(cols))
            if slot == SLOT_HAVING:
                agg = AggOp.COUNT if column.is_star else HOLE
                pred = Predicate(agg=agg, column=column, op=HOLE, value=HOLE)
                having = list(query.having) if query.having else [HOLE]
                having[index] = pred
                return query.replace(having=tuple(having))
            agg = AggOp.COUNT if column.is_star else HOLE
            items = list(query.order_by)
            items[index] = OrderItem(agg=agg, column=column, direction=HOLE)
            return query.replace(order_by=tuple(items))

        return self._children(state, dist, build)

    # -- aggregate decisions ------------------------------------------------
    def _agg_candidates(self, slot: str, column: ColumnRef,
                        query: Query, index: int) -> List[AggOp]:
        numeric = (self.schema.column_type(column) is ColumnType.NUMBER
                   if not column.is_star else True)
        if slot == SLOT_SELECT:
            annotation = None
            if self.tsq.types is not None and index < len(self.tsq.types):
                annotation = self.tsq.types[index]
            if annotation is ColumnType.TEXT:
                return [AggOp.NONE]
            candidates = [AggOp.NONE, AggOp.COUNT]
            if numeric:
                candidates += [AggOp.MAX, AggOp.MIN, AggOp.SUM, AggOp.AVG]
            if annotation is ColumnType.NUMBER and not numeric:
                candidates = [AggOp.COUNT]
            return candidates
        if slot == SLOT_HAVING:
            candidates = [AggOp.COUNT]
            if numeric:
                candidates += [AggOp.MAX, AggOp.MIN, AggOp.SUM, AggOp.AVG]
            return candidates
        # ORDER BY: aggregates only make sense for grouped queries.
        grouped = query.group_by is not None and \
            not isinstance(query.group_by, Hole)
        if not grouped:
            return [AggOp.NONE]
        candidates = [AggOp.NONE, AggOp.COUNT]
        if numeric:
            candidates += [AggOp.MAX, AggOp.MIN, AggOp.SUM, AggOp.AVG]
        return candidates

    def _expand_agg(self, ctx: GuidanceContext, state: _State,
                    slot: str, index: int,
                    dist: Optional[Distribution] = None,
                    request_only: bool = False) -> List[_State]:
        query = state.query
        if slot == SLOT_SELECT:
            item = query.select[index]
            column = item.column
        elif slot == SLOT_HAVING:
            pred = query.having[index]
            column = pred.column
        else:
            item = query.order_by[index]
            column = item.column
        assert isinstance(column, ColumnRef)
        candidates = self._memoised_candidates(state, request_only)
        if candidates is None:
            candidates = self._agg_candidates(slot, column, query, index)
        if not candidates:
            return None if request_only else []
        if request_only:
            return GuidanceRequest("aggregate", ctx,
                                   (slot, column, tuple(candidates)))
        if dist is None:
            dist = self.model.aggregate(ctx, slot, column, candidates)

        def build(agg: AggOp) -> Query:
            if slot == SLOT_SELECT:
                items = list(query.select)
                items[index] = SelectItem(agg=agg, column=column)
                return query.replace(select=tuple(items))
            if slot == SLOT_HAVING:
                preds = list(query.having)
                old = preds[index]
                preds[index] = Predicate(agg=agg, column=column,
                                         op=old.op, value=old.value)
                return query.replace(having=tuple(preds))
            items = list(query.order_by)
            old = items[index]
            items[index] = OrderItem(agg=agg, column=column,
                                     direction=old.direction)
            return query.replace(order_by=tuple(items))

        return self._children(state, dist, build)

    # -- operator decisions ---------------------------------------------------
    def _op_candidates(self, slot: str, column: ColumnRef,
                       agg: AggOp) -> List[CompOp]:
        if slot == SLOT_HAVING or agg.is_aggregate:
            ops = [CompOp.GT, CompOp.GE, CompOp.LT, CompOp.LE, CompOp.EQ]
            if self._between_pairs:
                ops.append(CompOp.BETWEEN)
            return ops
        col_type = self.schema.column_type(column)
        if col_type is ColumnType.TEXT:
            ops = [CompOp.EQ, CompOp.NE]
            if self._text_values:
                ops.append(CompOp.LIKE)
            return ops
        ops = [CompOp.EQ, CompOp.NE, CompOp.GT, CompOp.LT, CompOp.GE,
               CompOp.LE]
        if self._between_pairs:
            ops.append(CompOp.BETWEEN)
        return ops

    def _expand_op(self, ctx: GuidanceContext, state: _State,
                   slot: str, index: int,
                   dist: Optional[Distribution] = None,
                   request_only: bool = False) -> List[_State]:
        query = state.query
        preds = (query.where.predicates if slot == SLOT_WHERE
                 else query.having)
        pred = preds[index]
        assert isinstance(pred, Predicate)
        assert isinstance(pred.column, ColumnRef)
        assert isinstance(pred.agg, AggOp)
        candidates = self._memoised_candidates(state, request_only)
        if candidates is None:
            candidates = self._op_candidates(slot, pred.column, pred.agg)
        if request_only:
            return GuidanceRequest("comparison", ctx,
                                   (slot, pred.column, tuple(candidates)))
        if dist is None:
            dist = self.model.comparison(ctx, slot, pred.column, candidates)

        def build(op: CompOp) -> Query:
            new_pred = Predicate(agg=pred.agg, column=pred.column,
                                 op=op, value=pred.value)
            new_preds = list(preds)
            new_preds[index] = new_pred
            if slot == SLOT_WHERE:
                return query.replace(where=Where(
                    logic=query.where.logic, predicates=tuple(new_preds)))
            return query.replace(having=tuple(new_preds))

        return self._children(state, dist, build)

    # -- value decisions ----------------------------------------------------------
    def _value_candidates(self, slot: str, pred: Predicate) -> List[object]:
        assert isinstance(pred.op, CompOp)
        if pred.op is CompOp.BETWEEN:
            return list(self._between_pairs)
        if slot == SLOT_HAVING or pred.agg.is_aggregate:
            return list(self._numeric_values)
        col_type = self.schema.column_type(pred.column)
        if col_type is ColumnType.TEXT:
            return list(self._text_values)
        return list(self._numeric_values)

    def _expand_val(self, ctx: GuidanceContext, state: _State,
                    slot: str, index: int,
                    dist: Optional[Distribution] = None,
                    request_only: bool = False) -> List[_State]:
        query = state.query
        preds = (query.where.predicates if slot == SLOT_WHERE
                 else query.having)
        pred = preds[index]
        assert isinstance(pred, Predicate)
        candidates = self._memoised_candidates(state, request_only)
        if candidates is None:
            candidates = self._value_candidates(slot, pred)
        if not candidates:
            return None if request_only else []
        if request_only:
            return GuidanceRequest("value", ctx,
                                   (slot, pred.column, tuple(candidates)))
        if dist is None:
            dist = self.model.value(ctx, slot, pred.column, candidates)

        def build(value: object) -> Query:
            new_pred = Predicate(agg=pred.agg, column=pred.column,
                                 op=pred.op, value=value)
            new_preds = list(preds)
            new_preds[index] = new_pred
            if slot == SLOT_WHERE:
                return query.replace(where=Where(
                    logic=query.where.logic, predicates=tuple(new_preds)))
            return query.replace(having=tuple(new_preds))

        return self._children(state, dist, build)

    # -- HAVING presence --------------------------------------------------------
    def _expand_having(self, ctx: GuidanceContext, state: _State,
                       dist: Optional[Distribution] = None,
                       request_only: bool = False) -> List[_State]:
        if request_only:
            return GuidanceRequest("having_presence", ctx)
        if dist is None:
            dist = self.model.having_presence(ctx)
        if not self._numeric_values:
            # A HAVING predicate needs a numeric literal; without one the
            # present branch cannot complete, so only absent survives.
            confidence = state.confidence * dist.prob_of(False)
            return [_State(query=state.query.replace(having=None),
                           confidence=confidence, depth=state.depth + 1)]

        def build(present: bool) -> Query:
            return state.query.replace(having=(HOLE,) if present else None)

        return self._children(state, dist, build)

    # -- ORDER BY direction (+ LIMIT flag) -----------------------------------------
    def _expand_dir(self, ctx: GuidanceContext, state: _State,
                    index: int, dist: Optional[Distribution] = None,
                    request_only: bool = False) -> List[_State]:
        query = state.query
        item = query.order_by[index]
        assert isinstance(item, OrderItem)
        assert isinstance(item.column, ColumnRef)
        if request_only:
            return GuidanceRequest("direction", ctx, (item.column,))
        if dist is None:
            dist = self.model.direction(ctx, item.column)

        def build(choice: Tuple[Direction, bool]) -> Query:
            direction, has_limit = choice
            items = list(query.order_by)
            items[index] = OrderItem(agg=item.agg, column=item.column,
                                     direction=direction)
            updated = query.replace(order_by=tuple(items))
            if index == 0:
                updated = updated.replace(limit=HOLE if has_limit else None)
            return updated

        return self._children(state, dist, build)

    def _expand_limit(self, ctx: GuidanceContext, state: _State,
                      dist: Optional[Distribution] = None,
                      request_only: bool = False) -> List[_State]:
        if request_only:
            return GuidanceRequest("limit_value", ctx,
                                   (tuple(self._limit_values),))
        if dist is None:
            dist = self.model.limit_value(ctx, list(self._limit_values))

        def build(value: int) -> Query:
            return state.query.replace(limit=int(value))

        return self._children(state, dist, build)

    # -- final join path branching (Algorithm 2) --------------------------------------
    def _expand_join(self, ctx: GuidanceContext, state: _State,
                     dist: Optional[Distribution] = None,
                     request_only: bool = False) -> List[_State]:
        if request_only:
            return None  # pure branching: no guidance decision involved
        tables = state.query.referenced_tables()
        paths = self.joins.paths_for_tables(tables)
        # Extension paths (tables beyond those referenced, Example 3.2)
        # only change observable results for aggregate queries — an extra
        # FK-PK inner join alters COUNT/SUM/AVG groups but merely
        # duplicates rows otherwise — so plain queries keep the minimal
        # Steiner paths and skip the near-duplicate candidates.
        if not state.query.has_aggregate:
            table_count = min((len(p) for p in paths), default=0)
            paths = tuple(p for p in paths if len(p) == table_count)
        children = []
        for path in paths:
            # All join-path states share the parent's confidence score;
            # the heap tie-breaks on join path length (Section 3.3.4).
            children.append(_State(
                query=state.query.replace(join_path=path),
                confidence=state.confidence,
                depth=state.depth + 1))
        return children
