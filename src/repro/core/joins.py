"""Progressive join path construction (Algorithm 2 of the paper).

Every partial query must be executable, so candidate join paths are
produced for each partial query as soon as its referenced tables are
known. The minimal path is a Steiner tree over the schema graph (nodes =
tables, edges = FK-PK links, unit weights, following Baik et al.'s query
log work cited in Section 3.3.4), and one level of *join extensions* adds
FK-PK joins to tables beyond those referenced (Example 3.2: ``SELECT
a.name FROM actor JOIN starring``).

All candidate paths for a partial query share its confidence score; the
enumerator breaks ties by join path length, shorter first (Section 3.3.4).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, List, Sequence, Tuple

import networkx as nx
from networkx.algorithms.approximation import steiner_tree

from ..db.schema import ForeignKey, Schema
from ..sqlir.ast import JoinEdge, JoinPath


class JoinPathBuilder:
    """Caches join path construction per referenced-table set."""

    def __init__(self, schema: Schema, max_extensions: int = 1):
        """``max_extensions`` is the depth of the AddJoin loop (Lines
        10-12 of Algorithm 2); the paper depicts one level."""
        self.schema = schema
        self.max_extensions = max_extensions
        self._cache: Dict[FrozenSet[str], Tuple[JoinPath, ...]] = {}

    # ------------------------------------------------------------------
    def paths_for_tables(self, tables: Sequence[str]) -> Tuple[JoinPath, ...]:
        """All candidate join paths covering ``tables``, shortest first.

        With no referenced tables, every table of the database is a
        candidate single-table path (Line 6 of Algorithm 2). Disconnected
        table sets yield no paths, killing the search branch.
        """
        key = frozenset(tables)
        if key not in self._cache:
            self._cache[key] = self._build(key)
        return self._cache[key]

    # ------------------------------------------------------------------
    def _build(self, tables: FrozenSet[str]) -> Tuple[JoinPath, ...]:
        if not tables:
            base_paths = [JoinPath(tables=(t.name,))
                          for t in self.schema.tables]
            return tuple(base_paths)

        minimal = self._steiner_paths(tables)
        results: List[JoinPath] = list(minimal)
        frontier = list(minimal)
        for _ in range(self.max_extensions):
            extended: List[JoinPath] = []
            for path in frontier:
                extended.extend(self._extend(path))
            results.extend(extended)
            frontier = extended

        unique: Dict[object, JoinPath] = {}
        for path in results:
            unique.setdefault(path.canonical(), path)
        return tuple(sorted(unique.values(),
                            key=lambda p: (len(p), p.canonical())))

    def _steiner_paths(self, tables: FrozenSet[str]) -> List[JoinPath]:
        """Minimal join paths spanning ``tables`` (Line 8 of Algorithm 2).

        The Steiner tree fixes the set of table-level edges; when two
        tables are linked by several foreign keys, one path per FK choice
        is produced.
        """
        if len(tables) == 1:
            (table,) = tables
            return [JoinPath(tables=(table,))]
        graph = nx.Graph(self.schema.graph())  # collapse parallel edges
        missing = [t for t in tables if t not in graph]
        if missing:
            return []
        # The Steiner routine assumes a connected graph; work within the
        # component holding the terminals (disconnected terminals mean no
        # join path exists and the search branch dies).
        first = next(iter(tables))
        component = nx.node_connected_component(graph, first)
        if not set(tables) <= component:
            return []
        graph = graph.subgraph(component)
        try:
            tree = steiner_tree(graph, list(tables), weight="weight")
        except (nx.NetworkXError, nx.NodeNotFound):
            return []
        if tree.number_of_nodes() and not nx.is_connected(tree):
            return []
        if not set(tables) <= set(tree.nodes):
            return []
        tree_tables = tuple(sorted(tree.nodes))
        edge_choices: List[List[ForeignKey]] = []
        for left, right in tree.edges:
            fks = self.schema.foreign_keys_between(left, right)
            if not fks:
                return []
            edge_choices.append(fks)
        paths = []
        for combo in itertools.product(*edge_choices):
            edges = tuple(fk.as_join_edge() for fk in combo)
            paths.append(JoinPath(tables=tree_tables, edges=edges))
        return paths

    def _extend(self, path: JoinPath) -> List[JoinPath]:
        """One AddJoin level: attach any FK-PK join to a new table."""
        extensions = []
        present = set(path.tables)
        for table in path.tables:
            incident = (self.schema.foreign_keys_from(table)
                        + self.schema.foreign_keys_into(table))
            for fk in incident:
                new_table = (fk.dst_table if fk.src_table in present
                             else fk.src_table)
                if new_table in present:
                    continue
                extensions.append(JoinPath(
                    tables=path.tables + (new_table,),
                    edges=path.edges + (fk.as_join_edge(),)))
        return extensions
