"""Semantic pruning rules: the Table 4 catalog.

VerifySemantics (Algorithm 3, line 4) discards syntactically valid but
nonsensical or redundant queries. The rules follow Table 4 of the paper
(a subset of Brass & Goldberg's catalog of semantic SQL errors, plus the
paper's additions). Rules are hole-tolerant: they only judge the concrete
parts of a partial query, so a rule that fires on a partial query would
also fire on every completion of it — which is what makes pruning sound.

Domain-specific deployments may append custom rules (Section 4.1); use
:class:`RuleSet` for that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..db.schema import Schema
from ..sqlir.ast import (
    AggOp,
    ColumnRef,
    CompOp,
    Hole,
    LogicOp,
    OrderItem,
    Predicate,
    Query,
    SelectItem,
    Where,
)
from ..sqlir.types import ColumnType


@dataclass(frozen=True)
class Violation:
    """A fired semantic rule."""

    rule: str
    message: str

    def __repr__(self) -> str:
        return f"<Violation {self.rule}: {self.message}>"


@dataclass(frozen=True)
class Rule:
    """One semantic pruning rule (a row of Table 4)."""

    name: str
    description: str
    check: Callable[[Query, Schema], Optional[str]]

    def apply(self, query: Query, schema: Schema) -> Optional[Violation]:
        message = self.check(query, schema)
        if message is None:
            return None
        return Violation(rule=self.name, message=message)


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _complete_where_predicates(query: Query) -> List[Predicate]:
    if not isinstance(query.where, Where):
        return []
    return [p for p in query.where.predicates
            if isinstance(p, Predicate) and p.is_complete]


def _where_logic(query: Query) -> Optional[LogicOp]:
    if not isinstance(query.where, Where):
        return None
    if isinstance(query.where.logic, Hole):
        return None
    if len(query.where.predicates) == 1:
        return LogicOp.AND
    return query.where.logic


def _concrete_select_items(query: Query) -> List[SelectItem]:
    if isinstance(query.select, Hole):
        return []
    return [item for item in query.select
            if isinstance(item, SelectItem) and item.is_complete]


def _numeric_interval(pred: Predicate) -> Optional[Tuple[float, float]]:
    """The value interval a numeric predicate admits, or None for non-
    interval operators (LIKE, NE)."""
    value = pred.value
    if isinstance(value, Hole):
        return None
    if pred.op is CompOp.BETWEEN and isinstance(value, tuple):
        low, high = (float(v) for v in value)  # type: ignore[arg-type]
        return (low, high)
    if isinstance(value, (tuple, str)):
        return None
    number = float(value)
    if pred.op is CompOp.EQ:
        return (number, number)
    if pred.op is CompOp.LT:
        return (float("-inf"), number - 1e-12)
    if pred.op is CompOp.LE:
        return (float("-inf"), number)
    if pred.op is CompOp.GT:
        return (number + 1e-12, float("inf"))
    if pred.op is CompOp.GE:
        return (number, float("inf"))
    return None


# ----------------------------------------------------------------------
# Table 4 rules
# ----------------------------------------------------------------------
def _inconsistent_predicates(query: Query, schema: Schema) -> Optional[str]:
    """AND-connected predicates on one column that contradict each other."""
    if _where_logic(query) is not LogicOp.AND:
        return None
    by_column: Dict[ColumnRef, List[Predicate]] = {}
    for pred in _complete_where_predicates(query):
        if pred.agg.is_aggregate or isinstance(pred.column, Hole):
            continue
        by_column.setdefault(pred.column, []).append(pred)
    for column, preds in by_column.items():
        if len(preds) < 2:
            continue
        # Two different equality constants can never both hold.
        eq_values = {repr(p.value) for p in preds if p.op is CompOp.EQ}
        if len(eq_values) > 1:
            return (f"conflicting equality predicates on {column!r}: "
                    f"{sorted(eq_values)}")
        intervals = [iv for iv in (_numeric_interval(p) for p in preds)
                     if iv is not None]
        if len(intervals) >= 2:
            low = max(iv[0] for iv in intervals)
            high = min(iv[1] for iv in intervals)
            if low > high:
                return (f"predicates on {column!r} admit no value "
                        f"(empty interval intersection)")
    return None


def _constant_output_column(query: Query, schema: Schema) -> Optional[str]:
    """A projected column constrained by an equality predicate is constant."""
    if _where_logic(query) is not LogicOp.AND:
        return None
    eq_columns = {pred.column for pred in _complete_where_predicates(query)
                  if pred.op is CompOp.EQ and not pred.agg.is_aggregate}
    for item in _concrete_select_items(query):
        if item.is_aggregate:
            continue
        if item.column in eq_columns:
            return (f"projected column {item.column!r} is constant due to "
                    f"an equality predicate")
    return None


def _ungrouped_aggregation(query: Query, schema: Schema) -> Optional[str]:
    """Mixing aggregated and plain projections requires GROUP BY."""
    if isinstance(query.group_by, Hole):
        return None  # grouping not decided yet
    if query.group_by is not None:
        return None
    items = _concrete_select_items(query)
    has_agg = any(item.is_aggregate for item in items)
    has_plain = any(not item.is_aggregate for item in items)
    if has_agg and has_plain:
        return "aggregated and unaggregated projections without GROUP BY"
    return None


def _groupby_singleton_groups(query: Query, schema: Schema) -> Optional[str]:
    """Grouping a single table by its primary key makes singleton groups."""
    if query.group_by is None or isinstance(query.group_by, Hole):
        return None
    if not isinstance(query.join_path, Hole) and len(query.join_path) > 1:
        return None  # joins can give PK groups multiple rows
    referenced = query.referenced_tables()
    if len(referenced) > 1:
        return None
    for column in query.group_by:
        if isinstance(column, Hole):
            continue
        try:
            col = schema.column(column)
        except Exception:
            continue
        if col.is_primary_key:
            return (f"grouping by primary key {column!r} produces "
                    f"singleton groups")
    return None


def _unnecessary_groupby(query: Query, schema: Schema) -> Optional[str]:
    """GROUP BY without any aggregate in SELECT, HAVING or ORDER BY."""
    if query.group_by is None or isinstance(query.group_by, Hole):
        return None
    if not query.is_complete:
        return None  # an aggregate may still be introduced
    if not query.has_aggregate:
        return "GROUP BY without aggregates is unnecessary"
    return None


def _aggregate_type_usage(query: Query, schema: Schema) -> Optional[str]:
    """MIN/MAX/AVG/SUM may not be applied to text columns."""
    numeric_only = (AggOp.MIN, AggOp.MAX, AggOp.AVG, AggOp.SUM)

    def bad(agg: object, column: object) -> bool:
        if not isinstance(agg, AggOp) or agg not in numeric_only:
            return False
        if not isinstance(column, ColumnRef) or column.is_star:
            return False
        try:
            return schema.column_type(column) is ColumnType.TEXT
        except Exception:
            return False

    for item in _concrete_select_items(query):
        if bad(item.agg, item.column):
            return f"{item.agg}({item.column!r}) applied to a text column"
    if query.order_by is not None and not isinstance(query.order_by, Hole):
        for item in query.order_by:
            if isinstance(item, OrderItem) and bad(item.agg, item.column):
                return (f"{item.agg}({item.column!r}) in ORDER BY applied "
                        f"to a text column")
    if query.having is not None and not isinstance(query.having, Hole):
        for pred in query.having:
            if isinstance(pred, Predicate) and bad(pred.agg, pred.column):
                return (f"{pred.agg}({pred.column!r}) in HAVING applied "
                        f"to a text column")
    return None


def _faulty_type_comparison(query: Query, schema: Schema) -> Optional[str]:
    """Inequalities on text columns; LIKE on numeric columns."""
    def preds() -> Iterable[Predicate]:
        yield from _complete_where_predicates(query)
        if query.having is not None and not isinstance(query.having, Hole):
            for pred in query.having:
                if isinstance(pred, Predicate) and pred.is_complete:
                    yield pred

    for pred in preds():
        if pred.agg.is_aggregate or isinstance(pred.column, Hole):
            continue
        try:
            col_type = schema.column_type(pred.column)
        except Exception:
            continue
        if col_type is ColumnType.TEXT and pred.op.is_inequality:
            return (f"inequality {pred.op.value} applied to text column "
                    f"{pred.column!r}")
        if col_type is ColumnType.NUMBER and pred.op is CompOp.LIKE:
            return f"LIKE applied to numeric column {pred.column!r}"
    return None


def _duplicate_predicates(query: Query, schema: Schema) -> Optional[str]:
    """Identical predicates repeated in one clause are redundant."""
    preds = _complete_where_predicates(query)
    seen = set()
    for pred in preds:
        key = (pred.agg, pred.column, pred.op, repr(pred.value))
        if key in seen:
            return f"duplicate predicate {pred!r}"
        seen.add(key)
    return None


def _duplicate_projections(query: Query, schema: Schema) -> Optional[str]:
    """Identical SELECT expressions repeated are redundant."""
    seen = set()
    for item in _concrete_select_items(query):
        key = (item.agg, item.column, item.distinct)
        if key in seen:
            return f"duplicate projection {item!r}"
        seen.add(key)
    return None


def _having_without_groupby(query: Query, schema: Schema) -> Optional[str]:
    """HAVING requires a GROUP BY clause (scope restriction)."""
    if query.having is None or isinstance(query.having, Hole):
        return None
    if query.group_by is None:
        return "HAVING without GROUP BY"
    return None


#: The default rule set (Table 4 plus two structural sanity rules).
DEFAULT_RULES: Tuple[Rule, ...] = (
    Rule("inconsistent-predicates",
         "Do not permit selection predicates on the same column that "
         "contradict each other.",
         _inconsistent_predicates),
    Rule("constant-output-column",
         "Do not permit columns with equality predicates to be projected.",
         _constant_output_column),
    Rule("ungrouped-aggregation",
         "An unaggregated projection and aggregation cannot be used "
         "together without GROUP BY.",
         _ungrouped_aggregation),
    Rule("groupby-singleton-groups",
         "If each group consists of a single row (e.g. group contains "
         "primary key), aggregation is unnecessary.",
         _groupby_singleton_groups),
    Rule("unnecessary-groupby",
         "If there are no aggregates in the SELECT, ORDER BY or HAVING "
         "clauses, GROUP BY is unnecessary.",
         _unnecessary_groupby),
    Rule("aggregate-type-usage",
         "MIN/MAX/AVG/SUM may not be applied to text columns.",
         _aggregate_type_usage),
    Rule("faulty-type-comparison",
         ">, <, >=, <=, BETWEEN may not be applied to text columns; LIKE "
         "may not be applied to numeric columns.",
         _faulty_type_comparison),
    Rule("duplicate-predicates",
         "Identical predicates repeated in one clause are redundant.",
         _duplicate_predicates),
    Rule("duplicate-projections",
         "Identical SELECT expressions repeated are redundant.",
         _duplicate_projections),
    Rule("having-without-groupby",
         "HAVING requires a GROUP BY clause.",
         _having_without_groupby),
)


class RuleSet:
    """A configurable collection of semantic rules.

    Section 4.1: "domain-specific semantic rules may also be appended to
    the default semantic rules provided by Duoquest."
    """

    def __init__(self, rules: Sequence[Rule] = DEFAULT_RULES):
        self._rules = tuple(rules)

    def extended(self, extra: Sequence[Rule]) -> "RuleSet":
        return RuleSet(self._rules + tuple(extra))

    @property
    def rules(self) -> Tuple[Rule, ...]:
        return self._rules

    def check(self, query: Query, schema: Schema) -> List[Violation]:
        violations = []
        for rule in self._rules:
            violation = rule.apply(query, schema)
            if violation is not None:
                violations.append(violation)
        return violations

    def ok(self, query: Query, schema: Schema) -> bool:
        return all(rule.apply(query, schema) is None for rule in self._rules)


def check_semantics(query: Query, schema: Schema) -> List[Violation]:
    """Check ``query`` against the default Table 4 rule set."""
    return RuleSet().check(query, schema)
