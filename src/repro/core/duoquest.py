"""The Duoquest system facade.

Wires together the guidance model, GPQE enumerator, join path builder and
verifier into the dual-specification synthesis API of the paper's problem
definition (Section 2.3): given a database, an NLQ with tagged literals,
and an optional TSQ, produce a ranked list of candidate SQL queries, each
guaranteed to satisfy the TSQ (soundness).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..db.database import Database
from ..guidance.base import GuidanceModel
from ..guidance.batched import (
    BatchingGuidanceModel,
    close_guidance,
    make_guidance_backend,
)
from ..guidance.lexical import LexicalGuidanceModel
from ..nlq.literals import NLQuery
from ..sqlir.ast import Query
from ..sqlir.render import to_sql
from .enumerator import Candidate, Enumerator, EnumeratorConfig
from .search import CancelToken, PoolManager, SearchTelemetry
from .tsq import TableSketchQuery
from .verifier import SharedProbeCache, Verifier


@dataclass
class SynthesisResult:
    """Outcome of one synthesis run."""

    candidates: List[Candidate]
    elapsed: float
    expansions: int
    timed_out: bool
    verifier_stats: dict = field(default_factory=dict)
    #: per-stage search telemetry (engine, prunes, cache hit rate, ...)
    telemetry: Optional[SearchTelemetry] = None

    def ranked(self) -> List[Candidate]:
        """Candidates from highest to lowest confidence (ties: emission
        order, which already prefers shorter join paths)."""
        return sorted(self.candidates,
                      key=lambda c: (-c.confidence, c.index))

    def top(self, k: int) -> List[Candidate]:
        return self.ranked()[:k]

    def rank_of(self, predicate: Callable[[Query], bool]) -> Optional[int]:
        """1-based rank of the first candidate satisfying ``predicate``."""
        for rank, candidate in enumerate(self.ranked(), start=1):
            if predicate(candidate.query):
                return rank
        return None

    def sql(self, k: int = 10) -> List[str]:
        """The top-k candidates rendered to SQL."""
        return [to_sql(c.query) for c in self.top(k)]

    def __repr__(self) -> str:
        return (f"<SynthesisResult {len(self.candidates)} candidates in "
                f"{self.elapsed:.3f}s>")


class Duoquest:
    """Dual-specification query synthesis (Figure 3's Enumerator+Verifier).

    Example::

        system = Duoquest(db)
        result = system.synthesize(
            NLQuery.from_text('Find all movies before 1995.'),
            TableSketchQuery.build(types=['text'],
                                   rows=[['Forrest Gump']]))
        for candidate in result.top(10):
            print(to_sql(candidate.query))
    """

    def __init__(self, db: Database,
                 model: Optional[GuidanceModel] = None,
                 config: Optional[EnumeratorConfig] = None,
                 probe_cache: Optional[SharedProbeCache] = None,
                 pool_manager: Optional[PoolManager] = None):
        self.db = db
        self.config = config or EnumeratorConfig()
        model = model or LexicalGuidanceModel()
        # The facade — not the per-synthesize Enumerator — owns the
        # guidance backend it creates: the batching wrapper's cache then
        # amortises across synthesize() calls, a server backend opens
        # one connection per system instead of one per enumeration, and
        # close() below can release it. A model the caller wrapped
        # already (the eval harness) is left alone and never closed
        # here.
        self._owns_guidance = False
        if self.config.guidance_batch \
                and not isinstance(model, BatchingGuidanceModel):
            model = make_guidance_backend(
                model, batch=True,
                cache_size=self.config.guidance_cache_size,
                server=self.config.guidance_server)
            self._owns_guidance = True
        self.model = model
        #: optional shared probe cache; the eval harness passes one per
        #: database so probe answers are reused across tasks
        self.probe_cache = probe_cache
        #: optional warm verification-pool manager; the eval harness
        #: passes one so worker processes persist across enumerations
        self.pool_manager = pool_manager

    def close(self) -> None:
        """Release the guidance backend, if this facade created it.

        A no-op when the caller supplied a pre-wrapped (or plain)
        model — whoever wrapped it owns it. Idempotent.
        """
        if self._owns_guidance:
            close_guidance(self.model)

    def __enter__(self) -> "Duoquest":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def synthesize(self, nlq: NLQuery,
                   tsq: Optional[TableSketchQuery] = None,
                   gold: Optional[Query] = None,
                   task_id: str = "",
                   stop_when: Optional[Callable[[Candidate], bool]] = None,
                   cancel_token: Optional[CancelToken] = None,
                   ) -> SynthesisResult:
        """Run GPQE and collect candidates.

        ``gold``/``task_id`` are forwarded to the guidance context (used
        only by the calibrated oracle backend). ``stop_when`` lets the
        caller terminate as soon as a particular candidate appears — the
        simulation harness stops when the desired query is produced, as in
        Section 5.4.1. ``cancel_token`` is a cooperative
        :class:`~repro.core.search.CancelToken` polled by the engine;
        interactive sessions pass one so an in-flight enumeration can be
        cancelled (or budget-stopped) from another thread.
        """
        start = time.monotonic()
        enumerator = Enumerator(self.db, self.model, nlq, tsq=tsq,
                                config=self.config, gold=gold,
                                task_id=task_id,
                                probe_cache=self.probe_cache,
                                pool_manager=self.pool_manager,
                                cancel_token=cancel_token)
        candidates: List[Candidate] = []
        stream = enumerator.enumerate()
        try:
            for candidate in stream:
                candidates.append(candidate)
                if stop_when is not None and stop_when(candidate):
                    break
        finally:
            # Deterministic teardown on early stop: shuts the
            # verification pool down and finalises the telemetry before
            # the result snapshot below.
            stream.close()
        elapsed = time.monotonic() - start
        timed_out = (self.config.time_budget is not None
                     and elapsed >= self.config.time_budget)
        return SynthesisResult(candidates=candidates, elapsed=elapsed,
                               expansions=enumerator.expansions,
                               timed_out=timed_out,
                               verifier_stats=dict(enumerator.verifier.stats),
                               telemetry=enumerator.telemetry)
