"""Table sketch queries (TSQs): Definitions 2.3 and 2.4 of the paper.

A TSQ ``T = (alpha, chi, tau, k)`` carries optional column type
annotations, optional example tuples whose cells are *exact*, *empty* or
*range* cells, a sorting flag, and a limit (``k = 0`` meaning unlimited).

:func:`TableSketchQuery.satisfied_by` implements the satisfaction relation
``T(q, D)`` of Definition 2.4 against a materialised result set, including
the requirement that distinct example tuples be matched by *distinct*
result tuples (a maximum bipartite matching) and, when sorted, in the same
order as specified (an order-preserving assignment).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from ..db.database import Row
from ..errors import TSQError
from ..sqlir.types import ColumnType, Value, coerce_value, value_type


@dataclass(frozen=True)
class ExactCell:
    """A cell that matches result cells with the same value."""

    value: Value

    def matches(self, cell: object) -> bool:
        if cell is None:
            return False
        return _values_equal(self.value, cell)

    def __repr__(self) -> str:
        return f"{self.value!r}"


@dataclass(frozen=True)
class EmptyCell:
    """A cell that matches any result cell."""

    def matches(self, cell: object) -> bool:
        return True

    def __repr__(self) -> str:
        return "_"


@dataclass(frozen=True)
class RangeCell:
    """A cell matching numeric result cells within [low, high]."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.low > self.high:
            raise TSQError(f"range cell has low {self.low} > high {self.high}")

    def matches(self, cell: object) -> bool:
        number = _as_number(cell)
        if number is None:
            return False
        return self.low <= number <= self.high

    def __repr__(self) -> str:
        return f"[{self.low},{self.high}]"


Cell = Union[ExactCell, EmptyCell, RangeCell]
ExampleTuple = Tuple[Cell, ...]


def _as_number(value: object) -> Optional[float]:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        try:
            return float(value.strip())
        except ValueError:
            return None
    return None


def _values_equal(expected: Value, actual: object) -> bool:
    """Compare a TSQ cell value against a database cell.

    Numeric comparison when both sides are numeric; case-insensitive,
    whitespace-trimmed string comparison otherwise (the autocomplete
    interface fills cells with exact database spellings, but users may
    differ in case).
    """
    expected_num = _as_number(expected)
    actual_num = _as_number(actual)
    if expected_num is not None and actual_num is not None:
        return abs(expected_num - actual_num) < 1e-9
    return str(expected).strip().casefold() == str(actual).strip().casefold()


def cell(value: object) -> Cell:
    """Convenience constructor: None -> empty, (low, high) -> range,
    otherwise exact."""
    if value is None:
        return EmptyCell()
    if isinstance(value, (tuple, list)) and len(value) == 2:
        low, high = (_as_number(v) for v in value)
        if low is None or high is None:
            raise TSQError(f"range cell bounds must be numeric: {value!r}")
        return RangeCell(low=low, high=high)
    if isinstance(value, (ExactCell, EmptyCell, RangeCell)):
        return value
    if not isinstance(value, (str, int, float)):
        raise TSQError(f"unsupported cell value {value!r}")
    return ExactCell(value=value)


@dataclass(frozen=True)
class TableSketchQuery:
    """A table sketch query ``T = (alpha, chi, tau, k)`` (Definition 2.3).

    Two extensions from the paper's future-work section (Section 7) are
    supported beyond the core definition:

    * ``negative_tuples`` — example tuples that must *not* appear in the
      result (the "negative examples added by clicking a candidate
      preview" interaction);
    * ``tolerance`` — the number of positive example tuples allowed to go
      unmatched, a simple form of noisy-example handling ("Duoquest is
      not yet able to deal with noisy examples"). The default of 0 is the
      paper's strict Definition 2.4.
    """

    types: Optional[Tuple[ColumnType, ...]] = None
    tuples: Tuple[ExampleTuple, ...] = ()
    sorted: bool = False
    limit: int = 0
    negative_tuples: Tuple[ExampleTuple, ...] = ()
    tolerance: int = 0

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise TSQError("limit k must be >= 0")
        if self.tolerance < 0:
            raise TSQError("tolerance must be >= 0")
        width = self.width
        if width is not None:
            for example in self.tuples + self.negative_tuples:
                if len(example) != width:
                    raise TSQError(
                        f"example tuple {example!r} has {len(example)} cells, "
                        f"expected {width}")

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, types: Optional[Sequence[str]] = None,
              rows: Sequence[Sequence[object]] = (),
              sorted: bool = False, limit: int = 0,
              negative_rows: Sequence[Sequence[object]] = (),
              tolerance: int = 0) -> "TableSketchQuery":
        """Friendly constructor from plain Python values.

        ``types`` uses ``"text"``/``"number"`` strings; each row cell may
        be a plain value (exact), ``None`` (empty) or a ``(low, high)``
        pair (range) — exactly the options offered by the front-end TSQ
        grid (Table 2).
        """
        type_tuple = None
        if types is not None:
            type_tuple = tuple(ColumnType(t) for t in types)
        example_tuples = tuple(
            tuple(cell(v) for v in row) for row in rows)
        negatives = tuple(
            tuple(cell(v) for v in row) for row in negative_rows)
        return cls(types=type_tuple, tuples=example_tuples,
                   sorted=sorted, limit=limit, negative_tuples=negatives,
                   tolerance=tolerance)

    @property
    def width(self) -> Optional[int]:
        """Number of projected columns constrained by the TSQ, if known."""
        if self.types is not None:
            return len(self.types)
        if self.tuples:
            return len(self.tuples[0])
        return None

    @property
    def is_empty(self) -> bool:
        """True when the TSQ constrains nothing (the NLQ-only setting)."""
        return (self.types is None and not self.tuples
                and not self.negative_tuples
                and not self.sorted and self.limit == 0)

    # ------------------------------------------------------------------
    # Satisfaction (Definition 2.4) against a materialised result set
    # ------------------------------------------------------------------
    def satisfied_by_rows(self, rows: Sequence[Row],
                          truncated: bool = False) -> bool:
        """Check conditions (2)-(4) of Definition 2.4 on a result set.

        ``truncated`` marks a result set cut off by a row cap; in that
        case the limit condition (4) cannot have failed spuriously because
        the cap is always set above ``k``.
        """
        if self.limit > 0 and not truncated and len(rows) > self.limit:
            return False
        for negative in self.negative_tuples:
            if any(self._matches(negative, row) for row in rows):
                return False
        if not self.tuples:
            return True
        if self.sorted and len(self.tuples) >= 2:
            return self._order_preserving_match(rows)
        return self._distinct_match(rows)

    def _matches(self, example: ExampleTuple, row: Row) -> bool:
        if len(row) < len(example):
            return False
        return all(c.matches(row[j]) for j, c in enumerate(example))

    def _distinct_match(self, rows: Sequence[Row]) -> bool:
        """Each example tuple matched by a distinct row (Kuhn's
        algorithm); with ``tolerance`` > 0, up to that many examples may
        remain unmatched."""
        adjacency: List[List[int]] = []
        misses = 0
        for example in self.tuples:
            matches = [i for i, row in enumerate(rows)
                       if self._matches(example, row)]
            adjacency.append(matches)
            if not matches:
                misses += 1
        if misses > self.tolerance:
            return False
        match_of_row: dict[int, int] = {}

        def try_assign(example_index: int, visited: set[int]) -> bool:
            for row_index in adjacency[example_index]:
                if row_index in visited:
                    continue
                visited.add(row_index)
                holder = match_of_row.get(row_index)
                if holder is None or try_assign(holder, visited):
                    match_of_row[row_index] = example_index
                    return True
            return False

        matched = 0
        for example_index in range(len(self.tuples)):
            if adjacency[example_index] and try_assign(example_index,
                                                       set()):
                matched += 1
        return matched >= len(self.tuples) - self.tolerance

    def _order_preserving_match(self, rows: Sequence[Row]) -> bool:
        """Examples must appear in order as a subsequence of the result;
        with ``tolerance`` > 0, up to that many examples may be skipped
        (exact search over skip choices — example lists are short)."""
        from functools import lru_cache

        examples = self.tuples
        budget = self.tolerance

        @lru_cache(maxsize=None)
        def feasible(example_index: int, cursor: int, skips: int) -> bool:
            if len(examples) - example_index <= budget - skips:
                return True  # the rest can all be skipped
            if example_index >= len(examples):
                return True
            if skips < budget and feasible(example_index + 1, cursor,
                                           skips + 1):
                return True
            position = cursor
            example = examples[example_index]
            while position < len(rows):
                if self._matches(example, rows[position]):
                    if feasible(example_index + 1, position + 1, skips):
                        return True
                    # Later matches only shift the cursor right, which
                    # cannot help once the earliest match fails.
                    return False
                position += 1
            return False

        return feasible(0, 0, 0)

    # ------------------------------------------------------------------
    def types_match(self, projected: Sequence[ColumnType]) -> bool:
        """Condition (1) of Definition 2.4 for a full projection list."""
        if self.types is None:
            return True
        return tuple(projected) == self.types

    def __repr__(self) -> str:
        types = "-" if self.types is None else \
            "(" + ",".join(str(t) for t in self.types) + ")"
        return (f"<TSQ alpha={types} chi={len(self.tuples)} tuples "
                f"tau={'T' if self.sorted else 'F'} k={self.limit}>")
